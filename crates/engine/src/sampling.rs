//! Exact small-parameter discrete samplers shared by the noise models,
//! plus the engine's batched uniform-index sampler.
//!
//! Per-round collision counts are tiny (`E[count] = d ≤ 1`), so summing
//! Bernoulli draws is both exact and faster than any table method, and
//! Knuth's product method covers the Poisson rates the paper's noisy
//! sensing extension (Section 6.1) uses.
//!
//! [`fill_uniform_indices`] is the hot-loop complement: it fills a whole
//! index buffer chunk-at-a-time instead of running one independent
//! bounded draw per agent, hoisting the power-of-two check (and the
//! Lemire rejection zone) out of the loop while consuming **exactly**
//! the RNG stream a sequence of `gen_range(0..span)` calls would.

use rand::Rng;
use rand::RngCore;

/// Fills `buf` with independent uniform samples from `[0, span)`,
/// consuming `rng` exactly as `buf.len()` successive
/// `rng.gen_range(0..span)` calls would — same values, same number of
/// `next_u64` draws, in the same order. This is the batched sampling
/// path of the step kernels: the per-draw span classification (bitmask
/// for power-of-two spans, Lemire multiply-shift rejection otherwise) is
/// hoisted out of the loop, and with a concrete `R` the whole fill
/// monomorphizes into one tight loop over raw generator output.
///
/// Samples are truncated to `u32`; the engine's node/degree domain is
/// capped at `u32::MAX` ([`crate::occupancy::MAX_NODES`]), so the cast
/// is lossless for every span the engine uses.
///
/// # Panics
///
/// Panics if `span == 0` or `span > u32::MAX + 1`.
pub fn fill_uniform_indices<R: RngCore + ?Sized>(span: u64, buf: &mut [u32], rng: &mut R) {
    assert!(span > 0, "cannot sample empty range");
    assert!(
        span <= (1 << 32),
        "batched samples are u32; span {span} out of range"
    );
    if span.is_power_of_two() {
        let mask = span - 1;
        for slot in buf.iter_mut() {
            *slot = (rng.next_u64() & mask) as u32;
        }
        return;
    }
    // Lemire multiply-shift with the rejection zone precomputed once for
    // the whole buffer — bit-for-bit the vendored `gen_range` algorithm
    // (the zone formula lives once, in `graphs::fastdiv`, shared with
    // the CSR per-node hoist).
    let zone = antdensity_graphs::fastdiv::lemire_zone(span);
    for slot in buf.iter_mut() {
        *slot = loop {
            let v = rng.next_u64();
            let m = (v as u128) * (span as u128);
            if (m as u64) <= zone {
                break (m >> 64) as u32;
            }
        };
    }
}

/// Exact Binomial(n, p) sample by summing Bernoulli draws.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn sample_binomial(n: u32, p: f64, rng: &mut dyn RngCore) -> u32 {
    assert!((0.0..=1.0).contains(&p), "probability must lie in [0,1]");
    if p == 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mut k = 0;
    for _ in 0..n {
        if rng.gen_bool(p) {
            k += 1;
        }
    }
    k
}

/// Exact Poisson(λ) sample via Knuth's product method (O(λ) expected
/// iterations).
///
/// # Panics
///
/// Panics if `lambda` is negative, not finite, or large enough (> 30)
/// that the product method would underflow.
pub fn sample_poisson(lambda: f64, rng: &mut dyn RngCore) -> u32 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "rate must be finite and non-negative"
    );
    assert!(
        lambda <= 30.0,
        "Knuth sampler only supports small rates (got {lambda})"
    );
    if lambda == 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut prod: f64 = 1.0;
    loop {
        prod *= rng.gen_range(0.0..1.0);
        if prod <= limit {
            return k;
        }
        k += 1;
    }
}

/// The Section 6.1 noisy collision sensor: each true collision is
/// detected independently with probability `p` and `Poisson(s)` phantom
/// collisions are added per round. Since the observed count has
/// expectation `p·E[count] + s`, [`CollisionNoise::correct`] recovers the
/// true density in expectation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionNoise {
    detect_prob: f64,
    spurious_rate: f64,
}

impl CollisionNoise {
    /// Creates a sensor that detects each true collision independently
    /// with probability `detect_prob` and additionally reports
    /// `Poisson(spurious_rate)` phantom collisions per round.
    ///
    /// # Panics
    ///
    /// Panics if `detect_prob ∉ (0, 1]` or `spurious_rate < 0` (or is not
    /// finite).
    pub fn new(detect_prob: f64, spurious_rate: f64) -> Self {
        assert!(
            detect_prob > 0.0 && detect_prob <= 1.0,
            "detection probability must lie in (0,1]"
        );
        assert!(
            spurious_rate >= 0.0 && spurious_rate.is_finite(),
            "spurious rate must be finite and non-negative"
        );
        Self {
            detect_prob,
            spurious_rate,
        }
    }

    /// A perfect sensor (identity observation).
    pub fn perfect() -> Self {
        Self {
            detect_prob: 1.0,
            spurious_rate: 0.0,
        }
    }

    /// Detection probability `p`.
    pub fn detect_prob(&self) -> f64 {
        self.detect_prob
    }

    /// Spurious-detection rate `s` per round.
    pub fn spurious_rate(&self) -> f64 {
        self.spurious_rate
    }

    /// Passes a true per-round collision count through the sensor.
    pub fn observe(&self, true_count: u32, rng: &mut dyn RngCore) -> u32 {
        let mut seen = if self.detect_prob >= 1.0 {
            true_count
        } else {
            sample_binomial(true_count, self.detect_prob, rng)
        };
        if self.spurious_rate > 0.0 {
            seen += sample_poisson(self.spurious_rate, rng);
        }
        seen
    }

    /// Unbiases a density estimate produced under this noise model:
    /// `(d̃_obs − s)/p`, clamped at 0.
    pub fn correct(&self, observed_estimate: f64) -> f64 {
        ((observed_estimate - self.spurious_rate) / self.detect_prob).max(0.0)
    }
}

impl Default for CollisionNoise {
    /// A perfect sensor.
    fn default() -> Self {
        Self::perfect()
    }
}

impl std::fmt::Display for CollisionNoise {
    /// Canonical spec-file syntax: `sense:<detect_prob>:<spurious_rate>`.
    /// Round-trips through [`FromStr`](std::str::FromStr).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sense:{}:{}", self.detect_prob, self.spurious_rate)
    }
}

impl std::str::FromStr for CollisionNoise {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) syntax (the sweep
    /// spec-file axis format). Validates the same invariants as
    /// [`CollisionNoise::new`], returning `Err` instead of panicking.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .trim()
            .strip_prefix("sense:")
            .ok_or_else(|| format!("noise `{s}`: expected `sense:<detect>:<spurious>`"))?;
        let (p, rate) = rest
            .split_once(':')
            .ok_or_else(|| format!("noise `{s}`: expected `sense:<detect>:<spurious>`"))?;
        let detect_prob: f64 = p
            .trim()
            .parse()
            .map_err(|_| format!("noise `{s}`: bad detection probability `{p}`"))?;
        let spurious_rate: f64 = rate
            .trim()
            .parse()
            .map_err(|_| format!("noise `{s}`: bad spurious rate `{rate}`"))?;
        if !(detect_prob > 0.0 && detect_prob <= 1.0) {
            return Err(format!("noise `{s}`: detection probability outside (0,1]"));
        }
        if !(spurious_rate >= 0.0 && spurious_rate.is_finite()) {
            return Err(format!("noise `{s}`: spurious rate must be non-negative"));
        }
        Ok(Self {
            detect_prob,
            spurious_rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sample_binomial(10, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(10, 1.0, &mut rng), 10);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
    }

    #[test]
    fn binomial_mean_is_np() {
        let mut rng = SmallRng::seed_from_u64(2);
        let total: u64 = (0..20_000)
            .map(|_| sample_binomial(8, 0.25, &mut rng) as u64)
            .sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = SmallRng::seed_from_u64(3);
        let total: u64 = (0..20_000)
            .map(|_| sample_poisson(1.5, &mut rng) as u64)
            .sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "small rates")]
    fn poisson_huge_rate_rejected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = sample_poisson(1e3, &mut rng);
    }

    #[test]
    fn batched_fill_matches_sequential_gen_range() {
        // The batched path must consume the RNG exactly as per-agent
        // `gen_range` draws do — including rejection re-draws for
        // non-power-of-two spans.
        for span in [1u64, 2, 3, 4, 5, 6, 7, 8, 10, 12, 100, 65_536, 65_537] {
            for seed in 0..8 {
                let mut batched_rng = SmallRng::seed_from_u64(seed);
                let mut buf = [0u32; 97];
                fill_uniform_indices(span, &mut buf, &mut batched_rng);
                let mut seq_rng = SmallRng::seed_from_u64(seed);
                for (i, &b) in buf.iter().enumerate() {
                    let expect: u64 = seq_rng.gen_range(0..span);
                    assert_eq!(b as u64, expect, "span {span} seed {seed} draw {i}");
                }
                // Identical residual state: the *next* draw agrees too.
                assert_eq!(batched_rng.next_u64(), seq_rng.next_u64());
            }
        }
    }

    #[test]
    fn batched_fill_through_dyn_rng_is_identical() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let mut buf_a = [0u32; 33];
        let mut buf_b = [0u32; 33];
        fill_uniform_indices(6, &mut buf_a, &mut a);
        let dyn_rng: &mut dyn RngCore = &mut b;
        fill_uniform_indices(6, &mut buf_b, dyn_rng);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn batched_fill_rejects_zero_span() {
        let mut rng = SmallRng::seed_from_u64(1);
        fill_uniform_indices(0, &mut [0u32; 4], &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batched_fill_rejects_oversized_span() {
        let mut rng = SmallRng::seed_from_u64(1);
        fill_uniform_indices((1 << 32) + 1, &mut [0u32; 4], &mut rng);
    }
}
