//! Count-based stepping: the occupancy-count representation for
//! memoryless pure walks.
//!
//! A pure random walk is a Markov chain on nodes, and agents carry no
//! per-agent state in the noise-free Algorithm 1 setting — so the whole
//! population is fully described by one `u64` occupancy count per node.
//! [`CountsEngine`] advances that representation directly: one round
//! splits each node's count multinomially across its neighbors
//! (uniform weights — exactly the distribution `count` independent
//! pure-walk draws would produce), making a round **O(nodes·degree)
//! instead of O(agents)**. At mega-scale populations (millions of
//! agents on tens of thousands of nodes) this is the fast path the
//! `mega_scale` bench group measures.
//!
//! # The contract is distributional, not bit-stream
//!
//! The agent-level engine pins exact RNG streams per agent; collapsing
//! agents into counts necessarily abandons that. What is preserved is
//! the *law* of the process: after any number of rounds the joint
//! occupancy distribution matches the agent-level engine's exactly
//! (a uniform multinomial split of `c` trials ≡ `c` independent uniform
//! neighbor draws), and the encounter totals the estimators consume are
//! the same functional `Σ_v c_v(c_v-1)` of that occupancy. Equivalence
//! is therefore validated statistically
//! (`crates/engine/tests/counts_equivalence.rs`, in the style of the
//! CSR stationary-occupancy tests), never by bit comparison.
//!
//! Determinism still holds in the stronger engine sense: RNG streams
//! are derived per `(seed, round, COUNT_BLOCK-sized node block)`, and
//! parallel workers merge their contributions by exact `u64` addition —
//! so results are bit-identical for any thread count.

use crate::sampling::{fill_uniform_indices_lanes, lane_rngs, sample_multinomial};
use antdensity_graphs::Topology;
use antdensity_stats::rng::SeedSequence;
use antdensity_telemetry as telemetry;
use std::time::Instant;

// Telemetry for the counts round path, mirroring the agent engine's
// `engine.round` span so traces of mixed runs line up.
static ROUND_SPAN: telemetry::SpanMetric = telemetry::SpanMetric::new("counts.round");
static ROUNDS_COUNTER: telemetry::LazyCounter = telemetry::LazyCounter::new("counts.rounds");
static AGENT_STEPS: telemetry::LazyCounter = telemetry::LazyCounter::new("counts.agent_steps");

/// Nodes per RNG stream block: block `b` of round `r` draws the stream
/// `seeds.subsequence(r).rng(b)`, the same `(round, block)` derivation
/// scheme as the agent engine's [`crate::STREAM_BLOCK`] contract, so
/// scheduling and worker count never change results.
pub const COUNT_BLOCK: u64 = 1024;

/// Placement draws are lane-filled in chunks of this many node indices.
const PLACE_CHUNK: usize = 1 << 14;

/// The occupancy-count twin of [`crate::Engine`] for pure-walk,
/// noise-free, estimator-agnostic populations: state is one `u64` count
/// per node, a round is a multinomial split per occupied node.
///
/// # Example
///
/// ```
/// use antdensity_engine::counts::CountsEngine;
/// use antdensity_graphs::Torus2d;
/// use antdensity_stats::rng::SeedSequence;
///
/// let mut engine = CountsEngine::new(Torus2d::new(16), 1_000)
///     .with_seed_sequence(SeedSequence::new(7));
/// engine.place_uniform(&SeedSequence::new(1));
/// engine.step_round();
/// assert_eq!(engine.total_agents(), 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct CountsEngine<T: Topology> {
    topo: T,
    /// Current occupancy: `counts[v]` agents sit on node `v`.
    counts: Vec<u64>,
    /// Double buffer the round scatters into before the swap.
    next: Vec<u64>,
    round: u64,
    num_agents: u64,
    seeds: SeedSequence,
    threads: usize,
    /// Equal multinomial weights, sized to the maximum degree once.
    ones: Vec<f64>,
    /// Per-node split scratch, sized to the maximum degree.
    split: Vec<u64>,
}

impl<T: Topology> CountsEngine<T> {
    /// Creates an engine with all `num_agents` unplaced (call
    /// [`Self::place_uniform`] before stepping, or seed counts via
    /// [`Self::set_counts`]).
    ///
    /// # Panics
    ///
    /// Panics if the topology exceeds the `2^32`-node index domain the
    /// batched samplers pack into.
    pub fn new(topo: T, num_agents: u64) -> Self {
        let nodes = topo.num_nodes();
        assert!(
            nodes <= 1 << 32,
            "count-based stepping packs node indices into u32; {nodes} nodes out of range"
        );
        let max_degree = topo
            .regular_degree()
            .unwrap_or_else(|| (0..nodes).map(|v| topo.degree(v)).max().unwrap_or(1));
        Self {
            counts: vec![0; nodes as usize],
            next: vec![0; nodes as usize],
            round: 0,
            num_agents,
            seeds: SeedSequence::new(0),
            threads: 1,
            ones: vec![1.0; max_degree],
            split: vec![0; max_degree],
            topo,
        }
    }

    /// Sets the seed sequence the per-`(round, block)` streams derive
    /// from.
    #[must_use]
    pub fn with_seed_sequence(mut self, seeds: SeedSequence) -> Self {
        self.seeds = seeds;
        self
    }

    /// Requests up to `threads` workers for the round splits. Results
    /// are bit-identical for every value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Places all agents uniformly at random, replacing any existing
    /// occupancy. Node indices are drawn through the lane-interleaved
    /// batched sampler ([`fill_uniform_indices_lanes`]) seeded from
    /// `seq`'s lane streams `0..RNG_LANES`.
    pub fn place_uniform(&mut self, seq: &SeedSequence) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        let mut lanes = lane_rngs(seq, 0);
        let mut buf = vec![0u32; PLACE_CHUNK];
        let mut remaining = self.num_agents;
        while remaining > 0 {
            let take = remaining.min(PLACE_CHUNK as u64) as usize;
            let chunk = &mut buf[..take];
            fill_uniform_indices_lanes(self.topo.num_nodes(), chunk, &mut lanes);
            for &v in chunk.iter() {
                self.counts[v as usize] += 1;
            }
            remaining -= take as u64;
        }
        self.round = 0;
    }

    /// Replaces the occupancy wholesale (test/interop hook; the normal
    /// entry is [`Self::place_uniform`]).
    ///
    /// # Panics
    ///
    /// Panics if `counts` does not have one slot per node; the implied
    /// total becomes the engine's agent count.
    pub fn set_counts(&mut self, counts: &[u64]) {
        assert_eq!(
            counts.len(),
            self.counts.len(),
            "one count per node ({} nodes)",
            self.counts.len()
        );
        self.counts.copy_from_slice(counts);
        self.num_agents = counts.iter().sum();
        self.round = 0;
    }

    /// The occupancy counts, one per node.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rounds stepped so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The population size this engine was built for.
    pub fn num_agents(&self) -> u64 {
        self.num_agents
    }

    /// The topology stepped on.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// Current total occupancy across all nodes — conserved by every
    /// round (each multinomial split preserves its count exactly).
    pub fn total_agents(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Ordered co-location pairs in the current occupancy,
    /// `Σ_v c_v·(c_v − 1)` — each agent on `v` encounters the `c_v − 1`
    /// others, which is exactly the per-round total Algorithm 1's
    /// per-agent counters sum to in the agent-level engine. `u128`
    /// because a single packed node of `n` agents contributes `n²−n`.
    pub fn round_encounters(&self) -> u128 {
        self.counts
            .iter()
            .map(|&c| {
                let c = c as u128;
                c * c.saturating_sub(1)
            })
            .sum()
    }

    /// Splits the counts of nodes `[lo, hi)` into `acc`, drawing each
    /// [`COUNT_BLOCK`]-aligned block's stream from `round_seq`. The
    /// range bounds must be block-aligned (except `hi` at the node
    /// count) so the block → stream mapping is schedule-independent.
    fn split_range(
        &self,
        round_seq: &SeedSequence,
        lo: u64,
        hi: u64,
        acc: &mut [u64],
        split: &mut [u64],
        ones: &[f64],
    ) {
        debug_assert_eq!(lo % COUNT_BLOCK, 0, "worker ranges are block-aligned");
        let mut v = lo;
        while v < hi {
            let block_end = (v + COUNT_BLOCK).min(hi);
            let mut rng = round_seq.rng(v / COUNT_BLOCK);
            for node in v..block_end {
                let c = self.counts[node as usize];
                if c == 0 {
                    continue;
                }
                let d = self.topo.degree(node);
                if d == 1 {
                    acc[self.topo.neighbor(node, 0) as usize] += c;
                    continue;
                }
                sample_multinomial(c, &ones[..d], &mut split[..d], &mut rng);
                for (i, &k) in split[..d].iter().enumerate() {
                    if k > 0 {
                        acc[self.topo.neighbor(node, i) as usize] += k;
                    }
                }
            }
            v = block_end;
        }
    }
}

impl<T: Topology + Sync> CountsEngine<T> {
    /// Advances one synchronous round: every node's count is split
    /// multinomially (uniform weights) across its neighbors, the exact
    /// law of `count` independent pure-walk steps. Deterministic in
    /// `(seed sequence, round)` alone — thread count never changes the
    /// result, because block streams are fixed and workers merge by
    /// exact addition.
    pub fn step_round(&mut self) {
        let observe = telemetry::enabled();
        let t0 = observe.then(Instant::now);
        let nodes = self.topo.num_nodes();
        let round_seq = self.seeds.subsequence(self.round);
        let num_blocks = nodes.div_ceil(COUNT_BLOCK);
        let workers = self.threads.min(num_blocks as usize).max(1);
        self.next.iter_mut().for_each(|c| *c = 0);
        if workers <= 1 {
            // Borrow-split: the scratch buffers move out and back so
            // `split_range` can take `&self`.
            let mut split = std::mem::take(&mut self.split);
            let ones = std::mem::take(&mut self.ones);
            let mut next = std::mem::take(&mut self.next);
            self.split_range(&round_seq, 0, nodes, &mut next, &mut split, &ones);
            self.split = split;
            self.ones = ones;
            self.next = next;
        } else {
            let blocks_per_worker = num_blocks.div_ceil(workers as u64);
            let engine = &*self;
            let accs: Vec<Vec<u64>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers as u64)
                    .map(|wi| {
                        let lo = (wi * blocks_per_worker * COUNT_BLOCK).min(nodes);
                        let hi = ((wi + 1) * blocks_per_worker * COUNT_BLOCK).min(nodes);
                        s.spawn(move || {
                            let mut acc = vec![0u64; nodes as usize];
                            let mut split = vec![0u64; engine.split.len()];
                            engine.split_range(
                                &round_seq,
                                lo,
                                hi,
                                &mut acc,
                                &mut split,
                                &engine.ones,
                            );
                            acc
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("counts worker panicked"))
                    .collect()
            });
            for acc in &accs {
                for (slot, &k) in self.next.iter_mut().zip(acc) {
                    *slot += k;
                }
            }
        }
        std::mem::swap(&mut self.counts, &mut self.next);
        self.round += 1;
        debug_assert_eq!(
            self.total_agents(),
            self.num_agents,
            "multinomial splits conserve the population"
        );
        if let Some(t0) = t0 {
            let total_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            ROUNDS_COUNTER.add(1);
            AGENT_STEPS.add(self.num_agents);
            let msteps_per_sec = if total_ns > 0 {
                self.num_agents as f64 * 1e3 / total_ns as f64
            } else {
                0.0
            };
            ROUND_SPAN.record_interval_at(
                t0,
                0,
                total_ns,
                &[
                    ("agents", self.num_agents as f64),
                    ("msteps_per_sec", msteps_per_sec),
                ],
            );
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step_round();
        }
    }
}

/// What a count-based Algorithm 1 run reports: the population-mean
/// density estimate (individual per-agent estimates do not exist in the
/// collapsed representation — their *mean* is a pure function of the
/// occupancy trajectory).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountsOutcome {
    /// Rounds executed.
    pub rounds: u64,
    /// Population size.
    pub num_agents: u64,
    /// The quantity Algorithm 1 estimates, `d = (n − 1) / A`.
    pub true_density: f64,
    /// Ordered co-location pairs summed over all executed rounds.
    pub total_encounters: u128,
    /// Population mean of the per-agent Algorithm 1 estimates
    /// `c / t`: `total_encounters / (num_agents · rounds)`.
    pub mean_estimate: f64,
}

impl CountsOutcome {
    /// Assembles an outcome from a finished run's tallies.
    pub fn from_tallies(rounds: u64, num_agents: u64, nodes: u64, total_encounters: u128) -> Self {
        let mean_estimate = if rounds > 0 && num_agents > 0 {
            total_encounters as f64 / (num_agents as f64 * rounds as f64)
        } else {
            0.0
        };
        Self {
            rounds,
            num_agents,
            true_density: if nodes > 0 {
                (num_agents.saturating_sub(1)) as f64 / nodes as f64
            } else {
                0.0
            },
            total_encounters,
            mean_estimate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CsrGraph, Hypercube, Ring, Torus2d};

    #[test]
    fn placement_reaches_every_agent_and_only_valid_nodes() {
        let mut engine = CountsEngine::new(Torus2d::new(8), 5_000);
        engine.place_uniform(&SeedSequence::new(3));
        assert_eq!(engine.total_agents(), 5_000);
        assert_eq!(engine.counts().len(), 64);
    }

    #[test]
    fn rounds_conserve_population_on_every_topology() {
        fn conserve<T: Topology + Sync>(topo: T, n: u64) {
            let mut engine = CountsEngine::new(topo, n).with_seed_sequence(SeedSequence::new(11));
            engine.place_uniform(&SeedSequence::new(5));
            for _ in 0..20 {
                engine.step_round();
                assert_eq!(engine.total_agents(), n);
            }
        }
        conserve(Torus2d::new(8), 3_000);
        conserve(Ring::new(50), 777);
        conserve(Hypercube::new(5), 12);
        conserve(CsrGraph::from_topology(&Torus2d::new(8)), 3_000);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mut a =
            CountsEngine::new(Torus2d::new(16), 10_000).with_seed_sequence(SeedSequence::new(42));
        let mut b =
            CountsEngine::new(Torus2d::new(16), 10_000).with_seed_sequence(SeedSequence::new(42));
        a.place_uniform(&SeedSequence::new(9));
        b.place_uniform(&SeedSequence::new(9));
        for _ in 0..10 {
            a.step_round();
            b.step_round();
            assert_eq!(a.counts(), b.counts());
        }
    }

    #[test]
    fn thread_count_never_changes_counts() {
        // 16·16 torus = 256 nodes < COUNT_BLOCK, so also cover a
        // topology with several blocks.
        for side in [16u64, 64] {
            let reference = {
                let mut e = CountsEngine::new(Torus2d::new(side), 50_000)
                    .with_seed_sequence(SeedSequence::new(7));
                e.place_uniform(&SeedSequence::new(2));
                e.run(8);
                e.counts().to_vec()
            };
            for threads in [2usize, 3, 8] {
                let mut e = CountsEngine::new(Torus2d::new(side), 50_000)
                    .with_seed_sequence(SeedSequence::new(7))
                    .with_threads(threads);
                e.place_uniform(&SeedSequence::new(2));
                e.run(8);
                assert_eq!(e.counts(), &reference[..], "side {side} threads {threads}");
            }
        }
    }

    #[test]
    fn encounters_match_handcount() {
        let mut engine = CountsEngine::new(Ring::new(4), 0);
        engine.set_counts(&[3, 1, 0, 2]);
        // 3·2 + 1·0 + 0 + 2·1 = 8
        assert_eq!(engine.round_encounters(), 8);
        assert_eq!(engine.num_agents(), 6);
    }

    #[test]
    fn outcome_math_is_the_algorithm1_mean() {
        let o = CountsOutcome::from_tallies(10, 100, 64, 500);
        assert_eq!(o.mean_estimate, 0.5);
        assert!((o.true_density - 99.0 / 64.0).abs() < 1e-12);
        let empty = CountsOutcome::from_tallies(0, 0, 64, 0);
        assert_eq!(empty.mean_estimate, 0.0);
    }
}
