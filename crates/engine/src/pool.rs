//! A persistent worker pool for deterministic fan-out.
//!
//! The engine's first parallel implementation opened a fresh
//! `std::thread::scope` — and therefore spawned fresh OS threads — every
//! round. At swarm scale (hundreds of thousands of rounds, each a few
//! hundred microseconds of work) the spawn cost dominates. A
//! [`WorkerPool`] spawns its threads **once** and hands them borrowed
//! work per call, replacing per-round spawns with a queue push and a
//! wake-up.
//!
//! Design notes:
//!
//! * **Borrowed jobs, scoped lifetime.** [`WorkerPool::run`] accepts
//!   closures borrowing the caller's stack (position windows, topology
//!   references) and does not return until every closure has finished —
//!   the same guarantee `thread::scope` gives, without the spawns.
//! * **Caller helps.** While waiting, the submitting thread executes
//!   queued jobs itself. This keeps the last core busy and makes nested
//!   submissions deadlock-free: a pool worker that submits follow-up work
//!   from inside a job (e.g. a Monte-Carlo trial that itself steps a
//!   parallel engine) drains that work on its own thread instead of
//!   waiting for an occupied sibling.
//! * **Panic-safe.** A panicking job is caught, the pool survives, and
//!   the panic is re-raised in the submitting thread once the batch has
//!   settled — mirroring `thread::scope`'s join behaviour.
//! * **Scheduling-independent results.** The pool never influences
//!   simulation output: RNG streams attach to stream blocks
//!   ([`crate::STREAM_BLOCK`]) and trial indices, never to whichever
//!   worker happens to run a job.
//!
//! One process-wide pool ([`WorkerPool::global`]) serves
//! `Engine::step_round_parallel` and
//! `antdensity_walks::parallel::run_trials` by default; tests and
//! embedders can build private pools with explicit sizes.

use antdensity_telemetry as telemetry;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

// Pool telemetry: time from enqueue to execution start, and who ran
// each job — a dedicated worker or the submitting thread helping while
// it waits. Jobs carry their enqueue stamp only when telemetry was
// enabled at submission, so a disabled run pays one relaxed flag load
// per `run` batch and nothing per job.
static QUEUE_WAIT: telemetry::SpanMetric = telemetry::SpanMetric::new("pool.queue_wait");
static WORKER_JOBS: telemetry::LazyCounter = telemetry::LazyCounter::new("pool.jobs_worker");
static CALLER_JOBS: telemetry::LazyCounter = telemetry::LazyCounter::new("pool.jobs_caller_helped");

/// A type-erased task body queued for execution.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A queued unit of pool work: the batch latch it reports to, the
/// telemetry enqueue stamp (when enabled at submission), plus the task
/// body. Executed via [`execute_job`], which catches panics so
/// nothing unwinds into the worker loop (the panic is recorded and
/// re-raised in the submitter).
type Job = (Arc<RunState>, Option<Instant>, Task);

/// Runs one queued job: the task under `catch_unwind`, then the latch
/// decrement (panic recorded for the submitter to re-raise). Shared by
/// the worker loop (`from_worker`) and the caller-helps drain in
/// [`WorkerPool::run`].
fn execute_job((state, queued_at, task): Job, from_worker: bool) {
    if let Some(enqueued) = queued_at {
        let wait_ns = u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        QUEUE_WAIT.record_duration_ns(wait_ns);
        if from_worker {
            WORKER_JOBS.incr();
        } else {
            CALLER_JOBS.incr();
        }
    }
    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
        let mut slot = lock(&state.panic_payload);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    let mut rem = lock(&state.remaining);
    *rem -= 1;
    if *rem == 0 {
        state.all_done.notify_all();
    }
}

/// Lock, shrugging off poisoning: jobs catch panics themselves, so a
/// poisoned mutex only means some unrelated thread died mid-hold — the
/// protected data (a queue of jobs, a counter) is still consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
}

/// Completion latch for one [`WorkerPool::run`] batch.
struct RunState {
    remaining: Mutex<usize>,
    all_done: Condvar,
    /// First panic payload from this batch's tasks, resumed in the
    /// submitter once the batch settles (matching `thread::scope`,
    /// which the pool replaced — the original message survives).
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fixed set of persistent worker threads executing borrowed jobs.
///
/// # Example
///
/// ```
/// use antdensity_engine::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let mut results = vec![0u64; 4];
/// let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
///     .iter_mut()
///     .enumerate()
///     .map(|(i, slot)| Box::new(move || *slot = (i as u64) * 10) as _)
///     .collect();
/// pool.run(tasks);
/// assert_eq!(results, vec![0, 10, 20, 30]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` persistent worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "worker pool needs at least one thread");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("antdensity-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// The process-wide default pool, sized to the machine's available
    /// parallelism and created on first use. `Engine` and `run_trials`
    /// dispatch here unless given an explicit pool.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            WorkerPool::new(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
    }

    /// Number of worker threads (the submitting thread helps too, so up
    /// to `threads + 1` jobs make progress during a [`Self::run`] call).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `tasks` on the pool and returns when all of them have
    /// finished — the drop-in replacement for spawning one scoped thread
    /// per task. Tasks may borrow from the caller's stack; the calling
    /// thread executes queued jobs itself while it waits.
    ///
    /// # Panics
    ///
    /// If any task panicked, the first panic's original payload is
    /// re-raised (after the whole batch settles) — the same observable
    /// behaviour as the `thread::scope` join this replaces.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let state = Arc::new(RunState {
            remaining: Mutex::new(tasks.len()),
            all_done: Condvar::new(),
            panic_payload: Mutex::new(None),
        });
        // One stamp for the whole batch (they enqueue under one lock
        // hold); `None` when telemetry is off keeps the per-job cost at
        // zero.
        let queued_at = telemetry::enabled().then(Instant::now);
        {
            let mut q = lock(&self.shared.queue);
            for task in tasks {
                // SAFETY: erasing 'env to 'static is sound because this
                // function does not return until `remaining` hits zero,
                // and execute_job decrements the counter only *after*
                // the task body has finished running (panics included,
                // via catch_unwind). Every job — queued here or stolen
                // by a helping caller — therefore completes before the
                // borrows it captures go out of scope.
                let task: Task =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
                q.push_back((Arc::clone(&state), queued_at, task));
            }
            self.shared.job_ready.notify_all();
        }
        // Help drain the queue, then wait for stragglers running on
        // workers. Jobs popped here may belong to other concurrent
        // batches — executing them is still progress and is what makes
        // nested submission deadlock-free.
        loop {
            if *lock(&state.remaining) == 0 {
                break;
            }
            let job = lock(&self.shared.queue).pop_front();
            match job {
                Some(job) => execute_job(job, false),
                None => {
                    let mut rem = lock(&state.remaining);
                    while *rem != 0 {
                        rem = state
                            .all_done
                            .wait(rem)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    break;
                }
            }
        }
        let payload = lock(&state.panic_payload).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Publish the shutdown flag under the queue mutex: a worker that
        // just found the queue empty and read `shutdown == false` still
        // holds the lock until it enters `wait`, so storing under the
        // lock (and only then notifying) cannot race into that window —
        // the classic condvar lost-wakeup, which would leave Drop
        // blocked in join() forever.
        {
            let _q = lock(&self.shared.queue);
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.job_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared
                    .job_ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // execute_job catches task panics; nothing unwinds here.
        execute_job(job, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_borrowed_tasks_to_completion() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 100];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| Box::new(move || *slot = i * i) as _)
            .collect();
        pool.run(tasks);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as _
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(1);
        pool.run(Vec::new());
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        // A job submits a follow-up batch to the same pool; with a
        // single worker this only terminates because the occupied
        // thread drains its own submission.
        let pool = Arc::new(WorkerPool::new(1));
        let inner_ran = Arc::new(AtomicBool::new(false));
        let (p, flag) = (Arc::clone(&pool), Arc::clone(&inner_ran));
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(move || {
            let flag = Arc::clone(&flag);
            let inner: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(move || {
                flag.store(true, Ordering::Release);
            })];
            p.run(inner);
        })];
        pool.run(tasks);
        assert!(inner_ran.load(Ordering::Acquire));
    }

    #[test]
    fn panicking_task_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let boom: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| panic!("task exploded"))];
        let result = catch_unwind(AssertUnwindSafe(|| pool.run(boom)));
        // the ORIGINAL payload is resumed, not a generic wrapper
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"task exploded"));
        // The pool still executes later batches.
        let ok = AtomicBool::new(false);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
            ok.store(true, Ordering::Release);
        })];
        pool.run(tasks);
        assert!(ok.load(Ordering::Acquire));
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = WorkerPool::new(0);
    }
}
