//! `antdensity-engine` — the batched, deterministic, parallel simulation
//! engine for *Ant-Inspired Density Estimation via Random Walks*
//! (Musco, Su, Lynch; PODC 2016).
//!
//! Every experiment in the paper reduces to stepping N random-walking
//! agents on a topology and counting co-located agents per round. This
//! crate is the production-scale core that makes those sweeps cheap:
//!
//! * [`occupancy`] — dense `Vec<u32>` occupancy buffers reset via
//!   *touched-node lists* instead of per-round `HashMap` rebuilds, plus
//!   per-group occupancy as one flat `groups × nodes` buffer.
//! * [`movement`] — the paper's pure random walk and the Section 6.1 /
//!   Appendix A variants (lazy, biased, stationary, drift).
//! * [`step`] — the round kernels, generic over topology *and* RNG so
//!   concrete call sites monomorphize with zero per-draw virtual
//!   dispatch. One code path serves the legacy sequential draw order
//!   (`antdensity_walks::arena::SyncArena` delegates its inner loop
//!   here); a batched pure-walk kernel bulk-samples move indices
//!   chunk-at-a-time while drawing the identical RNG stream.
//! * [`engine`] — [`Engine`]: struct-of-arrays agent state with
//!   deterministic parallel stepping. RNG streams are derived per
//!   `(seed, round, STREAM_BLOCK-sized block)` via
//!   [`antdensity_stats::rng::SeedSequence`], so results are
//!   bit-identical for any worker count or scheduling — the same
//!   contract as `antdensity_walks::parallel::run_trials`.
//! * [`pool`] — [`WorkerPool`]: persistent worker threads that parallel
//!   stepping and trial fan-out dispatch onto, replacing per-round
//!   `thread::scope` spawns. One process-global pool by default.
//! * [`config`] — [`EngineConfig`]: wall-clock scheduling knobs
//!   (schedule chunk size, inline threshold), decoupled from the
//!   [`STREAM_BLOCK`] determinism granularity so tuning never changes
//!   results.
//! * [`scenario`] — [`Scenario`]: a spec/builder composing topology ×
//!   movement × estimator (Algorithm 1, Algorithm 4, quorum, relative
//!   frequency) × noise into one runnable, seedable description.
//! * [`observer`] — the streaming estimator pipeline: the driver emits
//!   per-round encounter events once, [`Observer`]s consume them
//!   incrementally, and [`Scenario::run_streamed`] snapshots several
//!   estimators and whole accuracy-vs-rounds curves from **one**
//!   simulation pass, bit-identical to dedicated runs.
//! * [`sampling`] — exact small-parameter binomial/Poisson samplers for
//!   the noisy-sensing models, the batched uniform-index fills (single
//!   stream and lane-interleaved), and the `O(log n)` 64-bit
//!   binomial/multinomial samplers behind count-based stepping.
//! * [`counts`] — [`CountsEngine`]: the occupancy-count fast path for
//!   memoryless pure walks — one `u64` count per node, one multinomial
//!   split per node per round, `O(nodes)` instead of `O(agents)`.
//!   Distributionally equivalent to the agent-level engine, and
//!   bit-deterministic across thread counts.
//!
//! # Quickstart
//!
//! ```
//! use antdensity_engine::scenario::{Scenario, TopologySpec};
//!
//! let outcome = Scenario::new(TopologySpec::Torus2d { side: 32 }, 65, 256)
//!     .with_threads(4)
//!     .run(42);
//! // bit-identical for any thread count:
//! assert_eq!(
//!     outcome,
//!     Scenario::new(TopologySpec::Torus2d { side: 32 }, 65, 256).run(42)
//! );
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod config;
pub mod counts;
pub mod engine;
pub mod movement;
pub mod observer;
pub mod occupancy;
pub mod pool;
pub mod sampling;
pub mod scenario;
pub mod step;

pub use config::{EngineConfig, STREAM_BLOCK};
pub use counts::{CountsEngine, CountsOutcome, COUNT_BLOCK};
pub use engine::{AgentId, Engine, GroupId, PARALLEL_CHUNK};
pub use movement::MovementModel;
pub use observer::{
    Alg1Observer, Alg4Observer, EncounterTallies, Observer, QuorumObserver, RecordingObserver,
    RelFreqObserver, RoundEvents, Schedule, SimFamily, UnbiasedObserver,
};
pub use occupancy::{DenseOccupancy, GroupOccupancy, MAX_NODES};
pub use pool::WorkerPool;
pub use scenario::{
    EstimatorSpec, NoiseSpec, ObserverTap, Scenario, ScenarioOutcome, TopologySpec,
};
pub use step::Interaction;
