//! Engine tuning knobs, split from the determinism contract.
//!
//! Two sizes govern parallel stepping and they are deliberately
//! different things:
//!
//! * [`STREAM_BLOCK`] — the **determinism granularity**. Agents are
//!   partitioned into fixed 256-agent blocks; block `b` of round `r`
//!   always draws from the stream `seeds.subsequence(r).rng(b)`. This is
//!   part of the engine's reproducibility contract (seeds recorded by
//!   older runs replay bit-for-bit) and is therefore a constant, not a
//!   knob.
//! * [`EngineConfig::schedule_chunk`] — the **scheduling granularity**:
//!   how many agents one unit of worker-pool work covers. Any multiple
//!   of [`STREAM_BLOCK`] is valid, and because RNG streams attach to
//!   stream blocks (never to schedule chunks, workers, or threads),
//!   tuning it changes wall-clock only — results are bit-identical for
//!   every setting, which the engine's property tests assert.

/// Agents per RNG stream block: the fixed determinism granularity of
/// [`Engine::step_round_parallel`](crate::Engine::step_round_parallel).
/// Block `b` of round `r` draws from `seeds.subsequence(r).rng(b)`
/// regardless of chunking, worker count, or scheduling order.
pub const STREAM_BLOCK: usize = 256;

/// Wall-clock tuning knobs for parallel stepping. **No setting here ever
/// changes simulation results** — the deterministic chunk→stream mapping
/// is anchored to [`STREAM_BLOCK`]-sized blocks, not to these sizes.
///
/// # Defaults
///
/// | knob | default | meaning |
/// |---|---|---|
/// | `schedule_chunk` | 256 (= [`STREAM_BLOCK`]) | agents per unit of pool work |
/// | `min_chunks_per_worker` | 4 | below this, the chunked loop runs inline |
/// | `inline_step_threshold` | 2048 | populations below this always step inline |
/// | `blocked_round_threshold` | 262144 (2¹⁸) | pure-walk populations at/above this take the cache-blocked round |
///
/// The defaults reproduce the pre-pool engine's worker policy exactly
/// (one chunk per stream block, at least 4 chunks per worker, so
/// parallel dispatch engages from ~2048 agents at 2 workers); larger
/// `schedule_chunk` values trade scheduling granularity for fewer
/// queue operations on very large populations.
///
/// # Example
///
/// ```
/// use antdensity_engine::{EngineConfig, STREAM_BLOCK};
///
/// let cfg = EngineConfig {
///     schedule_chunk: 8 * STREAM_BLOCK,
///     ..EngineConfig::default()
/// };
/// cfg.validate(); // panics on bad values
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Agents per unit of worker-pool work. Must be a positive multiple
    /// of [`STREAM_BLOCK`]. Larger chunks mean fewer queue operations
    /// and better per-task locality; smaller chunks balance better.
    pub schedule_chunk: usize,
    /// Minimum schedule chunks each worker must receive before parallel
    /// dispatch engages; below the threshold the chunked loop runs
    /// inline on the calling thread (same results, no hand-off cost).
    pub min_chunks_per_worker: usize,
    /// Populations strictly below this many agents always step inline,
    /// regardless of worker count: at ~1k agents the pool's hand-off
    /// latency exceeds the whole round's work (the `parallel_scaling`
    /// baseline shows 2–8 workers *slower* than 1 there). Results are
    /// bit-identical either way; set to 0 to force pool dispatch in
    /// scaling experiments.
    pub inline_step_threshold: usize,
    /// Pure-walk populations at or above this many agents take the
    /// cache-blocked round: draw all move indices into one scratch
    /// buffer (same per-[`STREAM_BLOCK`] streams, so identical values),
    /// then apply them through the topology's tiled gather and the
    /// blocked occupancy rebuild. Bit-identical to the per-block path;
    /// `usize::MAX` disables it.
    pub blocked_round_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            schedule_chunk: STREAM_BLOCK,
            min_chunks_per_worker: 4,
            inline_step_threshold: 2048,
            blocked_round_threshold: 1 << 18,
        }
    }
}

impl EngineConfig {
    /// Checks the invariants.
    ///
    /// # Panics
    ///
    /// Panics if `schedule_chunk` is zero or not a multiple of
    /// [`STREAM_BLOCK`], or if `min_chunks_per_worker` is zero.
    pub fn validate(&self) {
        assert!(
            self.schedule_chunk > 0 && self.schedule_chunk.is_multiple_of(STREAM_BLOCK),
            "schedule_chunk must be a positive multiple of {STREAM_BLOCK}, got {}",
            self.schedule_chunk
        );
        assert!(
            self.min_chunks_per_worker > 0,
            "min_chunks_per_worker must be at least 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        EngineConfig::default().validate();
        assert_eq!(EngineConfig::default().schedule_chunk % STREAM_BLOCK, 0);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn misaligned_chunk_rejected() {
        EngineConfig {
            schedule_chunk: STREAM_BLOCK + 1,
            ..EngineConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn zero_chunk_rejected() {
        EngineConfig {
            schedule_chunk: 0,
            ..EngineConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_min_chunks_rejected() {
        EngineConfig {
            min_chunks_per_worker: 0,
            ..EngineConfig::default()
        }
        .validate();
    }
}
