//! The streaming observer pipeline: one simulation pass feeds every
//! estimator and every rounds-checkpoint.
//!
//! The paper's headline plots compare estimators (Algorithm 1,
//! Algorithm 4, quorum read-out, relative frequency) across round
//! budgets — axes that historically each cost a full re-simulation. The
//! observation that collapses them: every estimator in the paper is a
//! function of the *cumulative per-agent encounter tallies*, and a run
//! of `t` rounds is a strict prefix of a run of `t' > t` rounds (RNG
//! streams are derived per round, so shorter runs draw a prefix of
//! longer ones). So the engine emits each round's encounter events
//! **once** ([`RoundEvents`]), a single [`EncounterTallies`] accumulates
//! them, and any number of [`Observer`]s snapshot estimates at the
//! checkpoints of a [`Schedule`] — bit-identical to running each
//! `(estimator, rounds)` combination separately, which the golden-vector
//! and replay suites pin.
//!
//! Fusion rules ([`SimFamily`]): estimators sharing a *simulation
//! family* — identical movement configuration and RNG draw pattern — can
//! tap one pass. Algorithm 1, quorum, and relative frequency share the
//! standard family (group bookkeeping draws no randomness); Algorithm 4
//! is its own family (it flips role coins and replaces movement).
//! [`Scenario::run_streamed`](crate::scenario::Scenario::run_streamed)
//! is the driver; `antdensity-sweep` plans grid-wide fusion on top.

use crate::sampling::CollisionNoise;
use crate::scenario::{EstimatorSpec, ScenarioOutcome};
pub use antdensity_stats::schedule::Schedule;

/// One round's encounter events, emitted once by the driver and shared
/// by every observer.
#[derive(Debug, Clone, Copy)]
pub struct RoundEvents<'a> {
    /// 1-based index of the round that just completed.
    pub round: u64,
    /// Per-agent observed collision counts this round (post-noise when a
    /// sensor model is active — the stream estimators actually see).
    pub counts: &'a [u32],
    /// Per-agent *true* collision counts this round (pre-noise;
    /// identical slice to `counts` under perfect sensing).
    pub raw_counts: &'a [u32],
    /// Per-agent property-group encounter counts (Section 5.2), when the
    /// simulation tracks a property group.
    pub group_counts: Option<&'a [u32]>,
}

/// Cumulative per-agent encounter tallies — the shared state every
/// standard observer snapshots from. The driver maintains exactly one,
/// no matter how many observers tap the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncounterTallies {
    rounds: u64,
    totals: Vec<u64>,
    group_totals: Option<Vec<u64>>,
}

impl EncounterTallies {
    /// Empty tallies for `num_agents` agents, optionally tracking a
    /// property group.
    pub fn new(num_agents: usize, track_groups: bool) -> Self {
        Self {
            rounds: 0,
            totals: vec![0; num_agents],
            group_totals: track_groups.then(|| vec![0; num_agents]),
        }
    }

    /// Accumulates one round of events.
    ///
    /// # Panics
    ///
    /// Panics if the event's agent count differs from the tallies', if
    /// rounds arrive out of order, or if group tracking is on but the
    /// event carries no group counts.
    pub fn record(&mut self, ev: &RoundEvents<'_>) {
        assert_eq!(ev.counts.len(), self.totals.len(), "agent count mismatch");
        assert_eq!(ev.round, self.rounds + 1, "rounds must arrive in order");
        for (t, &c) in self.totals.iter_mut().zip(ev.counts) {
            *t += u64::from(c);
        }
        if let Some(gt) = &mut self.group_totals {
            let gc = ev
                .group_counts
                .expect("group tracking enabled but event has no group counts");
            for (t, &c) in gt.iter_mut().zip(gc) {
                *t += u64::from(c);
            }
        }
        self.rounds = ev.round;
    }

    /// Rounds accumulated so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Cumulative per-agent observed collision counts.
    pub fn totals(&self) -> &[u64] {
        &self.totals
    }

    /// Cumulative per-agent property-group counts, when tracked.
    pub fn group_totals(&self) -> Option<&[u64]> {
        self.group_totals.as_deref()
    }

    /// Per-agent running density estimates `d̃ = c/t`.
    ///
    /// # Panics
    ///
    /// Panics before the first round is recorded.
    pub fn density_estimates(&self) -> Vec<f64> {
        assert!(self.rounds > 0, "no rounds recorded yet");
        let t = self.rounds as f64;
        self.totals.iter().map(|&c| c as f64 / t).collect()
    }
}

/// An incremental estimator tapping the shared event stream.
///
/// Observers see every round once (`on_round`) and must be able to
/// produce a full [`ScenarioOutcome`] at any checkpoint (`snapshot`).
/// The standard estimators are pure functions of the shared
/// [`EncounterTallies`], so their `on_round` is a no-op; stateful
/// observers (sequential stopping rules, recorders) override it.
pub trait Observer {
    /// Consumes one round of encounter events (default: nothing — the
    /// shared tallies already accumulated them).
    fn on_round(&mut self, _ev: &RoundEvents<'_>) {}

    /// Reads the estimator's outcome off the shared tallies at a
    /// checkpoint. Must equal the outcome of a dedicated
    /// `Scenario::run` of `tallies.rounds()` rounds, bit for bit.
    fn snapshot(&self, tallies: &EncounterTallies, true_density: f64) -> ScenarioOutcome;
}

/// Algorithm 1: `d̃ = c/t` per agent.
#[derive(Debug, Clone, Copy, Default)]
pub struct Alg1Observer;

impl Observer for Alg1Observer {
    fn snapshot(&self, tallies: &EncounterTallies, true_density: f64) -> ScenarioOutcome {
        ScenarioOutcome {
            estimates: tallies.density_estimates(),
            collision_counts: tallies.totals().to_vec(),
            property_estimates: None,
            quorum_decisions: None,
            walking: None,
            rounds: tallies.rounds(),
            true_density,
        }
    }
}

/// Algorithm 4 (Appendix A): the stationary/mobile correction
/// `d̃ = 2·(c mod t)/t`, with the per-agent walking flags drawn by the
/// driver's role coins.
#[derive(Debug, Clone)]
pub struct Alg4Observer {
    /// Which agents drift (`true`) vs stay stationary.
    pub walking: Vec<bool>,
}

impl Observer for Alg4Observer {
    fn snapshot(&self, tallies: &EncounterTallies, true_density: f64) -> ScenarioOutcome {
        let rounds = tallies.rounds();
        let t = rounds as f64;
        let corrected: Vec<u64> = tallies.totals().iter().map(|&c| c % rounds).collect();
        ScenarioOutcome {
            estimates: corrected.iter().map(|&c| 2.0 * c as f64 / t).collect(),
            collision_counts: corrected,
            property_estimates: None,
            quorum_decisions: None,
            walking: Some(self.walking.clone()),
            rounds,
            true_density,
        }
    }
}

/// Quorum read-out (Section 6.2): Algorithm 1 plus a per-agent
/// `d̃ ≥ threshold` verdict at the checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct QuorumObserver {
    /// Density threshold to detect.
    pub threshold: f64,
}

impl Observer for QuorumObserver {
    fn snapshot(&self, tallies: &EncounterTallies, true_density: f64) -> ScenarioOutcome {
        let estimates = tallies.density_estimates();
        let decisions = estimates.iter().map(|&e| e >= self.threshold).collect();
        ScenarioOutcome {
            estimates,
            collision_counts: tallies.totals().to_vec(),
            property_estimates: None,
            quorum_decisions: Some(decisions),
            walking: None,
            rounds: tallies.rounds(),
            true_density,
        }
    }
}

/// Section 5.2 relative frequency: overall and property-only density
/// estimates from the shared tallies' group stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelFreqObserver;

impl Observer for RelFreqObserver {
    /// # Panics
    ///
    /// Panics if the tallies do not track a property group.
    fn snapshot(&self, tallies: &EncounterTallies, true_density: f64) -> ScenarioOutcome {
        let t = tallies.rounds() as f64;
        let group = tallies
            .group_totals()
            .expect("relative frequency needs group tallies");
        ScenarioOutcome {
            estimates: tallies.density_estimates(),
            collision_counts: tallies.totals().to_vec(),
            property_estimates: Some(group.iter().map(|&c| c as f64 / t).collect()),
            quorum_decisions: None,
            walking: None,
            rounds: tallies.rounds(),
            true_density,
        }
    }
}

/// Section 6.1 noise unbiasing as a composable observer layer: wraps any
/// observer and corrects its density estimates by the known sensor
/// parameters, `d̃ = (d̃_obs − s)/p` (clamped at 0). Property estimates
/// are corrected the same way; counts and decisions pass through.
#[derive(Debug, Clone)]
pub struct UnbiasedObserver<O> {
    /// The estimator whose snapshot is corrected.
    pub inner: O,
    /// The (known) sensor model to invert.
    pub noise: CollisionNoise,
}

impl<O: Observer> Observer for UnbiasedObserver<O> {
    fn on_round(&mut self, ev: &RoundEvents<'_>) {
        self.inner.on_round(ev);
    }

    fn snapshot(&self, tallies: &EncounterTallies, true_density: f64) -> ScenarioOutcome {
        let mut out = self.inner.snapshot(tallies, true_density);
        for e in &mut out.estimates {
            *e = self.noise.correct(*e);
        }
        if let Some(prop) = &mut out.property_estimates {
            for e in prop {
                *e = self.noise.correct(*e);
            }
        }
        out
    }
}

/// An observer that records the raw event stream — the replay harness
/// behind the observer-equivalence property suite, and a debugging tap.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// Recorded rounds, in order.
    pub rounds: Vec<RecordedRound>,
}

/// One recorded round of events (owned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedRound {
    /// 1-based round index.
    pub round: u64,
    /// Observed per-agent counts (post-noise).
    pub counts: Vec<u32>,
    /// True per-agent counts (pre-noise).
    pub raw_counts: Vec<u32>,
    /// Property-group counts, when tracked.
    pub group_counts: Option<Vec<u32>>,
}

impl RecordingObserver {
    /// Replays the recording into fresh tallies and an observer,
    /// returning the observer's snapshot after the final recorded round.
    ///
    /// # Panics
    ///
    /// Panics if the recording is empty.
    pub fn replay(&self, observer: &mut dyn Observer, true_density: f64) -> ScenarioOutcome {
        let first = self.rounds.first().expect("empty recording");
        let mut tallies = EncounterTallies::new(first.counts.len(), first.group_counts.is_some());
        for r in &self.rounds {
            let ev = RoundEvents {
                round: r.round,
                counts: &r.counts,
                raw_counts: &r.raw_counts,
                group_counts: r.group_counts.as_deref(),
            };
            tallies.record(&ev);
            observer.on_round(&ev);
        }
        observer.snapshot(&tallies, true_density)
    }
}

impl Observer for RecordingObserver {
    fn on_round(&mut self, ev: &RoundEvents<'_>) {
        self.rounds.push(RecordedRound {
            round: ev.round,
            counts: ev.counts.to_vec(),
            raw_counts: ev.raw_counts.to_vec(),
            group_counts: ev.group_counts.map(<[u32]>::to_vec),
        });
    }

    /// Recorders have no estimate; snapshot reads as Algorithm 1 (the
    /// identity estimator over the tallies).
    fn snapshot(&self, tallies: &EncounterTallies, true_density: f64) -> ScenarioOutcome {
        Alg1Observer.snapshot(tallies, true_density)
    }
}

/// The simulation family an estimator's events come from: taps sharing a
/// family consume the identical event stream and can share one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimFamily {
    /// Every agent follows the scenario's movement model; group
    /// bookkeeping (which draws no randomness) tracks the first
    /// `property_agents` agents when any tap needs it.
    Standard {
        /// Property-group size a relative-frequency tap requires
        /// (`None` when no tap tracks a group).
        property_agents: Option<usize>,
    },
    /// Algorithm 4's stationary/drift split: role coins are flipped and
    /// per-agent movement replaced, so it never fuses with the standard
    /// family.
    Alg4,
}

impl SimFamily {
    /// The combined family if `self` and `other` can share one
    /// simulation pass, `None` otherwise. Standard families fuse unless
    /// they demand *different* property-group sizes (the group occupancy
    /// buffer tracks one prefix set per pass).
    pub fn fuse(self, other: SimFamily) -> Option<SimFamily> {
        match (self, other) {
            (SimFamily::Alg4, SimFamily::Alg4) => Some(SimFamily::Alg4),
            (
                SimFamily::Standard { property_agents: a },
                SimFamily::Standard { property_agents: b },
            ) => match (a, b) {
                (Some(x), Some(y)) if x != y => None,
                (x, y) => Some(SimFamily::Standard {
                    property_agents: x.or(y),
                }),
            },
            _ => None,
        }
    }
}

impl EstimatorSpec {
    /// The simulation family this estimator's events come from (see
    /// [`SimFamily`]).
    pub fn sim_family(&self) -> SimFamily {
        match self {
            Self::Algorithm1 | Self::Quorum { .. } => SimFamily::Standard {
                property_agents: None,
            },
            Self::RelativeFrequency { property_agents } => SimFamily::Standard {
                property_agents: Some(*property_agents),
            },
            Self::Algorithm4 => SimFamily::Alg4,
        }
    }
}

/// Builds the observer for an estimator spec. `walking` carries the
/// driver's role-coin draws and is required exactly for `Algorithm4`.
///
/// # Panics
///
/// Panics if `Algorithm4` is requested without walking flags.
pub fn observer_for(estimator: &EstimatorSpec, walking: Option<&[bool]>) -> Box<dyn Observer> {
    match estimator {
        EstimatorSpec::Algorithm1 => Box::new(Alg1Observer),
        EstimatorSpec::Algorithm4 => Box::new(Alg4Observer {
            walking: walking.expect("Algorithm 4 needs walking flags").to_vec(),
        }),
        EstimatorSpec::Quorum { threshold } => Box::new(QuorumObserver {
            threshold: *threshold,
        }),
        EstimatorSpec::RelativeFrequency { .. } => Box::new(RelFreqObserver),
    }
}

impl std::fmt::Debug for dyn Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn Observer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tallies_of(rows: &[&[u32]], groups: Option<&[&[u32]]>) -> EncounterTallies {
        let mut t = EncounterTallies::new(rows[0].len(), groups.is_some());
        for (i, row) in rows.iter().enumerate() {
            let g = groups.map(|g| g[i]);
            t.record(&RoundEvents {
                round: i as u64 + 1,
                counts: row,
                raw_counts: row,
                group_counts: g,
            });
        }
        t
    }

    #[test]
    fn tallies_accumulate_in_order() {
        let t = tallies_of(&[&[1, 0, 2], &[0, 3, 1]], None);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.totals(), &[1, 3, 3]);
        assert_eq!(t.density_estimates(), vec![0.5, 1.5, 1.5]);
        assert!(t.group_totals().is_none());
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn tallies_reject_round_gaps() {
        let mut t = EncounterTallies::new(1, false);
        t.record(&RoundEvents {
            round: 2,
            counts: &[1],
            raw_counts: &[1],
            group_counts: None,
        });
    }

    #[test]
    fn alg1_and_quorum_share_tallies() {
        let t = tallies_of(&[&[2, 0], &[2, 0]], None);
        let a = Alg1Observer.snapshot(&t, 0.5);
        assert_eq!(a.estimates, vec![2.0, 0.0]);
        assert_eq!(a.collision_counts, vec![4, 0]);
        let q = QuorumObserver { threshold: 1.0 }.snapshot(&t, 0.5);
        assert_eq!(q.estimates, a.estimates);
        assert_eq!(q.quorum_decisions, Some(vec![true, false]));
    }

    #[test]
    fn alg4_mod_t_correction() {
        // totals 5 and 4 over t=4 rounds: 5 % 4 = 1, 4 % 4 = 0
        let t = tallies_of(&[&[2, 1], &[1, 1], &[1, 1], &[1, 1]], None);
        let o = Alg4Observer {
            walking: vec![true, false],
        }
        .snapshot(&t, 0.1);
        assert_eq!(o.collision_counts, vec![1, 0]);
        assert_eq!(o.estimates, vec![0.5, 0.0]);
        assert_eq!(o.walking, Some(vec![true, false]));
    }

    #[test]
    fn relfreq_reads_group_stream() {
        let t = tallies_of(&[&[2, 2], &[2, 0]], Some(&[&[1, 1], &[1, 0]]));
        let o = RelFreqObserver.snapshot(&t, 0.2);
        assert_eq!(o.estimates, vec![2.0, 1.0]);
        assert_eq!(o.property_estimates, Some(vec![1.0, 0.5]));
    }

    #[test]
    fn unbiased_observer_inverts_known_noise() {
        let t = tallies_of(&[&[4, 0]], None);
        let noisy = Alg1Observer.snapshot(&t, 0.1);
        let unbiased = UnbiasedObserver {
            inner: Alg1Observer,
            noise: CollisionNoise::new(0.5, 1.0),
        }
        .snapshot(&t, 0.1);
        assert_eq!(noisy.estimates, vec![4.0, 0.0]);
        // (4 - 1) / 0.5 = 6; (0 - 1)/0.5 clamps at 0
        assert_eq!(unbiased.estimates, vec![6.0, 0.0]);
        assert_eq!(unbiased.collision_counts, noisy.collision_counts);
    }

    #[test]
    fn recording_replays_bit_for_bit() {
        let rows: [&[u32]; 3] = [&[1, 2], &[0, 1], &[3, 0]];
        let t = tallies_of(&rows, None);
        let mut rec = RecordingObserver::default();
        for (i, row) in rows.iter().enumerate() {
            rec.on_round(&RoundEvents {
                round: i as u64 + 1,
                counts: row,
                raw_counts: row,
                group_counts: None,
            });
        }
        let direct = QuorumObserver { threshold: 0.5 }.snapshot(&t, 0.25);
        let replayed = rec.replay(&mut QuorumObserver { threshold: 0.5 }, 0.25);
        assert_eq!(direct, replayed);
    }

    #[test]
    fn sim_families_fuse_by_the_rules() {
        let std_none = EstimatorSpec::Algorithm1.sim_family();
        let quorum = EstimatorSpec::Quorum { threshold: 0.1 }.sim_family();
        let rf4 = EstimatorSpec::RelativeFrequency { property_agents: 4 }.sim_family();
        let rf8 = EstimatorSpec::RelativeFrequency { property_agents: 8 }.sim_family();
        let alg4 = EstimatorSpec::Algorithm4.sim_family();
        assert_eq!(std_none.fuse(quorum), Some(std_none));
        assert_eq!(
            std_none.fuse(rf4),
            Some(SimFamily::Standard {
                property_agents: Some(4)
            })
        );
        assert_eq!(rf4.fuse(rf8), None, "different group sizes cannot fuse");
        assert_eq!(alg4.fuse(alg4), Some(SimFamily::Alg4));
        assert_eq!(alg4.fuse(std_none), None);
        assert_eq!(std_none.fuse(alg4), None);
    }

    #[test]
    #[should_panic(expected = "walking flags")]
    fn observer_for_alg4_needs_walking() {
        let _ = observer_for(&EstimatorSpec::Algorithm4, None);
    }
}
