//! The round-stepping kernels.
//!
//! Two kernels share one semantics (the paper's synchronous model with the
//! Section 6.1 avoidance/flee variants):
//!
//! * [`step_slice`] — sequential over a slice of agents, drawing from one
//!   caller-supplied RNG **in exactly the order the original
//!   `SyncArena::step_round` did**, so an arena delegating here is
//!   bit-identical to the pre-engine implementation for any seed.
//! * The batched engine calls [`step_slice`] once per fixed-size *chunk*
//!   of agents with a per-`(round, chunk)` derived RNG stream, which makes
//!   parallel stepping bit-identical for every thread count (the stream an
//!   agent draws from depends only on its chunk, never on the scheduler).
//!
//! Agents sense **stale** occupancy — last round's index — before moving:
//! in the synchronous model an agent cannot see the simultaneous moves of
//! others.

use crate::movement::MovementModel;
use crate::occupancy::DenseOccupancy;
use antdensity_graphs::{NodeId, Topology};
use rand::Rng;
use rand::RngCore;

/// The Section 6.1 interaction variants layered over a movement model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Interaction {
    /// Back-off probability when the move target was occupied last round
    /// (`None` disables avoidance entirely, matching the paper's model).
    pub avoidance: Option<f64>,
    /// Whether an agent that collided last round takes two steps.
    pub flee: bool,
}

impl Interaction {
    /// The paper's exact model: no avoidance, no flee.
    pub fn pure() -> Self {
        Self::default()
    }

    /// True when no variant is active and the fast path applies.
    pub fn is_pure(&self) -> bool {
        self.avoidance.is_none() && !self.flee
    }

    /// Validates and sets the avoidance probability.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn set_avoidance(&mut self, prob: Option<f64>) {
        if let Some(p) = prob {
            assert!((0.0..=1.0).contains(&p), "avoidance probability in [0,1]");
        }
        self.avoidance = prob;
    }
}

/// Moves every agent in `positions` one round, reading stale occupancy
/// from `occ` and drawing from `rng` in the legacy arena's exact order.
///
/// `positions` and `movement` are parallel slices (one entry per agent in
/// this batch). `occ` must hold the *previous* round's counts over the
/// whole population (it is only read on the avoidance/flee path).
pub fn step_slice<T: Topology + ?Sized>(
    topo: &T,
    positions: &mut [u32],
    movement: &[MovementModel],
    occ: &DenseOccupancy,
    interaction: &Interaction,
    rng: &mut dyn RngCore,
) {
    debug_assert_eq!(positions.len(), movement.len());
    if interaction.is_pure() {
        for (pos, model) in positions.iter_mut().zip(movement) {
            *pos = model.step(topo, *pos as NodeId, rng) as u32;
        }
        return;
    }
    for (pos, model) in positions.iter_mut().zip(movement) {
        let cur = *pos as NodeId;
        let collided = occ.count(cur) >= 2;
        let mut next = model.step(topo, cur, rng);
        if let Some(p) = interaction.avoidance {
            let target_busy = next != cur && occ.count(next) >= 1;
            if target_busy && rng.gen_bool(p) {
                next = cur;
            }
        }
        if interaction.flee && collided {
            next = model.step(topo, next, rng);
        }
        *pos = next as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::Torus2d;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pure_step_advances_all_agents_one_hop() {
        let t = Torus2d::new(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut pos = vec![0u32, 9, 17, 63];
        let before = pos.clone();
        let movement = vec![MovementModel::Pure; 4];
        let occ = DenseOccupancy::new(t.num_nodes());
        step_slice(
            &t,
            &mut pos,
            &movement,
            &occ,
            &Interaction::pure(),
            &mut rng,
        );
        for (b, a) in before.iter().zip(&pos) {
            assert_eq!(t.torus_distance(*b as u64, *a as u64), 1);
        }
    }

    #[test]
    fn full_avoidance_freezes_agent_next_to_occupied_target() {
        // Two agents adjacent on a ring-like torus row; with avoidance 1.0
        // an agent whose proposed move lands on the other's node stays put.
        let t = Torus2d::new(4);
        let mut occ = DenseOccupancy::new(t.num_nodes());
        occ.rebuild(&[0, 1]);
        let movement = vec![MovementModel::Pure; 2];
        let interaction = Interaction {
            avoidance: Some(1.0),
            flee: false,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut pos = vec![0u32, 1];
            step_slice(&t, &mut pos, &movement, &occ, &interaction, &mut rng);
            // agent 0 either stayed (blocked) or moved to an unoccupied node
            assert!(pos[0] == 0 || pos[0] != 1, "agent 0 landed on busy node");
        }
    }

    #[test]
    fn flee_takes_two_steps_after_collision() {
        let t = Torus2d::new(16);
        let mut occ = DenseOccupancy::new(t.num_nodes());
        occ.rebuild(&[5, 5]);
        let movement = vec![MovementModel::Drift { move_index: 2 }; 2];
        let interaction = Interaction {
            avoidance: None,
            flee: true,
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let mut pos = vec![5u32, 5];
        step_slice(&t, &mut pos, &movement, &occ, &interaction, &mut rng);
        // deterministic drift: colliding agents moved two (0,1) hops
        assert_eq!(pos, vec![t.offset(5, 0, 2) as u32; 2]);
    }

    #[test]
    fn interaction_validation() {
        let mut i = Interaction::pure();
        assert!(i.is_pure());
        i.set_avoidance(Some(0.5));
        assert!(!i.is_pure());
        i.set_avoidance(None);
        assert!(i.is_pure());
    }

    #[test]
    #[should_panic(expected = "avoidance probability")]
    fn bad_avoidance_rejected() {
        let mut i = Interaction::pure();
        i.set_avoidance(Some(-0.1));
    }
}
