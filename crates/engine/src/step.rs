//! The round-stepping kernels.
//!
//! Three kernels share one semantics (the paper's synchronous model with
//! the Section 6.1 avoidance/flee variants):
//!
//! * [`step_slice`] — sequential over a slice of agents, drawing from one
//!   caller-supplied RNG **in exactly the order the original
//!   `SyncArena::step_round` did**, so an arena delegating here is
//!   bit-identical to the pre-engine implementation for any seed. The
//!   function is generic over both the topology and the RNG: concrete
//!   call sites monomorphize the whole draw chain (no per-draw vtable),
//!   while `&mut dyn RngCore` callers keep working and consume the
//!   identical bit-stream.
//! * [`step_slice_pure_batched`] — the fast path for the paper's exact
//!   model (pure walks, no interaction variants) on regular topologies:
//!   move indices are sampled into a stack buffer chunk-at-a-time via
//!   [`crate::sampling::fill_uniform_indices`], then applied. The draws
//!   it makes are bit-for-bit the draws `step_slice` would make for the
//!   same agents, so the two kernels are interchangeable per block.
//! * The batched engine calls one of these once per fixed-size *stream
//!   block* of agents with a per-`(round, block)` derived RNG stream,
//!   which makes parallel stepping bit-identical for every worker count
//!   (the stream an agent draws from depends only on its block, never on
//!   the scheduler).
//!
//! Agents sense **stale** occupancy — last round's index — before moving:
//! in the synchronous model an agent cannot see the simultaneous moves of
//! others. The stale read happens only on the avoidance/flee paths; the
//! pure model never touches the occupancy index while stepping.

use crate::movement::MovementModel;
use crate::occupancy::DenseOccupancy;
use crate::sampling::fill_uniform_indices;
use antdensity_graphs::{NodeId, Topology};
use rand::Rng;
use rand::RngCore;

/// The Section 6.1 interaction variants layered over a movement model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Interaction {
    /// Back-off probability when the move target was occupied last round
    /// (`None` disables avoidance entirely, matching the paper's model).
    pub avoidance: Option<f64>,
    /// Whether an agent that collided last round takes two steps.
    pub flee: bool,
}

impl Interaction {
    /// The paper's exact model: no avoidance, no flee.
    pub fn pure() -> Self {
        Self::default()
    }

    /// True when no variant is active and the fast path applies.
    pub fn is_pure(&self) -> bool {
        self.avoidance.is_none() && !self.flee
    }

    /// Validates and sets the avoidance probability.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn set_avoidance(&mut self, prob: Option<f64>) {
        if let Some(p) = prob {
            assert!((0.0..=1.0).contains(&p), "avoidance probability in [0,1]");
        }
        self.avoidance = prob;
    }
}

/// Moves every agent in `positions` one round, reading stale occupancy
/// from `occ` and drawing from `rng` in the legacy arena's exact order.
///
/// `positions` and `movement` are parallel slices (one entry per agent in
/// this batch). `occ` must hold the *previous* round's counts over the
/// whole population (it is only read on the avoidance/flee path).
pub fn step_slice<T: Topology, R: RngCore + ?Sized>(
    topo: &T,
    positions: &mut [u32],
    movement: &[MovementModel],
    occ: &DenseOccupancy,
    interaction: &Interaction,
    rng: &mut R,
) {
    debug_assert_eq!(positions.len(), movement.len());
    if interaction.is_pure() {
        for (pos, model) in positions.iter_mut().zip(movement) {
            *pos = model.step(topo, *pos as NodeId, rng) as u32;
        }
        return;
    }
    for (pos, model) in positions.iter_mut().zip(movement) {
        let cur = *pos as NodeId;
        let mut next = model.step(topo, cur, rng);
        if let Some(p) = interaction.avoidance {
            let target_busy = next != cur && occ.count(next) >= 1;
            if target_busy && rng.gen_bool(p) {
                next = cur;
            }
        }
        // The stale collision read is needed only when fleeing is on;
        // short-circuit keeps the avoidance-only path free of it. (The
        // read consumes no RNG, so hoisting it past the move draw leaves
        // the draw order untouched.)
        if interaction.flee && occ.count(cur) >= 2 {
            next = model.step(topo, next, rng);
        }
        *pos = next as u32;
    }
}

/// Stack-buffer size of the batched kernel: big enough to amortize the
/// per-fill span classification, small enough to stay in L1.
const SAMPLE_BATCH: usize = 128;

/// The pure-model fast path: every agent walks to a uniformly random
/// move on a topology whose every node has degree `span`. Move indices
/// are bulk-sampled into a stack buffer ([`fill_uniform_indices`]) and
/// then applied in a second tight loop.
///
/// Draws are bit-for-bit the draws [`step_slice`] makes for
/// `MovementModel::Pure` agents under [`Interaction::pure`] — one
/// uniform `[0, span)` sample per agent in agent order — so callers may
/// switch between the kernels per block without changing results. (On
/// [`antdensity_graphs::CompleteGraph`], whose walk resamples uniformly
/// over all `A` nodes, `span = degree = A` consumes the same bits as its
/// `uniform_node` override.)
///
/// The caller asserts the preconditions: `span == degree(v)` for every
/// `v`, all agents `MovementModel::Pure`, interaction pure.
pub fn step_slice_pure_batched<T: Topology, R: RngCore + ?Sized>(
    topo: &T,
    span: u64,
    positions: &mut [u32],
    rng: &mut R,
) {
    let mut idx = [0u32; SAMPLE_BATCH];
    for block in positions.chunks_mut(SAMPLE_BATCH) {
        let buf = &mut idx[..block.len()];
        fill_uniform_indices(span, buf, rng);
        topo.apply_moves(block, buf);
    }
}

/// [`step_slice_pure_batched`] with the RNG-draw vs `apply_moves` split
/// measured: returns accumulated `(draw_ns, apply_ns)` over the slice.
///
/// Draws, destinations, and residual RNG state are **bit-identical** to
/// the untimed kernel — the only difference is clock reads bracketing
/// the two existing phase calls per `SAMPLE_BATCH`-sized buffer fill
/// (never inside the per-agent loops, which live in
/// [`fill_uniform_indices`] and `apply_moves` unchanged). The engine
/// selects this variant with one telemetry check per *round*, so
/// disabled runs never reach it.
pub fn step_slice_pure_batched_timed<T: Topology, R: RngCore + ?Sized>(
    topo: &T,
    span: u64,
    positions: &mut [u32],
    rng: &mut R,
) -> (u64, u64) {
    let mut idx = [0u32; SAMPLE_BATCH];
    let (mut draw_ns, mut apply_ns) = (0u64, 0u64);
    for block in positions.chunks_mut(SAMPLE_BATCH) {
        let buf = &mut idx[..block.len()];
        let t0 = std::time::Instant::now();
        fill_uniform_indices(span, buf, rng);
        let t1 = std::time::Instant::now();
        topo.apply_moves(block, buf);
        let t2 = std::time::Instant::now();
        draw_ns += u64::try_from((t1 - t0).as_nanos()).unwrap_or(u64::MAX);
        apply_ns += u64::try_from((t2 - t1).as_nanos()).unwrap_or(u64::MAX);
    }
    (draw_ns, apply_ns)
}

/// The pure-model fast path fed by [`crate::sampling::RNG_LANES`]
/// interleaved generator lanes instead of a single serial stream.
///
/// Agent `i` of the slice draws from lane `i % RNG_LANES`, exactly as
/// one [`crate::sampling::fill_uniform_indices_lanes`] call over the
/// whole slice would (`SAMPLE_BATCH` is a multiple of the lane count,
/// so chunking never shifts the lane phase). This breaks the serial
/// xoshiro dependency chain that bounds [`step_slice_pure_batched`]:
/// with four independent lanes the next state update of one lane
/// overlaps the output computation of the others.
///
/// The draw streams are **different** from the single-stream kernels by
/// design — callers opt in per block with lane RNGs derived from the
/// same `SeedSequence` block scheme, and results remain deterministic
/// for a fixed lane assignment.
pub fn step_slice_pure_batched_lanes<T: Topology>(
    topo: &T,
    span: u64,
    positions: &mut [u32],
    lanes: &mut [rand::rngs::SmallRng; crate::sampling::RNG_LANES],
) {
    const { assert!(SAMPLE_BATCH.is_multiple_of(crate::sampling::RNG_LANES)) };
    let mut idx = [0u32; SAMPLE_BATCH];
    for block in positions.chunks_mut(SAMPLE_BATCH) {
        let buf = &mut idx[..block.len()];
        crate::sampling::fill_uniform_indices_lanes(span, buf, lanes);
        topo.apply_moves(block, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CompleteGraph, Hypercube, Ring, Torus2d};
    use antdensity_stats::rng::SeedSequence;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pure_step_advances_all_agents_one_hop() {
        let t = Torus2d::new(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut pos = vec![0u32, 9, 17, 63];
        let before = pos.clone();
        let movement = vec![MovementModel::Pure; 4];
        let occ = DenseOccupancy::new(t.num_nodes());
        step_slice(
            &t,
            &mut pos,
            &movement,
            &occ,
            &Interaction::pure(),
            &mut rng,
        );
        for (b, a) in before.iter().zip(&pos) {
            assert_eq!(t.torus_distance(*b as u64, *a as u64), 1);
        }
    }

    #[test]
    fn full_avoidance_freezes_agent_next_to_occupied_target() {
        // Two agents adjacent on a ring-like torus row; with avoidance 1.0
        // an agent whose proposed move lands on the other's node stays put.
        let t = Torus2d::new(4);
        let mut occ = DenseOccupancy::new(t.num_nodes());
        occ.rebuild(&[0, 1]);
        let movement = vec![MovementModel::Pure; 2];
        let interaction = Interaction {
            avoidance: Some(1.0),
            flee: false,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut pos = vec![0u32, 1];
            step_slice(&t, &mut pos, &movement, &occ, &interaction, &mut rng);
            // agent 0 either stayed (blocked) or moved to an unoccupied node
            assert!(pos[0] == 0 || pos[0] != 1, "agent 0 landed on busy node");
        }
    }

    #[test]
    fn flee_takes_two_steps_after_collision() {
        let t = Torus2d::new(16);
        let mut occ = DenseOccupancy::new(t.num_nodes());
        occ.rebuild(&[5, 5]);
        let movement = vec![MovementModel::Drift { move_index: 2 }; 2];
        let interaction = Interaction {
            avoidance: None,
            flee: true,
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let mut pos = vec![5u32, 5];
        step_slice(&t, &mut pos, &movement, &occ, &interaction, &mut rng);
        // deterministic drift: colliding agents moved two (0,1) hops
        assert_eq!(pos, vec![t.offset(5, 0, 2) as u32; 2]);
    }

    #[test]
    fn dyn_rng_draw_order_matches_monomorphized() {
        // The generic kernel with R = SmallRng must reproduce the legacy
        // dyn-erased draws exactly, for every interaction variant.
        let t = Torus2d::new(16);
        let mut occ = DenseOccupancy::new(t.num_nodes());
        occ.rebuild(&[3, 3, 40, 41, 90, 200, 200, 200]);
        let movement = vec![MovementModel::Pure; 8];
        for interaction in [
            Interaction::pure(),
            Interaction {
                avoidance: Some(0.5),
                flee: false,
            },
            Interaction {
                avoidance: Some(0.25),
                flee: true,
            },
            Interaction {
                avoidance: None,
                flee: true,
            },
        ] {
            for seed in 0..20 {
                let start = [3u32, 3, 40, 41, 90, 200, 200, 200];
                let mut mono_pos = start;
                let mut mono_rng = SmallRng::seed_from_u64(seed);
                step_slice(
                    &t,
                    &mut mono_pos,
                    &movement,
                    &occ,
                    &interaction,
                    &mut mono_rng,
                );
                let mut dyn_pos = start;
                let mut base = SmallRng::seed_from_u64(seed);
                let dyn_rng: &mut dyn RngCore = &mut base;
                step_slice(&t, &mut dyn_pos, &movement, &occ, &interaction, dyn_rng);
                assert_eq!(mono_pos, dyn_pos, "{interaction:?} seed {seed}");
            }
        }
    }

    #[test]
    fn batched_pure_kernel_matches_step_slice() {
        // Same draws, same destinations, same residual RNG state — on a
        // power-of-two degree (torus), a non-power-of-two degree
        // (hypercube dims=5), degree 2 (ring), and the complete graph's
        // uniform-resample walk.
        fn check<T: Topology>(topo: T, span: u64, n: usize, seed: u64) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut reference: Vec<u32> = (0..n)
                .map(|i| (i as u64 % topo.num_nodes()) as u32)
                .collect();
            let mut batched = reference.clone();
            let movement = vec![MovementModel::Pure; n];
            let occ = DenseOccupancy::new(topo.num_nodes());
            step_slice(
                &topo,
                &mut reference,
                &movement,
                &occ,
                &Interaction::pure(),
                &mut rng,
            );
            let after_ref = rng.next_u64();
            let mut rng = SmallRng::seed_from_u64(seed);
            step_slice_pure_batched(&topo, span, &mut batched, &mut rng);
            assert_eq!(reference, batched);
            assert_eq!(after_ref, rng.next_u64(), "residual RNG state differs");
        }
        for seed in 0..6 {
            check(Torus2d::new(16), 4, 1000, seed);
            check(Hypercube::new(5), 5, 321, seed);
            check(Ring::new(77), 2, 130, seed);
            check(CompleteGraph::new(1000), 1000, 500, seed);
        }
    }

    #[test]
    fn timed_batched_kernel_is_bit_identical_to_untimed() {
        fn check<T: Topology>(topo: T, span: u64, n: usize, seed: u64) {
            let mut plain: Vec<u32> = (0..n)
                .map(|i| (i as u64 % topo.num_nodes()) as u32)
                .collect();
            let mut timed = plain.clone();
            let mut rng = SmallRng::seed_from_u64(seed);
            step_slice_pure_batched(&topo, span, &mut plain, &mut rng);
            let after_plain = rng.next_u64();
            let mut rng = SmallRng::seed_from_u64(seed);
            let (draw_ns, apply_ns) =
                step_slice_pure_batched_timed(&topo, span, &mut timed, &mut rng);
            assert_eq!(plain, timed);
            assert_eq!(after_plain, rng.next_u64(), "residual RNG state differs");
            // Sanity: both phases ran (clock may be coarse, so only
            // require the totals not to be simultaneously zero for a
            // non-trivial slice).
            assert!(draw_ns > 0 || apply_ns > 0 || n < SAMPLE_BATCH);
        }
        for seed in 0..4 {
            check(Torus2d::new(16), 4, 1000, seed);
            check(Hypercube::new(5), 5, 321, seed);
            check(Ring::new(77), 2, 130, seed);
            check(CompleteGraph::new(1000), 1000, 500, seed);
        }
    }

    #[test]
    fn lanes_kernel_matches_whole_slice_lane_fill() {
        // The chunked kernel must draw agent i from lane i % RNG_LANES
        // exactly as a single lane fill over the whole slice would —
        // including across SAMPLE_BATCH chunk boundaries and a ragged
        // tail — with identical residual lane states.
        use crate::sampling::{fill_uniform_indices_lanes, lane_rngs, RNG_LANES};
        fn check<T: Topology>(topo: T, span: u64, n: usize, seed: u64) {
            let seq = SeedSequence::new(seed);
            let start: Vec<u32> = (0..n)
                .map(|i| (i as u64 % topo.num_nodes()) as u32)
                .collect();
            let mut kernel_pos = start.clone();
            let mut kernel_lanes = lane_rngs(&seq, 0);
            step_slice_pure_batched_lanes(&topo, span, &mut kernel_pos, &mut kernel_lanes);
            let mut reference_lanes = lane_rngs(&seq, 0);
            let mut moves = vec![0u32; n];
            fill_uniform_indices_lanes(span, &mut moves, &mut reference_lanes);
            let mut reference_pos = start;
            topo.apply_moves(&mut reference_pos, &moves);
            assert_eq!(kernel_pos, reference_pos);
            for (k, r) in kernel_lanes.iter_mut().zip(reference_lanes.iter_mut()) {
                assert_eq!(k.next_u64(), r.next_u64(), "residual lane state differs");
            }
            let _ = RNG_LANES;
        }
        for seed in 0..4 {
            check(Torus2d::new(16), 4, SAMPLE_BATCH * 3 + 37, seed);
            check(Hypercube::new(5), 5, 321, seed);
            check(Ring::new(77), 2, 130, seed);
            check(CompleteGraph::new(1000), 1000, 500, seed);
        }
    }

    #[test]
    fn interaction_validation() {
        let mut i = Interaction::pure();
        assert!(i.is_pure());
        i.set_avoidance(Some(0.5));
        assert!(!i.is_pure());
        i.set_avoidance(None);
        assert!(i.is_pure());
    }

    #[test]
    #[should_panic(expected = "avoidance probability")]
    fn bad_avoidance_rejected() {
        let mut i = Interaction::pure();
        i.set_avoidance(Some(-0.1));
    }
}
