//! The count-based stepping equivalence contract.
//!
//! [`CountsEngine`] collapses agents into per-node occupancy counts, so
//! it cannot (and does not) reproduce the agent engine's bit streams.
//! What it guarantees instead is **distributional** equivalence: a
//! uniform multinomial split of a node's count is exactly the law of
//! that many independent pure-walk draws, so every statistic of the
//! occupancy process — stationary visit distributions, estimator error
//! curves — agrees with the agent-level engine. These tests pin that
//! contract the same way `csr_equivalence.rs` pins the CSR chain
//! against the native one: statistically, across unrelated seeds.
//!
//! Determinism, by contrast, is still exact: for a fixed seed the
//! counts trajectory is bit-identical across thread counts and
//! schedules.

use antdensity_engine::{CountsEngine, Engine, EstimatorSpec, NoiseSpec, Scenario, TopologySpec};
use antdensity_graphs::{Ring, Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Time-averaged per-node visit distribution of a counts run.
fn counts_visit_distribution<T: Topology + Sync>(topo: T, agents: u64, seed: u64) -> Vec<f64> {
    let nodes = topo.num_nodes() as usize;
    let rounds = 1500u64;
    let mut engine = CountsEngine::new(topo, agents).with_seed_sequence(SeedSequence::new(seed));
    engine.place_uniform(&SeedSequence::new(seed ^ 0x9e37));
    let mut visits = vec![0u64; nodes];
    for _ in 0..rounds {
        engine.step_round();
        for (v, &c) in engine.counts().iter().enumerate() {
            visits[v] += c;
        }
    }
    let total = (agents * rounds) as f64;
    visits.iter().map(|&v| v as f64 / total).collect()
}

/// Same statistic from the agent-level engine (an independent seed).
fn agent_visit_distribution<T: Topology>(topo: T, agents: usize, seed: u64) -> Vec<f64> {
    let nodes = topo.num_nodes() as usize;
    let rounds = 1500u64;
    let mut engine = Engine::new(topo, agents);
    let mut rng = SmallRng::seed_from_u64(seed);
    engine.place_uniform(&mut rng);
    let mut visits = vec![0u64; nodes];
    for _ in 0..rounds {
        engine.step_round(&mut rng);
        for (_, p) in engine.agent_positions() {
            visits[p as usize] += 1;
        }
    }
    let total = (agents as u64 * rounds) as f64;
    visits.iter().map(|&v| v as f64 / total).collect()
}

/// Stationary occupancy of the counts walk matches the agent walk on
/// the same chain — L1-close across unrelated seeds, and both near the
/// uniform stationary distribution of these regular topologies.
#[test]
fn counts_stationary_occupancy_matches_agent_engine() {
    let counts = counts_visit_distribution(Ring::new(16), 64, 1);
    let agent = agent_visit_distribution(Ring::new(16), 64, 2);
    let l1: f64 = counts.iter().zip(&agent).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 0.10, "ring visit distributions differ: L1 = {l1}");
    let uniform = 1.0 / 16.0;
    for (label, dist) in [("counts", &counts), ("agent", &agent)] {
        let worst = dist
            .iter()
            .map(|p| (p - uniform).abs() / uniform)
            .fold(0.0f64, f64::max);
        assert!(
            worst < 0.25,
            "{label} ring occupancy far from uniform: {worst}"
        );
    }

    let counts = counts_visit_distribution(Torus2d::new(6), 64, 3);
    let agent = agent_visit_distribution(Torus2d::new(6), 64, 4);
    let l1: f64 = counts.iter().zip(&agent).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 0.10, "torus visit distributions differ: L1 = {l1}");
}

/// The Algorithm 1 population-mean estimate from the counts path has the
/// same center as the agent path's: both grand means sit on the true
/// density, and on each other, across independent trials.
#[test]
fn counts_mean_estimate_matches_agent_path_distributionally() {
    let spec = Scenario::new(TopologySpec::Torus2d { side: 16 }, 33, 128);
    let trials = 24u64;
    let mut counts_grand = 0.0;
    let mut agent_grand = 0.0;
    for seed in 0..trials {
        let c = spec.run_counts(seed);
        assert_eq!(c.rounds, 128);
        assert_eq!(c.num_agents, 33);
        counts_grand += c.mean_estimate;
        agent_grand += spec.run(seed).mean_estimate();
    }
    let d = spec.true_density();
    let counts_mean = counts_grand / trials as f64;
    let agent_mean = agent_grand / trials as f64;
    assert!(
        (counts_mean - d).abs() < 0.015,
        "counts grand mean {counts_mean} vs true density {d}"
    );
    assert!(
        (counts_mean - agent_mean).abs() < 0.02,
        "paths disagree: counts {counts_mean}, agent {agent_mean}"
    );
}

/// For one seed the counts outcome is exact: identical across repeats
/// and across thread counts (block streams are fixed per round; workers
/// merge by exact addition).
#[test]
fn counts_outcome_is_deterministic_and_thread_invariant() {
    let spec = Scenario::new(TopologySpec::Torus2d { side: 64 }, 40_000, 24);
    let reference = spec.run_counts(7);
    assert_eq!(spec.run_counts(7), reference, "same seed must repeat");
    for threads in [2usize, 3, 8] {
        let outcome = spec.clone().with_threads(threads).run_counts(7);
        assert_eq!(outcome, reference, "threads {threads} changed the outcome");
    }
}

/// Scheduled snapshots are prefixes of one trajectory: the checkpoint at
/// `t` equals a dedicated `rounds = t` run with the same seed, because
/// round streams are derived per round (a shorter run draws a strict
/// prefix of a longer one).
#[test]
fn counts_scheduled_snapshots_are_run_prefixes() {
    let long = Scenario::new(TopologySpec::Torus2d { side: 16 }, 500, 64);
    let snapshots = long.run_counts_scheduled(11, &[16, 64]);
    assert_eq!(snapshots.len(), 2);
    let short = Scenario::new(TopologySpec::Torus2d { side: 16 }, 500, 16);
    assert_eq!(snapshots[0], short.run_counts(11));
    assert_eq!(snapshots[1], long.run_counts(11));
}

/// Eligibility: exactly the scenarios whose population state is a pure
/// function of occupancy counts qualify.
#[test]
fn counts_compatibility_predicate() {
    let base = Scenario::new(TopologySpec::Torus2d { side: 8 }, 20, 16);
    assert!(base.counts_compatible());
    assert!(Scenario::new(
        TopologySpec::CsrRegular {
            nodes: 64,
            degree: 6
        },
        20,
        16
    )
    .counts_compatible());
    assert!(!base.clone().with_avoidance(0.5).counts_compatible());
    assert!(!base.clone().with_flee().counts_compatible());
    assert!(!base
        .clone()
        .with_movement(antdensity_engine::MovementModel::lazy(0.3))
        .counts_compatible());
    assert!(!base
        .clone()
        .with_noise(NoiseSpec::new(0.8, 0.1))
        .counts_compatible());
    assert!(!base
        .clone()
        .with_estimator(EstimatorSpec::Quorum { threshold: 0.1 })
        .counts_compatible());
    assert!(!Scenario::new(TopologySpec::Complete { nodes: 64 }, 20, 16).counts_compatible());
}

/// Incompatible scenarios are rejected loudly, not silently degraded.
#[test]
#[should_panic(expected = "count-based stepping needs")]
fn counts_rejects_incompatible_scenarios() {
    Scenario::new(TopologySpec::Torus2d { side: 8 }, 20, 16)
        .with_flee()
        .run_counts(1);
}
