//! Property tests: every `TopologySpec` — structured and `csr:*` —
//! round-trips through its canonical token (`Display` → `FromStr` →
//! the same spec), and malformed tokens are rejected rather than
//! silently misparsed.

use antdensity_engine::TopologySpec;
use proptest::prelude::*;

/// Builds the spec for a generated `(variant, a, b, c)` tuple. The
/// discriminant selects the variant; the payloads are clamped into each
/// variant's valid domain (the vendored proptest is range-based, so the
/// one-of is explicit).
fn spec_from(variant: u8, a: u64, b: u64, c: u64) -> TopologySpec {
    match variant % 9 {
        0 => TopologySpec::Torus2d { side: 1 + a % 512 },
        1 => TopologySpec::TorusKd {
            dims: 1 + (b % 5) as u32,
            side: 1 + a % 16,
        },
        2 => TopologySpec::Ring { nodes: 1 + a },
        3 => TopologySpec::Hypercube {
            dims: 1 + (a % 20) as u32,
        },
        4 => TopologySpec::Complete { nodes: 1 + a },
        5 => {
            // valid d-regular parameters: 0 < d < n, n*d even
            let nodes = 4 + a % 4096;
            let mut degree = 1 + b % (nodes - 1);
            if !(nodes * degree).is_multiple_of(2) {
                degree = if degree + 1 < nodes {
                    degree + 1
                } else {
                    degree - 1
                };
            }
            TopologySpec::CsrRegular {
                nodes,
                degree: degree as u32,
            }
        }
        6 => {
            // stay above the parse-time G(n,p) connectivity floor
            // (avg_degree >= ln n - 1)
            let nodes = 8 + a % 4096;
            let floor = ((nodes as f64).ln() - 1.0).ceil().max(1.0) as u64;
            let span = (nodes - 1 - floor).max(1);
            TopologySpec::CsrGnp {
                nodes,
                avg_degree: (floor + b % span) as u32,
            }
        }
        7 => TopologySpec::CsrGridHoles {
            side: 2 + a % 256,
            mask_seed: b,
            hole_pm: (c % 901) as u32,
        },
        _ => TopologySpec::CsrCliqueRing {
            cliques: 2 + a % 64,
            clique_size: 3 + b % 64,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(to_string(spec)) == spec` for every variant, including
    /// the per-mille hole fraction (printed as a decimal fraction).
    #[test]
    fn topology_spec_round_trips(
        variant in 0u8..9,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        c in 0u64..1_000_000,
    ) {
        let spec = spec_from(variant, a, b, c);
        let text = spec.to_string();
        let parsed: TopologySpec = text
            .parse()
            .unwrap_or_else(|e| panic!("`{text}` failed to re-parse: {e}"));
        prop_assert_eq!(parsed, spec);
    }

    /// Corrupting a canonical token never yields a silently different
    /// spec: truncations and field garbling either fail to parse or
    /// parse back to something printed differently.
    #[test]
    fn corrupted_tokens_never_misparse(
        variant in 0u8..9,
        a in 0u64..100_000,
        b in 0u64..100_000,
        c in 0u64..100_000,
    ) {
        let spec = spec_from(variant, a, b, c);
        let text = spec.to_string();
        // drop the last field
        let truncated = &text[..text.rfind(':').unwrap()];
        if let Ok(other) = truncated.parse::<TopologySpec>() {
            prop_assert_ne!(other, spec);
        }
        // garble the kind
        let garbled = format!("x{text}");
        prop_assert!(garbled.parse::<TopologySpec>().is_err());
    }
}
