//! The engine's determinism contracts, property-tested.
//!
//! Three promises are pinned here:
//!
//! 1. **Pool-based parallel stepping is bit-identical to the inline
//!    chunked loop** — for torus, ring, hypercube, and complete
//!    topologies, across 1/2/4/8 workers, explicit pools, the spawn
//!    baseline, and every valid [`EngineConfig`].
//! 2. **The monomorphized kernels reproduce the legacy `dyn` draw
//!    order** — an explicit replica of the pre-monomorphization kernel
//!    (per-agent dyn-dispatched `gen_range` draws, the historical
//!    stale-occupancy read order) must agree with `Engine::step_round`
//!    for historical seeds, every movement model, and every interaction
//!    variant.
//! 3. **Golden trajectories** — exact positions recorded from the
//!    pre-worker-pool engine (PR 1) for fixed seeds; any change to the
//!    stream mapping or the draw algorithms breaks these.

use antdensity_engine::{Engine, EngineConfig, MovementModel, WorkerPool, STREAM_BLOCK};
use antdensity_graphs::{CompleteGraph, Hypercube, NodeId, Ring, Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Legacy kernel replica: the pre-monomorphization draw chain, verbatim.
// ---------------------------------------------------------------------

/// The historical `Topology::random_neighbor` default (and the complete
/// graph's uniform-resample override), drawn through `dyn RngCore`
/// exactly as the pre-monomorphization kernel did.
fn legacy_random_neighbor<T: Topology>(
    topo: &T,
    uniform_resample: bool,
    v: NodeId,
    rng: &mut dyn RngCore,
) -> NodeId {
    if uniform_resample {
        rng.gen_range(0..topo.num_nodes())
    } else {
        let d = topo.degree(v);
        topo.neighbor(v, rng.gen_range(0..d))
    }
}

/// The historical `MovementModel::step`, dyn-dispatched.
fn legacy_model_step<T: Topology>(
    topo: &T,
    uniform_resample: bool,
    model: &MovementModel,
    v: NodeId,
    rng: &mut dyn RngCore,
) -> NodeId {
    match model {
        MovementModel::Pure => legacy_random_neighbor(topo, uniform_resample, v, rng),
        MovementModel::Lazy { stay_prob } => {
            if rng.gen_bool(*stay_prob) {
                v
            } else {
                legacy_random_neighbor(topo, uniform_resample, v, rng)
            }
        }
        MovementModel::Stationary => v,
        MovementModel::Drift { move_index } => topo.neighbor(v, *move_index),
        MovementModel::Biased { move_probs } => {
            let u: f64 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            for (i, &p) in move_probs.iter().enumerate() {
                acc += p;
                if u < acc {
                    return topo.neighbor(v, i);
                }
            }
            v
        }
    }
}

/// One legacy round: per-agent draws in the historical `SyncArena`
/// order, with the historical *pre-move* stale-collision read (the
/// modern kernel hoists that read behind the flee flag; since it
/// consumes no randomness the trajectories must still agree exactly).
#[allow(clippy::too_many_arguments)]
fn legacy_step_round<T: Topology>(
    topo: &T,
    uniform_resample: bool,
    positions: &mut [NodeId],
    movement: &[MovementModel],
    avoidance: Option<f64>,
    flee: bool,
    rng: &mut dyn RngCore,
) {
    let mut occ: HashMap<NodeId, u32> = HashMap::new();
    for &p in positions.iter() {
        *occ.entry(p).or_insert(0) += 1;
    }
    let count = |occ: &HashMap<NodeId, u32>, v: NodeId| occ.get(&v).copied().unwrap_or(0);
    for (pos, model) in positions.iter_mut().zip(movement) {
        let cur = *pos;
        let collided = count(&occ, cur) >= 2;
        let mut next = legacy_model_step(topo, uniform_resample, model, cur, rng);
        if let Some(p) = avoidance {
            let target_busy = next != cur && count(&occ, next) >= 1;
            if target_busy && rng.gen_bool(p) {
                next = cur;
            }
        }
        if flee && collided {
            next = legacy_model_step(topo, uniform_resample, model, next, rng);
        }
        *pos = next;
    }
}

/// A heterogeneous movement population covering every model variant.
fn mixed_movement<T: Topology>(topo: &T, agents: usize, variant: u8) -> Vec<MovementModel> {
    let degree = topo.regular_degree().expect("regular test topologies");
    (0..agents)
        .map(|a| match (a + variant as usize) % 5 {
            0 => MovementModel::Pure,
            1 => MovementModel::lazy(0.25),
            2 => MovementModel::Stationary,
            3 => MovementModel::Drift {
                move_index: a % degree,
            },
            _ => {
                let mut probs = vec![0.0; degree];
                probs[a % degree] = 0.5;
                probs[(a + 1) % degree] = 0.25;
                MovementModel::biased(probs)
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Generic drivers.
// ---------------------------------------------------------------------

/// Runs `rounds` parallel rounds and returns final positions.
/// `workers = None` forces the inline chunked loop (threads = 1);
/// `Some(w)` dispatches onto an explicit `w`-thread pool with chunking
/// configured so the pool path genuinely engages.
#[allow(clippy::too_many_arguments)]
fn parallel_positions<T: Topology + Sync>(
    topo: T,
    agents: usize,
    rounds: u64,
    master: u64,
    place_seed: u64,
    workers: Option<usize>,
    config: EngineConfig,
    avoidance: Option<f64>,
    flee: bool,
) -> Vec<NodeId> {
    let mut engine = Engine::new(topo, agents).with_seed_sequence(SeedSequence::new(master));
    engine = match workers {
        None => engine.with_threads(1),
        Some(w) => engine
            .with_threads(w)
            .with_worker_pool(Arc::new(WorkerPool::new(w))),
    };
    engine = engine.with_config(config);
    engine.set_avoidance(avoidance);
    engine.set_flee(flee);
    let mut rng = SmallRng::seed_from_u64(place_seed);
    engine.place_uniform(&mut rng);
    engine.run_parallel(rounds);
    (0..agents).map(|a| engine.position(a)).collect()
}

/// Pool-vs-inline bit-identity over one topology, all worker counts.
fn assert_pool_matches_inline<T: Topology + Sync + Clone>(
    topo: T,
    agents: usize,
    rounds: u64,
    master: u64,
    avoidance: Option<f64>,
    flee: bool,
) {
    let engaged = EngineConfig {
        schedule_chunk: STREAM_BLOCK,
        min_chunks_per_worker: 1,
        inline_step_threshold: 0,
        blocked_round_threshold: usize::MAX,
    };
    let inline = parallel_positions(
        topo.clone(),
        agents,
        rounds,
        master,
        master ^ 1,
        None,
        EngineConfig::default(),
        avoidance,
        flee,
    );
    for workers in [1usize, 2, 4, 8] {
        let pooled = parallel_positions(
            topo.clone(),
            agents,
            rounds,
            master,
            master ^ 1,
            Some(workers),
            engaged,
            avoidance,
            flee,
        );
        assert_eq!(inline, pooled, "workers {workers}");
    }
}

// ---------------------------------------------------------------------
// Golden trajectories recorded from the pre-worker-pool engine (PR 1).
// ---------------------------------------------------------------------

fn golden_parallel<T: Topology + Sync>(topo: T, agents: usize) -> Vec<NodeId> {
    let mut e = Engine::new(topo, agents)
        .with_seed_sequence(SeedSequence::new(42))
        .with_threads(4);
    let mut rng = SmallRng::seed_from_u64(7);
    e.place_uniform(&mut rng);
    e.run_parallel(3);
    (0..agents).map(|a| e.position(a)).collect()
}

fn golden_sequential<T: Topology>(topo: T, agents: usize) -> Vec<NodeId> {
    let mut e = Engine::new(topo, agents);
    let mut rng = SmallRng::seed_from_u64(7);
    e.place_uniform(&mut rng);
    for _ in 0..3 {
        e.step_round(&mut rng);
    }
    (0..agents).map(|a| e.position(a)).collect()
}

#[test]
fn golden_trajectories_from_pre_pool_engine() {
    assert_eq!(
        golden_parallel(Torus2d::new(16), 10),
        vec![136, 226, 114, 199, 143, 220, 192, 156, 104, 240]
    );
    assert_eq!(
        golden_sequential(Torus2d::new(16), 10),
        vec![121, 243, 99, 197, 158, 235, 191, 126, 98, 225]
    );
    assert_eq!(
        golden_parallel(Ring::new(64), 8),
        vec![42, 34, 35, 7, 15, 28, 49, 13]
    );
    assert_eq!(
        golden_sequential(Ring::new(64), 8),
        vec![40, 34, 35, 7, 13, 28, 49, 15]
    );
    assert_eq!(
        golden_parallel(Hypercube::new(6), 8),
        vec![33, 41, 41, 4, 63, 21, 4, 5]
    );
    assert_eq!(
        golden_sequential(Hypercube::new(6), 8),
        vec![27, 47, 44, 50, 29, 2, 61, 18]
    );
    assert_eq!(
        golden_parallel(CompleteGraph::new(100), 8),
        vec![64, 65, 52, 63, 93, 39, 42, 16]
    );
    assert_eq!(
        golden_sequential(CompleteGraph::new(100), 8),
        vec![79, 61, 15, 84, 11, 76, 55, 53]
    );
}

// ---------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pool_matches_inline_chunked_loop(
        agents in 1usize..2000,
        rounds in 1u64..6,
        master in any::<u64>(),
        variant in 0u8..3,
    ) {
        let (avoidance, flee) = match variant {
            0 => (None, false),
            1 => (Some(0.5), false),
            _ => (Some(0.25), true),
        };
        assert_pool_matches_inline(Torus2d::new(32), agents, rounds, master, avoidance, flee);
        assert_pool_matches_inline(Ring::new(511), agents, rounds, master, avoidance, flee);
        assert_pool_matches_inline(Hypercube::new(9), agents, rounds, master, avoidance, flee);
        assert_pool_matches_inline(
            CompleteGraph::new(777),
            agents,
            rounds,
            master,
            avoidance,
            flee,
        );
    }

    #[test]
    fn schedule_config_never_changes_results(
        agents in 1usize..4000,
        master in any::<u64>(),
        blocks_per_chunk in 1usize..6,
        min_chunks in 1usize..5,
        blocked in any::<bool>(),
    ) {
        let reference = parallel_positions(
            Torus2d::new(64),
            agents,
            4,
            master,
            master ^ 2,
            None,
            EngineConfig::default(),
            None,
            false,
        );
        let tuned = parallel_positions(
            Torus2d::new(64),
            agents,
            4,
            master,
            master ^ 2,
            Some(4),
            EngineConfig {
                schedule_chunk: blocks_per_chunk * STREAM_BLOCK,
                min_chunks_per_worker: min_chunks,
                inline_step_threshold: 0,
                blocked_round_threshold: if blocked { 0 } else { usize::MAX },
            },
            None,
            false,
        );
        prop_assert_eq!(reference, tuned);
    }

    #[test]
    fn pool_matches_per_round_spawn_baseline(
        agents in 1usize..3000,
        rounds in 1u64..5,
        master in any::<u64>(),
    ) {
        let mut pooled = Engine::new(Torus2d::new(64), agents)
            .with_seed_sequence(SeedSequence::new(master))
            .with_threads(4)
            .with_worker_pool(Arc::new(WorkerPool::new(4)))
            .with_config(EngineConfig {
                schedule_chunk: STREAM_BLOCK,
                min_chunks_per_worker: 1,
                inline_step_threshold: 0,
                blocked_round_threshold: usize::MAX,
            });
        let mut spawned = Engine::new(Torus2d::new(64), agents)
            .with_seed_sequence(SeedSequence::new(master))
            .with_threads(4);
        let mut rng = SmallRng::seed_from_u64(master ^ 3);
        pooled.place_uniform(&mut rng);
        let mut rng = SmallRng::seed_from_u64(master ^ 3);
        spawned.place_uniform(&mut rng);
        for _ in 0..rounds {
            pooled.step_round_parallel();
            spawned.step_round_parallel_spawn();
        }
        for a in 0..agents {
            prop_assert_eq!(pooled.position(a), spawned.position(a));
        }
    }

    #[test]
    fn monomorphized_kernels_reproduce_legacy_dyn_draw_order(
        agents in 1usize..300,
        rounds in 1u64..6,
        seed in any::<u64>(),
        variant in 0u8..5,
        interaction in 0u8..4,
    ) {
        let (avoidance, flee) = match interaction {
            0 => (None, false),
            1 => (Some(0.5), false),
            2 => (Some(0.25), true),
            _ => (None, true),
        };
        #[allow(clippy::too_many_arguments)]
        fn check<T: Topology + Clone>(
            topo: T,
            uniform_resample: bool,
            agents: usize,
            rounds: u64,
            seed: u64,
            variant: u8,
            avoidance: Option<f64>,
            flee: bool,
        ) {
            let movement = mixed_movement(&topo, agents, variant);
            let mut engine = Engine::new(topo.clone(), agents);
            engine.set_avoidance(avoidance);
            engine.set_flee(flee);
            for (a, m) in movement.iter().enumerate() {
                engine.set_movement(a, m.clone());
            }
            let mut engine_rng = SmallRng::seed_from_u64(seed);
            engine.place_uniform(&mut engine_rng);
            let mut legacy_pos: Vec<NodeId> =
                (0..agents).map(|a| engine.position(a)).collect();
            let mut legacy_rng = SmallRng::seed_from_u64(seed);
            // replay placement draws so both RNGs are in the same state
            for _ in 0..agents {
                let _: NodeId = legacy_rng.gen_range(0..topo.num_nodes());
            }
            for r in 0..rounds {
                engine.step_round(&mut engine_rng);
                legacy_step_round(
                    &topo,
                    uniform_resample,
                    &mut legacy_pos,
                    &movement,
                    avoidance,
                    flee,
                    &mut legacy_rng,
                );
                for (a, legacy) in legacy_pos.iter().enumerate() {
                    assert_eq!(engine.position(a), *legacy, "round {r} agent {a}");
                }
            }
            // the two RNGs consumed identical streams
            assert_eq!(engine_rng.next_u64(), legacy_rng.next_u64());
        }
        check(Torus2d::new(16), false, agents, rounds, seed, variant, avoidance, flee);
        check(Ring::new(99), false, agents, rounds, seed, variant, avoidance, flee);
        check(Hypercube::new(7), false, agents, rounds, seed, variant, avoidance, flee);
        check(CompleteGraph::new(123), true, agents, rounds, seed, variant, avoidance, flee);
    }
}
