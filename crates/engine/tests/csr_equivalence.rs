//! The CSR-backend equivalence contract.
//!
//! A [`CsrGraph`] rebuild of a structured topology preserves every
//! node's move list in order and with multiplicity, so a walk on the
//! rebuild consumes the **identical RNG stream** as on the native
//! implementation — positions match bit for bit, for every stepping
//! path (sequential, batched pure-walk kernel, deterministic parallel,
//! interaction variants). On top of the bitwise contract, distributional
//! tests check the *semantic* one: with unrelated seeds, CSR and native
//! walks visit nodes with the same stationary statistics.

use antdensity_engine::{Engine, EngineConfig, MovementModel, WorkerPool, STREAM_BLOCK};
use antdensity_graphs::{CsrGraph, Hypercube, NodeId, Ring, Topology, Torus2d, TorusKd};
use antdensity_stats::rng::SeedSequence;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Runs `rounds` sequential rounds on `topo` from a fresh engine and
/// returns the positions.
fn run_sequential<T: Topology>(
    topo: T,
    agents: usize,
    rounds: u64,
    seed: u64,
    movement: &MovementModel,
    avoidance: Option<f64>,
    flee: bool,
) -> Vec<NodeId> {
    let mut engine = Engine::new(topo, agents);
    engine.set_movement_all(movement);
    engine.set_avoidance(avoidance);
    engine.set_flee(flee);
    let mut rng = SmallRng::seed_from_u64(seed);
    engine.place_uniform(&mut rng);
    for _ in 0..rounds {
        engine.step_round(&mut rng);
    }
    (0..agents).map(|a| engine.position(a)).collect()
}

/// Runs `rounds` deterministic-parallel rounds and returns positions.
fn run_parallel<T: Topology + Sync>(
    topo: T,
    agents: usize,
    rounds: u64,
    seed: u64,
    workers: usize,
) -> Vec<NodeId> {
    let mut engine = Engine::new(topo, agents)
        .with_seed_sequence(SeedSequence::new(seed))
        .with_threads(workers)
        .with_worker_pool(Arc::new(WorkerPool::new(workers)))
        .with_config(EngineConfig {
            schedule_chunk: STREAM_BLOCK,
            min_chunks_per_worker: 1,
            inline_step_threshold: 0,
            blocked_round_threshold: usize::MAX,
        });
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37);
    engine.place_uniform(&mut rng);
    engine.run_parallel(rounds);
    (0..agents).map(|a| engine.position(a)).collect()
}

/// Every structured topology the paper uses, paired with its CSR
/// rebuild, across movement/interaction variants: positions must be
/// bit-identical (the rebuild preserves move order, the CSR draw
/// consumes `gen_range`'s exact bits).
#[test]
fn csr_rebuild_is_bit_identical_sequential() {
    let variants: [(MovementModel, Option<f64>, bool); 4] = [
        (MovementModel::Pure, None, false),
        (MovementModel::Pure, Some(0.5), false),
        (MovementModel::Pure, Some(0.25), true),
        (MovementModel::lazy(0.3), None, false),
    ];
    for (movement, avoidance, flee) in &variants {
        for seed in 0..5u64 {
            macro_rules! check {
                ($topo:expr, $agents:expr, $label:expr) => {{
                    let native = $topo;
                    let csr = CsrGraph::from_topology(&native);
                    let a = run_sequential(native, $agents, 12, seed, movement, *avoidance, *flee);
                    let b = run_sequential(csr, $agents, 12, seed, movement, *avoidance, *flee);
                    assert_eq!(
                        a, b,
                        "{} diverged ({movement}, {avoidance:?}, {flee})",
                        $label
                    );
                }};
            }
            check!(Torus2d::new(8), 40, "torus2d");
            check!(Ring::new(64), 30, "ring");
            check!(Hypercube::new(6), 25, "hypercube");
            check!(TorusKd::new(3, 4), 20, "toruskd");
        }
    }
}

/// The deterministic parallel path (which routes pure walks through the
/// batched kernel and [`Topology::apply_moves`]) agrees too — CSR's
/// gather-based `apply_moves` against the native branchless kernels,
/// across worker counts.
#[test]
fn csr_rebuild_is_bit_identical_parallel() {
    for workers in [1usize, 4] {
        for seed in 0..3u64 {
            let native = run_parallel(Torus2d::new(16), 700, 8, seed, workers);
            let csr = run_parallel(
                CsrGraph::from_topology(&Torus2d::new(16)),
                700,
                8,
                seed,
                workers,
            );
            assert_eq!(native, csr, "torus2d parallel workers={workers}");

            let native = run_parallel(Hypercube::new(7), 600, 8, seed, workers);
            let csr = run_parallel(
                CsrGraph::from_topology(&Hypercube::new(7)),
                600,
                8,
                seed,
                workers,
            );
            assert_eq!(native, csr, "hypercube parallel workers={workers}");
        }
    }
}

/// Time-averaged visit distribution over *unrelated* seeds: the CSR
/// rebuild and the native implementation define the same Markov chain,
/// so long-run occupancy statistics agree even when the bit streams
/// don't. (The bitwise tests above are stronger but would also pass for
/// two engines sharing one wrong chain; this one pins the chain itself
/// against an independently-seeded reference.)
#[test]
fn csr_rebuild_matches_native_stationary_occupancy() {
    fn visit_distribution<T: Topology>(topo: T, seed: u64) -> Vec<f64> {
        let nodes = topo.num_nodes();
        let agents = 64usize;
        let rounds = 1500u64;
        let mut engine = Engine::new(topo, agents);
        let mut rng = SmallRng::seed_from_u64(seed);
        engine.place_uniform(&mut rng);
        let mut visits = vec![0u64; nodes as usize];
        for _ in 0..rounds {
            engine.step_round(&mut rng);
            for (_, p) in engine.agent_positions() {
                visits[p as usize] += 1;
            }
        }
        let total = (agents as u64 * rounds) as f64;
        visits.iter().map(|&v| v as f64 / total).collect()
    }

    // Ring: stationary is uniform; compare native (seed 1) vs CSR
    // (seed 2) distributions in L1. (A small ring keeps the n²-ish
    // mixing time well inside the averaging window.)
    let native = visit_distribution(Ring::new(16), 1);
    let csr = visit_distribution(CsrGraph::from_topology(&Ring::new(16)), 2);
    let l1: f64 = native.iter().zip(&csr).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 0.10, "ring visit distributions differ: L1 = {l1}");
    // and both are near uniform
    let uniform = 1.0 / 16.0;
    for (v, dist) in [("native", &native), ("csr", &csr)] {
        let worst = dist
            .iter()
            .map(|p| (p - uniform).abs() / uniform)
            .fold(0.0f64, f64::max);
        assert!(worst < 0.25, "{v} ring occupancy far from uniform: {worst}");
    }

    let native = visit_distribution(Torus2d::new(6), 3);
    let csr = visit_distribution(CsrGraph::from_topology(&Torus2d::new(6)), 4);
    let l1: f64 = native.iter().zip(&csr).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 0.10, "torus visit distributions differ: L1 = {l1}");
}

/// Residual RNG state matches after stepping — the CSR draw consumes
/// exactly as many generator words as the native one, so downstream
/// consumers (noise, placement of later streams) stay aligned.
#[test]
fn csr_rebuild_leaves_identical_rng_state() {
    use rand::RngCore;
    for seed in 0..8u64 {
        let mut a_rng = SmallRng::seed_from_u64(seed);
        let mut b_rng = SmallRng::seed_from_u64(seed);
        let native = Hypercube::new(5); // degree 5: the rejection-loop path
        let csr = CsrGraph::from_topology(&native);
        let mut ea = Engine::new(native, 33);
        let mut eb = Engine::new(csr, 33);
        ea.place_uniform(&mut a_rng);
        eb.place_uniform(&mut b_rng);
        for _ in 0..9 {
            ea.step_round(&mut a_rng);
            eb.step_round(&mut b_rng);
        }
        assert_eq!(a_rng.next_u64(), b_rng.next_u64(), "seed {seed}");
    }
}
