//! Golden vectors pinning `Scenario::run`'s exact outcomes across the
//! observer-pipeline refactor.
//!
//! The committed file `tests/golden/scenario_outcomes.txt` was generated
//! from the pre-observer (legacy match-arm) implementation of
//! `Scenario::run`, with every float serialized as its IEEE-754 bit
//! pattern. The streaming observer pipeline must reproduce each outcome
//! **bit for bit** — any drift in RNG stream layout, noise draw order,
//! estimator math, or snapshot bookkeeping fails here first.
//!
//! Regenerate (only when the determinism contract is *deliberately*
//! changed) with:
//!
//! ```text
//! cargo test -p antdensity-engine --test observer_golden -- --ignored regenerate
//! ```

use antdensity_engine::{EstimatorSpec, NoiseSpec, Scenario, ScenarioOutcome, TopologySpec};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/scenario_outcomes.txt"
);

const MAGIC: &str = "antdensity-observer-golden v1";

/// The pinned grid: every topology family the paper analyses × every
/// estimator × perfect and noisy sensing × two seeds. Algorithm 4 cases
/// off the 2-d torus are skipped (its Theorem 32 precondition), and its
/// torus runs use `rounds < side`.
fn cases() -> Vec<(String, Scenario, u64)> {
    let topologies = [
        TopologySpec::Torus2d { side: 8 },
        TopologySpec::Ring { nodes: 64 },
        TopologySpec::Hypercube { dims: 6 },
        TopologySpec::Complete { nodes: 64 },
    ];
    let estimators = [
        EstimatorSpec::Algorithm1,
        EstimatorSpec::Algorithm4,
        EstimatorSpec::Quorum { threshold: 0.1 },
        EstimatorSpec::RelativeFrequency { property_agents: 4 },
    ];
    let noises = [None, Some(NoiseSpec::new(0.8, 0.1))];
    let mut out = Vec::new();
    for topology in topologies {
        for estimator in &estimators {
            if matches!(estimator, EstimatorSpec::Algorithm4)
                && !matches!(topology, TopologySpec::Torus2d { .. })
            {
                continue;
            }
            let rounds = if matches!(estimator, EstimatorSpec::Algorithm4) {
                6 // < side = 8
            } else {
                16
            };
            for noise in noises {
                for seed in [1u64, 2] {
                    let mut scenario =
                        Scenario::new(topology, 12, rounds).with_estimator(estimator.clone());
                    if let Some(n) = noise {
                        scenario = scenario.with_noise(n);
                    }
                    let label = format!(
                        "{topology} agents 12 rounds {rounds} {estimator} noise {} seed {seed}",
                        noise.map_or("none".to_string(), |n| n.to_string()),
                    );
                    out.push((label, scenario, seed));
                }
            }
        }
    }
    out
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn hex_list(vs: &[f64]) -> String {
    vs.iter().map(|&v| hex(v)).collect::<Vec<_>>().join(" ")
}

fn bit_list(vs: &[bool]) -> String {
    vs.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Serializes one outcome exactly (floats as bit patterns) so golden
/// comparison is a string equality with readable diffs.
fn render(label: &str, outcome: &ScenarioOutcome) -> String {
    let mut s = format!("case {label}\n");
    s.push_str(&format!("rounds {}\n", outcome.rounds));
    s.push_str(&format!("true_density {}\n", hex(outcome.true_density)));
    s.push_str(&format!("estimates {}\n", hex_list(&outcome.estimates)));
    s.push_str(&format!(
        "counts {}\n",
        outcome
            .collision_counts
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    ));
    s.push_str(&format!(
        "property {}\n",
        outcome
            .property_estimates
            .as_deref()
            .map_or("-".to_string(), hex_list)
    ));
    s.push_str(&format!(
        "decisions {}\n",
        outcome
            .quorum_decisions
            .as_deref()
            .map_or("-".to_string(), bit_list)
    ));
    s.push_str(&format!(
        "walking {}\n",
        outcome.walking.as_deref().map_or("-".to_string(), bit_list)
    ));
    s.push_str("end\n");
    s
}

fn render_all() -> String {
    let mut text = format!("{MAGIC}\n");
    for (label, scenario, seed) in cases() {
        text.push_str(&render(&label, &scenario.run(seed)));
    }
    text
}

#[test]
fn scenario_outcomes_match_committed_golden_vectors() {
    // Run the whole grid with telemetry AND trace capture fully on:
    // the golden match below proves instrumentation observes without
    // influencing a single bit (the determinism guarantee of
    // `antdensity-telemetry`).
    antdensity_telemetry::set_enabled(true);
    antdensity_telemetry::set_tracing(true);
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run the ignored `regenerate` test and commit the output");
    let current = render_all();
    antdensity_telemetry::set_tracing(false);
    antdensity_telemetry::set_enabled(false);
    assert!(
        antdensity_telemetry::snapshot().counter("engine.rounds") > 0,
        "telemetry was live during the golden run"
    );
    assert!(
        !antdensity_telemetry::take_trace().is_empty(),
        "trace capture was live during the golden run"
    );
    // Compare case by case for a readable failure.
    let split = |t: &str| -> Vec<String> {
        t.split("case ")
            .skip(1)
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
    };
    let golden_cases = split(&golden);
    let current_cases = split(&current);
    assert_eq!(
        golden_cases.len(),
        current_cases.len(),
        "case grid changed — regenerate the golden file deliberately"
    );
    for (g, c) in golden_cases.iter().zip(&current_cases) {
        assert_eq!(
            g,
            c,
            "outcome drifted from the pre-refactor golden vector for `case {}`",
            g.lines().next().unwrap_or("?")
        );
    }
    assert_eq!(golden, current);
}

/// Regenerates the golden file from the current implementation. Kept
/// `#[ignore]`d: running it is a *deliberate* decision to re-pin the
/// determinism contract.
#[test]
#[ignore = "rewrites the golden vectors; run only to deliberately re-pin"]
fn regenerate() {
    let path = std::path::Path::new(GOLDEN_PATH);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, render_all()).unwrap();
}
