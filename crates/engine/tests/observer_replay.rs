//! Observer-equivalence property suite: every observer, replayed over a
//! **recorded** event stream, reproduces the legacy `Scenario::run`
//! outcome bit for bit — across all four topology families × every
//! estimator × noisy and perfect sensing.
//!
//! Together with `observer_golden.rs` (which pins `Scenario::run` itself
//! to pre-refactor vectors) this closes the loop: legacy outcome ==
//! streamed outcome == replay-from-recording outcome.

use antdensity_engine::observer::{observer_for, RecordingObserver};
use antdensity_engine::{EstimatorSpec, NoiseSpec, ObserverTap, Scenario, TopologySpec};

fn topologies() -> [TopologySpec; 4] {
    [
        TopologySpec::Torus2d { side: 8 },
        TopologySpec::Ring { nodes: 64 },
        TopologySpec::Hypercube { dims: 6 },
        TopologySpec::Complete { nodes: 64 },
    ]
}

fn estimators() -> [EstimatorSpec; 4] {
    [
        EstimatorSpec::Algorithm1,
        EstimatorSpec::Algorithm4,
        EstimatorSpec::Quorum { threshold: 0.1 },
        EstimatorSpec::RelativeFrequency { property_agents: 5 },
    ]
}

#[test]
fn every_observer_replayed_over_recorded_events_matches_legacy_outcome() {
    for topology in topologies() {
        for estimator in estimators() {
            let alg4 = matches!(estimator, EstimatorSpec::Algorithm4);
            if alg4 && !matches!(topology, TopologySpec::Torus2d { .. }) {
                continue; // Theorem 32: Algorithm 4 lives on the 2-d torus
            }
            let rounds = if alg4 { 6 } else { 20 };
            for noise in [None, Some(NoiseSpec::new(0.7, 0.15))] {
                for seed in [1u64, 5, 9] {
                    let mut scenario =
                        Scenario::new(topology, 14, rounds).with_estimator(estimator.clone());
                    if let Some(n) = noise {
                        scenario = scenario.with_noise(n);
                    }
                    // The reference: the (golden-pinned) scenario outcome.
                    let legacy = scenario.run(seed);

                    // Record the event stream once…
                    let tap = ObserverTap::single(estimator.clone(), rounds);
                    let (streamed, recording) =
                        scenario.run_recorded(seed, std::slice::from_ref(&tap));
                    assert_eq!(
                        streamed[0][0], legacy,
                        "streamed outcome drifted: {topology} {estimator} seed {seed}"
                    );
                    assert_eq!(recording.rounds.len() as u64, rounds);

                    // …then replay a *fresh* observer over the recording.
                    let mut observer = observer_for(&estimator, legacy.walking.as_deref());
                    let replayed = recording.replay(observer.as_mut(), legacy.true_density);
                    assert_eq!(
                        replayed, legacy,
                        "replayed outcome drifted: {topology} {estimator} noise {noise:?} \
                         seed {seed}"
                    );
                }
            }
        }
    }
}

#[test]
fn recording_is_noise_faithful() {
    // The recorded stream carries both pre- and post-noise counts; under
    // perfect sensing they are identical, under noise they may differ
    // but cumulative post-noise counts must match the outcome's tallies.
    let scenario = Scenario::new(TopologySpec::Complete { nodes: 64 }, 16, 12)
        .with_noise(NoiseSpec::new(0.5, 0.3));
    let tap = ObserverTap::single(EstimatorSpec::Algorithm1, 12);
    let (outcomes, rec) = scenario.run_recorded(4, std::slice::from_ref(&tap));
    let mut totals = vec![0u64; 16];
    let mut raw_totals = vec![0u64; 16];
    for round in &rec.rounds {
        for (t, &c) in totals.iter_mut().zip(&round.counts) {
            *t += u64::from(c);
        }
        for (t, &c) in raw_totals.iter_mut().zip(&round.raw_counts) {
            *t += u64::from(c);
        }
    }
    assert_eq!(totals, outcomes[0][0].collision_counts);
    assert_ne!(
        totals, raw_totals,
        "a 0.5-detect / 0.3-spurious sensor over 12 rounds × 16 agents should perturb counts"
    );
}

/// A replayed recording of a *fused* multi-estimator pass serves every
/// member estimator — one stream, many consumers.
#[test]
fn one_recording_feeds_every_standard_estimator() {
    let scenario = Scenario::new(TopologySpec::Torus2d { side: 8 }, 14, 20)
        .with_estimator(EstimatorSpec::RelativeFrequency { property_agents: 5 });
    let taps = [
        ObserverTap::single(EstimatorSpec::RelativeFrequency { property_agents: 5 }, 20),
        ObserverTap::single(EstimatorSpec::Algorithm1, 20),
        ObserverTap::single(EstimatorSpec::Quorum { threshold: 0.2 }, 20),
    ];
    let (_, recording) = scenario.run_recorded(7, &taps);
    let mut _rec = RecordingObserver::default();
    for estimator in [
        EstimatorSpec::Algorithm1,
        EstimatorSpec::Quorum { threshold: 0.2 },
        EstimatorSpec::RelativeFrequency { property_agents: 5 },
    ] {
        let dedicated = Scenario::new(TopologySpec::Torus2d { side: 8 }, 14, 20)
            .with_estimator(estimator.clone())
            .run(7);
        let mut observer = observer_for(&estimator, None);
        let replayed = recording.replay(observer.as_mut(), dedicated.true_density);
        assert_eq!(replayed, dedicated, "{estimator}");
    }
}
