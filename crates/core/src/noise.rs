//! Noisy collision detection (Section 6.1's robustness extension).
//!
//! The paper proposes modelling "noisy collision detection, in which each
//! collision is only detected with some probability, or in which spurious
//! collisions may occasionally be detected". [`CollisionNoise`] implements
//! both: a per-collision detection probability `p` and a per-round Poisson
//! rate `s` of spurious detections. Since the observed count has
//! expectation `p·E[count] + s`, the unbiasing correction
//! `d̃ = (d̃_obs − s)/p` recovers the true density in expectation.

use rand::Rng;
use rand::RngCore;

/// A noisy collision sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionNoise {
    detect_prob: f64,
    spurious_rate: f64,
}

impl CollisionNoise {
    /// Creates a sensor that detects each true collision independently
    /// with probability `detect_prob` and additionally reports
    /// `Poisson(spurious_rate)` phantom collisions per round.
    ///
    /// # Panics
    ///
    /// Panics if `detect_prob ∉ (0, 1]` or `spurious_rate < 0` (or is not
    /// finite).
    pub fn new(detect_prob: f64, spurious_rate: f64) -> Self {
        assert!(
            detect_prob > 0.0 && detect_prob <= 1.0,
            "detection probability must lie in (0,1]"
        );
        assert!(
            spurious_rate >= 0.0 && spurious_rate.is_finite(),
            "spurious rate must be finite and non-negative"
        );
        Self {
            detect_prob,
            spurious_rate,
        }
    }

    /// A perfect sensor (identity observation).
    pub fn perfect() -> Self {
        Self {
            detect_prob: 1.0,
            spurious_rate: 0.0,
        }
    }

    /// Detection probability `p`.
    pub fn detect_prob(&self) -> f64 {
        self.detect_prob
    }

    /// Spurious-detection rate `s` per round.
    pub fn spurious_rate(&self) -> f64 {
        self.spurious_rate
    }

    /// Passes a true per-round collision count through the sensor.
    pub fn observe(&self, true_count: u32, rng: &mut dyn RngCore) -> u32 {
        let mut seen = if self.detect_prob >= 1.0 {
            true_count
        } else {
            sample_binomial(true_count, self.detect_prob, rng)
        };
        if self.spurious_rate > 0.0 {
            seen += sample_poisson(self.spurious_rate, rng);
        }
        seen
    }

    /// Unbiases a density estimate produced under this noise model:
    /// `(d̃_obs − s)/p`, clamped at 0.
    pub fn correct(&self, observed_estimate: f64) -> f64 {
        ((observed_estimate - self.spurious_rate) / self.detect_prob).max(0.0)
    }
}

impl Default for CollisionNoise {
    fn default() -> Self {
        Self::perfect()
    }
}

/// Exact Binomial(n, p) sample by summing Bernoulli draws — per-round
/// collision counts are tiny (`E = d ≤ 1`), so this is both exact and
/// fast.
pub fn sample_binomial(n: u32, p: f64, rng: &mut dyn RngCore) -> u32 {
    assert!((0.0..=1.0).contains(&p), "probability must lie in [0,1]");
    if p == 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mut k = 0;
    for _ in 0..n {
        if rng.gen_bool(p) {
            k += 1;
        }
    }
    k
}

/// Exact Poisson(λ) sample via Knuth's product method (λ is small here;
/// the loop runs `O(λ)` iterations in expectation).
///
/// # Panics
///
/// Panics if `lambda` is negative, not finite, or large enough (> 30)
/// that the product method would underflow.
pub fn sample_poisson(lambda: f64, rng: &mut dyn RngCore) -> u32 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "rate must be finite and non-negative"
    );
    assert!(lambda <= 30.0, "Knuth sampler only supports small rates");
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_sensor_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = CollisionNoise::perfect();
        for c in [0u32, 1, 5, 100] {
            assert_eq!(s.observe(c, &mut rng), c);
        }
        assert_eq!(s.correct(0.42), 0.42);
    }

    #[test]
    fn binomial_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 50_000;
        let total: u64 = (0..trials)
            .map(|_| sample_binomial(10, 0.3, &mut rng) as u64)
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn binomial_edge_probabilities() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(sample_binomial(7, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(7, 1.0, &mut rng), 7);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = SmallRng::seed_from_u64(4);
        let lambda = 2.5;
        let trials = 50_000;
        let samples: Vec<f64> = (0..trials)
            .map(|_| sample_poisson(lambda, &mut rng) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / trials as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert!((var - lambda).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn observe_mean_is_p_c_plus_s() {
        let mut rng = SmallRng::seed_from_u64(6);
        let noise = CollisionNoise::new(0.6, 0.4);
        let trials = 50_000;
        let true_count = 5u32;
        let total: u64 = (0..trials)
            .map(|_| noise.observe(true_count, &mut rng) as u64)
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = 0.6 * 5.0 + 0.4;
        assert!((mean - expected).abs() < 0.05, "mean {mean} vs {expected}");
    }

    #[test]
    fn correct_inverts_expectation() {
        let noise = CollisionNoise::new(0.5, 0.2);
        // observed expectation for true estimate 0.8: 0.5*0.8 + 0.2 = 0.6
        assert!((noise.correct(0.6) - 0.8).abs() < 1e-12);
        // clamped at zero
        assert_eq!(noise.correct(0.1), 0.0);
    }

    #[test]
    fn default_is_perfect() {
        assert_eq!(CollisionNoise::default(), CollisionNoise::perfect());
    }

    #[test]
    #[should_panic(expected = "(0,1]")]
    fn zero_detection_rejected() {
        let _ = CollisionNoise::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "small rates")]
    fn huge_poisson_rate_rejected() {
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = sample_poisson(100.0, &mut rng);
    }
}
