//! Noisy collision detection (Section 6.1's robustness extension).
//!
//! The paper proposes modelling "noisy collision detection, in which each
//! collision is only detected with some probability, or in which spurious
//! collisions may occasionally be detected". [`CollisionNoise`] implements
//! both: a per-collision detection probability `p` and a per-round Poisson
//! rate `s` of spurious detections. Since the observed count has
//! expectation `p·E[count] + s`, the unbiasing correction
//! `d̃ = (d̃_obs − s)/p` recovers the true density in expectation.

// The sensor and its numerical samplers live in the engine crate (one
// canonical implementation for the whole workspace); re-exported here
// under their historical paths.
pub use antdensity_engine::sampling::{sample_binomial, sample_poisson, CollisionNoise};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_sensor_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = CollisionNoise::perfect();
        for c in [0u32, 1, 5, 100] {
            assert_eq!(s.observe(c, &mut rng), c);
        }
        assert_eq!(s.correct(0.42), 0.42);
    }

    #[test]
    fn binomial_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 50_000;
        let total: u64 = (0..trials)
            .map(|_| sample_binomial(10, 0.3, &mut rng) as u64)
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn binomial_edge_probabilities() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(sample_binomial(7, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(7, 1.0, &mut rng), 7);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = SmallRng::seed_from_u64(4);
        let lambda = 2.5;
        let trials = 50_000;
        let samples: Vec<f64> = (0..trials)
            .map(|_| sample_poisson(lambda, &mut rng) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / trials as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert!((var - lambda).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn observe_mean_is_p_c_plus_s() {
        let mut rng = SmallRng::seed_from_u64(6);
        let noise = CollisionNoise::new(0.6, 0.4);
        let trials = 50_000;
        let true_count = 5u32;
        let total: u64 = (0..trials)
            .map(|_| noise.observe(true_count, &mut rng) as u64)
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = 0.6 * 5.0 + 0.4;
        assert!((mean - expected).abs() < 0.05, "mean {mean} vs {expected}");
    }

    #[test]
    fn correct_inverts_expectation() {
        let noise = CollisionNoise::new(0.5, 0.2);
        // observed expectation for true estimate 0.8: 0.5*0.8 + 0.2 = 0.6
        assert!((noise.correct(0.6) - 0.8).abs() < 1e-12);
        // clamped at zero
        assert_eq!(noise.correct(0.1), 0.0);
    }

    #[test]
    fn default_is_perfect() {
        assert_eq!(CollisionNoise::default(), CollisionNoise::perfect());
    }

    #[test]
    #[should_panic(expected = "(0,1]")]
    fn zero_detection_rejected() {
        let _ = CollisionNoise::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "small rates")]
    fn huge_poisson_rate_rejected() {
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = sample_poisson(100.0, &mut rng);
    }
}
