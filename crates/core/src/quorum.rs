//! Quorum sensing: density-threshold detection.
//!
//! Section 6.2 of the paper: "in many of the above biological
//! applications, such as in quorum sensing for decision making in ant
//! colonies, agents only need to detect when d is above some fixed
//! threshold." *Temnothorax* scouts commit to a nest site when the scout
//! density there crosses a quorum (Pratt 2005, the paper's \[Pra05\]).
//!
//! [`QuorumSensor`] implements an adaptive sequential test on top of
//! Algorithm 1: each agent keeps walking and accumulating collisions; at
//! geometrically spaced checkpoints `t = 2^k` it compares its running
//! estimate `d̃ = c/t` against the threshold with a Theorem-1-shaped
//! margin (with a union bound over checkpoints), and decides as soon as
//! the margin separates them. Agents near the threshold need more rounds;
//! agents far from it decide quickly — the behaviour the paper's future
//! work section anticipates.

use antdensity_engine::observer::{EncounterTallies, Observer, RoundEvents};
use antdensity_engine::ScenarioOutcome;
use antdensity_graphs::Topology;
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::arena::SyncArena;

/// An agent's quorum decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumDecision {
    /// Confident the density is above the threshold.
    Above,
    /// Confident the density is below the threshold.
    Below,
    /// Could not separate density from threshold within the round budget.
    Undecided,
}

/// One agent's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuorumOutcome {
    /// The decision reached.
    pub decision: QuorumDecision,
    /// Rounds consumed before deciding (the full budget if undecided).
    pub rounds_used: u64,
    /// The agent's final density estimate.
    pub estimate: f64,
}

/// Sequential threshold detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuorumSensor {
    threshold: f64,
    delta: f64,
    max_rounds: u64,
    margin_constant: f64,
}

impl QuorumSensor {
    /// Detects whether the density is above or below `threshold` with
    /// failure probability target `delta`, giving up after `max_rounds`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold <= 0`, `delta ∉ (0,1)`, or `max_rounds < 2`.
    pub fn new(threshold: f64, delta: f64, max_rounds: u64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
        assert!(max_rounds >= 2, "need at least two rounds");
        Self {
            threshold,
            delta,
            max_rounds,
            margin_constant: 1.0,
        }
    }

    /// Adjusts the margin constant (the Theorem 1 `c₁`; default 1.0 —
    /// empirically calibrated constants are fitted by experiment E1).
    pub fn with_margin_constant(mut self, c: f64) -> Self {
        assert!(c > 0.0, "margin constant must be positive");
        self.margin_constant = c;
        self
    }

    /// The decision margin at checkpoint `t`: an absolute band around the
    /// threshold of width `c₁·√(ln(K/δ)·θ/t)·ln(2t)` where `K` is the
    /// number of checkpoints (union bound) and `θ` the threshold scale.
    fn margin(&self, t: u64) -> f64 {
        let checkpoints = (self.max_rounds as f64).log2().ceil().max(1.0);
        let log_term = (checkpoints / self.delta).ln().max(1.0);
        self.margin_constant * (log_term * self.threshold / t as f64).sqrt() * (2.0 * t as f64).ln()
    }

    /// Runs the sensor for a whole population: `num_agents` agents walk on
    /// `topo`; each decides independently at the first checkpoint where
    /// its running estimate clears the margin. The round loop only
    /// emits encounter events — the stopping rule itself is the
    /// incremental [`SequentialQuorum`] observer.
    ///
    /// # Panics
    ///
    /// Panics if `num_agents == 0`.
    pub fn run<T: Topology>(&self, topo: &T, num_agents: usize, seed: u64) -> Vec<QuorumOutcome> {
        assert!(num_agents > 0, "need at least one agent");
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut arena = SyncArena::new(topo, num_agents);
        arena.place_uniform(&mut rng);
        let mut observer = SequentialQuorum::new(*self, num_agents);
        let mut counts = vec![0u32; num_agents];
        for round in 1..=self.max_rounds {
            arena.step_round(&mut rng);
            for (a, slot) in counts.iter_mut().enumerate() {
                *slot = arena.count(a);
            }
            observer.on_round(&RoundEvents {
                round,
                counts: &counts,
                raw_counts: &counts,
                group_counts: None,
            });
            if observer.all_decided() {
                break;
            }
        }
        observer.outcomes()
    }

    /// The threshold being tested.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The failure-probability target.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

/// The quorum stopping rule as an incremental observer: per-agent
/// sequential-test state updated from each round's encounter events.
///
/// Counts accumulate only while an agent is undecided; at geometric
/// checkpoints (`t = 2^k`, plus the budget boundary) every undecided
/// agent compares its running estimate against the threshold with the
/// sensor's margin and freezes its outcome as soon as the margin
/// separates them. Feeding the same event stream always produces the
/// same outcomes — the observer is a pure fold.
///
/// Implements [`Observer`], so it can tap a fused
/// [`Scenario::run_streamed`](antdensity_engine::Scenario::run_streamed)
/// pass alongside the batch estimators.
#[derive(Debug, Clone)]
pub struct SequentialQuorum {
    sensor: QuorumSensor,
    counts: Vec<u64>,
    decided: Vec<Option<QuorumOutcome>>,
    undecided: usize,
    next_checkpoint: u64,
    rounds_seen: u64,
}

impl SequentialQuorum {
    /// Fresh per-agent state for `num_agents` agents under `sensor`'s
    /// threshold, margin, and round budget.
    ///
    /// # Panics
    ///
    /// Panics if `num_agents == 0`.
    pub fn new(sensor: QuorumSensor, num_agents: usize) -> Self {
        assert!(num_agents > 0, "need at least one agent");
        Self {
            sensor,
            counts: vec![0; num_agents],
            decided: vec![None; num_agents],
            undecided: num_agents,
            next_checkpoint: 2,
            rounds_seen: 0,
        }
    }

    /// Whether every agent has frozen a decision (the driver may stop
    /// stepping).
    pub fn all_decided(&self) -> bool {
        self.undecided == 0
    }

    /// Rounds consumed so far.
    pub fn rounds_seen(&self) -> u64 {
        self.rounds_seen
    }

    /// Final per-agent outcomes: frozen decisions as recorded, agents
    /// still undecided report `Undecided` with their running estimate
    /// over the rounds actually observed (the full budget when the
    /// driver ran it out; fewer when a shorter fused pass fed the
    /// observer).
    pub fn outcomes(&self) -> Vec<QuorumOutcome> {
        let t_final = self.rounds_seen.max(1);
        self.decided
            .iter()
            .enumerate()
            .map(|(a, o)| {
                o.unwrap_or(QuorumOutcome {
                    decision: QuorumDecision::Undecided,
                    rounds_used: t_final,
                    estimate: self.counts[a] as f64 / t_final as f64,
                })
            })
            .collect()
    }
}

impl Observer for SequentialQuorum {
    fn on_round(&mut self, ev: &RoundEvents<'_>) {
        assert_eq!(ev.counts.len(), self.counts.len(), "agent count mismatch");
        if self.rounds_seen >= self.sensor.max_rounds {
            return; // budget exhausted: later events are not observed
        }
        assert_eq!(
            ev.round,
            self.rounds_seen + 1,
            "rounds must arrive in order"
        );
        self.rounds_seen = ev.round;
        let t = self.rounds_seen;
        for (a, c) in self.counts.iter_mut().enumerate() {
            if self.decided[a].is_none() {
                *c += u64::from(ev.counts[a]);
            }
        }
        if t == self.next_checkpoint || t == self.sensor.max_rounds {
            let margin = self.sensor.margin(t);
            for a in 0..self.counts.len() {
                if self.decided[a].is_some() {
                    continue;
                }
                let est = self.counts[a] as f64 / t as f64;
                let decision = if est > self.sensor.threshold + margin {
                    Some(QuorumDecision::Above)
                } else if est < self.sensor.threshold - margin {
                    Some(QuorumDecision::Below)
                } else {
                    None
                };
                if let Some(d) = decision {
                    self.decided[a] = Some(QuorumOutcome {
                        decision: d,
                        rounds_used: t,
                        estimate: est,
                    });
                    self.undecided -= 1;
                }
            }
            if self.undecided > 0 {
                self.next_checkpoint = self.next_checkpoint.saturating_mul(2);
            }
        }
    }

    /// Snapshot as a [`ScenarioOutcome`]: frozen agents report their
    /// decision-time estimate and `decision == Above` as the verdict;
    /// undecided agents report their running estimate and the verdict of
    /// a plain threshold read-out.
    fn snapshot(&self, _tallies: &EncounterTallies, true_density: f64) -> ScenarioOutcome {
        let t = self.rounds_seen.max(1) as f64;
        let estimates: Vec<f64> = self
            .decided
            .iter()
            .enumerate()
            .map(|(a, o)| o.map_or(self.counts[a] as f64 / t, |o| o.estimate))
            .collect();
        let decisions = self
            .decided
            .iter()
            .zip(&estimates)
            .map(|(o, &est)| match o {
                Some(o) => o.decision == QuorumDecision::Above,
                None => est >= self.sensor.threshold,
            })
            .collect();
        ScenarioOutcome {
            estimates,
            collision_counts: self.counts.clone(),
            property_estimates: None,
            quorum_decisions: Some(decisions),
            walking: None,
            rounds: self.rounds_seen,
            true_density,
        }
    }
}

/// The colony-level outcome of a cooperative quorum vote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CooperativeOutcome {
    /// The majority decision among agents that decided.
    pub decision: QuorumDecision,
    /// Votes for Above.
    pub above: usize,
    /// Votes for Below.
    pub below: usize,
    /// Agents that stayed undecided.
    pub undecided: usize,
}

/// Cooperative threshold detection — the paper's Section 6.2 question:
/// "how multiple agents with different density estimates can cooperate to
/// learn if a density threshold has been reached, with more accuracy than
/// if just a single agent were attempting to detect such a threshold."
///
/// The simplest cooperation is a majority vote over the per-agent
/// decisions of a [`QuorumSensor`]. Each agent errs independently-ish
/// with probability ≤ δ_agent, so the majority over `k` agents errs with
/// probability `exp(−Θ(k))` — a colony can use a *much looser* (cheaper,
/// faster) per-agent sensor and still decide reliably. The E-suite's
/// integration tests quantify the boost.
///
/// Returns the majority decision among decided agents (`Undecided` only
/// when nobody decided or the vote ties).
pub fn cooperative_vote(outcomes: &[QuorumOutcome]) -> CooperativeOutcome {
    let above = outcomes
        .iter()
        .filter(|o| o.decision == QuorumDecision::Above)
        .count();
    let below = outcomes
        .iter()
        .filter(|o| o.decision == QuorumDecision::Below)
        .count();
    let undecided = outcomes.len() - above - below;
    let decision = match above.cmp(&below) {
        std::cmp::Ordering::Greater => QuorumDecision::Above,
        std::cmp::Ordering::Less => QuorumDecision::Below,
        std::cmp::Ordering::Equal => QuorumDecision::Undecided,
    };
    CooperativeOutcome {
        decision,
        above,
        below,
        undecided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CompleteGraph, Torus2d};

    fn decisions(outcomes: &[QuorumOutcome]) -> (usize, usize, usize) {
        let above = outcomes
            .iter()
            .filter(|o| o.decision == QuorumDecision::Above)
            .count();
        let below = outcomes
            .iter()
            .filter(|o| o.decision == QuorumDecision::Below)
            .count();
        let undecided = outcomes.len() - above - below;
        (above, below, undecided)
    }

    #[test]
    fn detects_density_well_above_threshold() {
        // d = 255/512 ~ 0.5 against threshold 0.1: everyone should say
        // Above quickly.
        let topo = CompleteGraph::new(512);
        let sensor = QuorumSensor::new(0.1, 0.05, 1 << 12);
        let outcomes = sensor.run(&topo, 256, 1);
        let (above, below, _) = decisions(&outcomes);
        assert_eq!(below, 0, "no agent may vote Below");
        assert!(above >= 250, "above = {above}/256");
        // fast decisions: well under the budget
        let mean_rounds: f64 = outcomes.iter().map(|o| o.rounds_used as f64).sum::<f64>() / 256.0;
        assert!(mean_rounds < 512.0, "mean rounds {mean_rounds}");
    }

    #[test]
    fn detects_density_well_below_threshold() {
        // d = 15/512 ~ 0.03 against threshold 0.3.
        let topo = CompleteGraph::new(512);
        let sensor = QuorumSensor::new(0.3, 0.05, 1 << 12);
        let outcomes = sensor.run(&topo, 16, 2);
        let (above, below, _) = decisions(&outcomes);
        assert_eq!(above, 0);
        assert!(below >= 15, "below = {below}/16");
    }

    #[test]
    fn works_on_the_torus() {
        // d = 128/1024 = 0.125 against threshold 0.5 (far below).
        let topo = Torus2d::new(32);
        let sensor = QuorumSensor::new(0.5, 0.05, 1 << 13);
        let outcomes = sensor.run(&topo, 129, 3);
        let (above, below, undecided) = decisions(&outcomes);
        assert_eq!(above, 0);
        assert!(below > 120, "below {below}, undecided {undecided}");
    }

    #[test]
    fn near_threshold_density_tends_to_undecided_on_short_budget() {
        // d = 0.25 against threshold 0.25 with a tiny budget: margins
        // cannot separate.
        let topo = CompleteGraph::new(512);
        let sensor = QuorumSensor::new(0.25, 0.05, 64);
        let outcomes = sensor.run(&topo, 129, 4);
        let (_, _, undecided) = decisions(&outcomes);
        assert!(undecided > 64, "undecided = {undecided}/129");
    }

    #[test]
    fn far_threshold_decides_faster_than_near() {
        let topo = CompleteGraph::new(512);
        let budget = 1 << 12;
        let far = QuorumSensor::new(0.02, 0.05, budget).run(&topo, 256, 5);
        let near = QuorumSensor::new(0.35, 0.05, budget).run(&topo, 256, 5);
        let mean = |o: &[QuorumOutcome]| {
            o.iter().map(|x| x.rounds_used as f64).sum::<f64>() / o.len() as f64
        };
        assert!(
            mean(&far) < mean(&near),
            "far {} should beat near {}",
            mean(&far),
            mean(&near)
        );
    }

    #[test]
    fn outcome_estimates_are_reported() {
        let topo = CompleteGraph::new(128);
        let sensor = QuorumSensor::new(0.1, 0.1, 256);
        for o in sensor.run(&topo, 65, 6) {
            assert!(o.estimate >= 0.0);
            assert!(o.rounds_used >= 1 && o.rounds_used <= 256);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Torus2d::new(16);
        let sensor = QuorumSensor::new(0.2, 0.1, 128);
        assert_eq!(sensor.run(&topo, 20, 7), sensor.run(&topo, 20, 7));
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_zero_threshold() {
        let _ = QuorumSensor::new(0.0, 0.1, 100);
    }

    #[test]
    fn sequential_quorum_folds_events_incrementally() {
        use antdensity_engine::observer::EncounterTallies;
        // Agent 0 collides twice every round (estimate 2.0 ≫ 0.5),
        // agent 1 never (0.0 ≪ 0.5): both decide at the first
        // checkpoint; agent 2 hugs the threshold and stays undecided.
        let sensor = QuorumSensor::new(0.5, 0.1, 8).with_margin_constant(0.2);
        let mut sq = SequentialQuorum::new(sensor, 3);
        let mut tallies = EncounterTallies::new(3, false);
        for round in 1..=8u64 {
            let row = [2u32, 0, u32::from(round % 2 == 0)];
            let ev = RoundEvents {
                round,
                counts: &row,
                raw_counts: &row,
                group_counts: None,
            };
            tallies.record(&ev);
            sq.on_round(&ev);
        }
        assert_eq!(sq.rounds_seen(), 8);
        let outcomes = sq.outcomes();
        assert_eq!(outcomes[0].decision, QuorumDecision::Above);
        assert_eq!(outcomes[1].decision, QuorumDecision::Below);
        assert_eq!(
            outcomes[0].rounds_used, 2,
            "decided at the first checkpoint"
        );
        assert_eq!(outcomes[2].decision, QuorumDecision::Undecided);
        // frozen counts: agent 0 stopped accumulating when it decided
        let snap = sq.snapshot(&tallies, 0.5);
        assert_eq!(snap.collision_counts[0], 4);
        assert_eq!(snap.quorum_decisions, Some(vec![true, false, true]));
        assert_eq!(snap.estimates[0], 2.0);
        // events past the budget are ignored, not a panic
        let row = [9u32, 9, 9];
        sq.on_round(&RoundEvents {
            round: 9,
            counts: &row,
            raw_counts: &row,
            group_counts: None,
        });
        assert_eq!(sq.rounds_seen(), 8);
    }

    #[test]
    fn sequential_quorum_outcomes_use_rounds_actually_observed() {
        // A fused pass may stop well short of the sensor's budget; the
        // undecided estimate must divide by the rounds the observer saw,
        // not the unconsumed budget.
        let sensor = QuorumSensor::new(0.5, 0.1, 512);
        let mut sq = SequentialQuorum::new(sensor, 1);
        for round in 1..=4u64 {
            let row = [1u32];
            sq.on_round(&RoundEvents {
                round,
                counts: &row,
                raw_counts: &row,
                group_counts: None,
            });
        }
        let outcomes = sq.outcomes();
        // estimate 1.0 sits inside the early wide margins: undecided
        assert_eq!(outcomes[0].decision, QuorumDecision::Undecided);
        assert_eq!(outcomes[0].rounds_used, 4);
        assert_eq!(outcomes[0].estimate, 1.0, "4 collisions / 4 rounds");
    }

    #[test]
    fn cooperative_vote_majority_rules() {
        let mk = |d: QuorumDecision| QuorumOutcome {
            decision: d,
            rounds_used: 1,
            estimate: 0.0,
        };
        let outcomes = vec![
            mk(QuorumDecision::Above),
            mk(QuorumDecision::Above),
            mk(QuorumDecision::Below),
            mk(QuorumDecision::Undecided),
        ];
        let v = cooperative_vote(&outcomes);
        assert_eq!(v.decision, QuorumDecision::Above);
        assert_eq!((v.above, v.below, v.undecided), (2, 1, 1));
    }

    #[test]
    fn cooperative_vote_tie_is_undecided() {
        let mk = |d: QuorumDecision| QuorumOutcome {
            decision: d,
            rounds_used: 1,
            estimate: 0.0,
        };
        let v = cooperative_vote(&[mk(QuorumDecision::Above), mk(QuorumDecision::Below)]);
        assert_eq!(v.decision, QuorumDecision::Undecided);
        let none = cooperative_vote(&[mk(QuorumDecision::Undecided)]);
        assert_eq!(none.decision, QuorumDecision::Undecided);
    }

    #[test]
    fn colony_vote_beats_loose_individual_sensors() {
        // Section 6.2's cooperation claim, quantified: give every scout a
        // deliberately LOOSE sensor (short budget, wide margin constant)
        // so individuals are unreliable near the threshold; the colony's
        // majority vote is still consistently right.
        let topo = CompleteGraph::new(512);
        // d = 128/512 = 0.25 vs threshold 0.15: above, but not by much
        let sensor = QuorumSensor::new(0.15, 0.3, 128).with_margin_constant(0.6);
        let mut colony_correct = 0;
        let mut individual_correct = 0usize;
        let mut individual_total = 0usize;
        let runs = 10;
        for s in 0..runs {
            let outcomes = sensor.run(&topo, 129, 100 + s);
            let vote = cooperative_vote(&outcomes);
            if vote.decision == QuorumDecision::Above {
                colony_correct += 1;
            }
            individual_correct += outcomes
                .iter()
                .filter(|o| o.decision == QuorumDecision::Above)
                .count();
            individual_total += outcomes.len();
        }
        let individual_rate = individual_correct as f64 / individual_total as f64;
        assert_eq!(
            colony_correct, runs,
            "colony majority must always be right (individual rate {individual_rate})"
        );
        // the boost is real only if individuals were genuinely unreliable
        assert!(
            individual_rate < 0.95,
            "sensor should be loose for this test: rate {individual_rate}"
        );
    }
}
