//! Per-topology theory: re-collision envelopes `β(m)`, their sums `B(t)`,
//! and the accuracy predictions they imply via Lemma 19.
//!
//! | topology | β(m) (paper) | B(t) | accuracy |
//! |---|---|---|---|
//! | 2-d torus | `1/(m+1) + 1/A` (Lemma 4) | `Θ(log 2t)` | Theorem 1 |
//! | ring | `1/√(m+1) + 1/A` (Lemma 20) | `Θ(√t)` | Theorem 21 (Chebyshev) |
//! | k-d torus, k≥3 | `1/(m+1)^{k/2} + 1/A` (Lemma 22) | `O(1)` | matches i.i.d. |
//! | expander | `λ^m + 1/A` (Lemma 23) | `O(1/(1−λ))` | i.i.d. × (1−λ)⁻² |
//! | hypercube | `(9/10)^{m−1} + 1/√A` (Lemma 25) | `O(1)` for t = O(√A) | matches i.i.d. |
//! | complete | `1/A` exactly | `1 + t/A` | Chernoff baseline |

use antdensity_engine::{EstimatorSpec, TopologySpec};
use antdensity_stats::bounds;

/// The topology families the paper analyses, with the parameters entering
/// their bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyClass {
    /// 2-dimensional torus with `A` nodes (Sections 2–3).
    Torus2d {
        /// Number of nodes `A`.
        nodes: u64,
    },
    /// Ring with `A` nodes (Section 4.2).
    Ring {
        /// Number of nodes `A`.
        nodes: u64,
    },
    /// k-dimensional torus, `k ≥ 3` (Section 4.3).
    TorusKd {
        /// Dimension `k ≥ 3`.
        dims: u32,
        /// Number of nodes `A`.
        nodes: u64,
    },
    /// Regular expander with walk-matrix eigenvalue bound `λ < 1`
    /// (Section 4.4).
    Expander {
        /// `λ = max(|λ₂|, |λ_A|)`.
        lambda: f64,
        /// Number of nodes `A`.
        nodes: u64,
    },
    /// Hypercube on `2^dims` nodes (Section 4.5).
    Hypercube {
        /// Dimension `k` (`A = 2^k`).
        dims: u32,
    },
    /// Complete graph with uniform re-sampling (Section 1.1 baseline).
    Complete {
        /// Number of nodes `A`.
        nodes: u64,
    },
}

impl TopologyClass {
    /// Number of nodes `A`.
    pub fn nodes(&self) -> u64 {
        match *self {
            Self::Torus2d { nodes }
            | Self::Ring { nodes }
            | Self::TorusKd { nodes, .. }
            | Self::Expander { nodes, .. }
            | Self::Complete { nodes } => nodes,
            Self::Hypercube { dims } => 1u64 << dims,
        }
    }

    /// The paper's re-collision envelope `β(m)` (with unit constants):
    /// an upper-bound *shape* for the probability that two agents that
    /// collided re-collide `m` rounds later.
    pub fn beta(&self, m: u64) -> f64 {
        let a = self.nodes() as f64;
        let mf = m as f64;
        match *self {
            Self::Torus2d { .. } => 1.0 / (mf + 1.0) + 1.0 / a,
            Self::Ring { .. } => 1.0 / (mf + 1.0).sqrt() + 1.0 / a,
            Self::TorusKd { dims, .. } => 1.0 / (mf + 1.0).powf(dims as f64 / 2.0) + 1.0 / a,
            Self::Expander { lambda, .. } => lambda.powf(mf) + 1.0 / a,
            Self::Hypercube { .. } => {
                let geo = if m == 0 { 1.0 } else { (0.9f64).powf(mf - 1.0) };
                geo + 1.0 / a.sqrt()
            }
            Self::Complete { .. } => {
                if m == 0 {
                    1.0
                } else {
                    1.0 / a
                }
            }
        }
    }

    /// `B(t) = Σ_{m=0..t} β(m)` — the re-collision sum that drives
    /// Lemma 19's accuracy bound. Computed in closed form.
    pub fn b_sum(&self, t: u64) -> f64 {
        let a = self.nodes() as f64;
        let tf = t as f64;
        match *self {
            // Σ 1/(m+1) = H_{t+1} ≈ ln(2t) for t ≥ 1.
            Self::Torus2d { .. } => harmonic(t + 1) + (tf + 1.0) / a,
            // Σ 1/√(m+1) ≈ 2√(t+1).
            Self::Ring { .. } => 2.0 * (tf + 1.0).sqrt() - 1.0 + (tf + 1.0) / a,
            // Σ 1/(m+1)^{k/2} converges; bound by ζ(k/2) partial sum.
            Self::TorusKd { dims, .. } => {
                let p = dims as f64 / 2.0;
                let mut s = 0.0;
                for m in 0..=t.min(10_000) {
                    s += 1.0 / ((m + 1) as f64).powf(p);
                }
                s + (tf + 1.0) / a
            }
            // Σ λ^m ≤ 1/(1−λ).
            Self::Expander { lambda, .. } => {
                let geo = if lambda >= 1.0 {
                    tf + 1.0
                } else {
                    (1.0 - lambda.powf(tf + 1.0)) / (1.0 - lambda)
                };
                geo + (tf + 1.0) / a
            }
            // 1 + Σ_{m≥1} (9/10)^{m−1} ≤ 1 + 10.
            Self::Hypercube { .. } => {
                let geo = 1.0 + 10.0 * (1.0 - (0.9f64).powf(tf));
                geo + (tf + 1.0) / a.sqrt()
            }
            Self::Complete { .. } => 1.0 + tf / a,
        }
    }

    /// Lemma 19's predicted accuracy after `t` rounds (unit constant):
    /// `ε(t) = √(ln(1/δ)/(t·d)) · B(t)`.
    ///
    /// # Panics
    ///
    /// Panics under the same domain conditions as
    /// [`bounds::lemma19_epsilon`].
    pub fn epsilon(&self, t: u64, d: f64, delta: f64) -> f64 {
        bounds::lemma19_epsilon(t, d, delta, self.b_sum(t), 1.0)
    }

    /// Smallest power-of-two `t` whose predicted `ε(t)` is below `eps`
    /// (a planner for "how long must the ants walk?"); `None` if not
    /// reached by `t_max`. Uses the Lemma 19 form, which for the ring is
    /// *not* convergent — mirroring the paper's observation that the
    /// moment method fails there (Theorem 21 uses Chebyshev instead).
    pub fn rounds_for(&self, eps: f64, delta: f64, d: f64, t_max: u64) -> Option<u64> {
        let mut t = 1u64;
        while t <= t_max {
            if self.epsilon(t, d, delta) <= eps {
                return Some(t);
            }
            t = t.saturating_mul(2);
        }
        None
    }

    /// The theory class matching an engine
    /// [`TopologySpec`] — the bridge the sweep orchestrator uses to put a
    /// predicted-accuracy column next to each measured cell. Returns
    /// `None` where the paper proves no closed-form envelope: a
    /// `TorusKd` with `dims < 3` (the paper analyses k ≥ 3; `dims == 2`
    /// is [`TopologyClass::Torus2d`], expressed that way in specs) and
    /// every pluggable `csr:*` graph. Those fall back to the
    /// measured-spectral-gap path — see [`Self::measured`] and
    /// [`theory_bound`].
    pub fn from_spec(spec: TopologySpec) -> Option<Self> {
        match spec {
            TopologySpec::Torus2d { side } => Some(Self::Torus2d { nodes: side * side }),
            TopologySpec::TorusKd { dims, side } if dims >= 3 => Some(Self::TorusKd {
                dims,
                nodes: side.pow(dims),
            }),
            TopologySpec::TorusKd { .. } => None,
            TopologySpec::Ring { nodes } => Some(Self::Ring { nodes }),
            TopologySpec::Hypercube { dims } => Some(Self::Hypercube { dims }),
            TopologySpec::Complete { nodes } => Some(Self::Complete { nodes }),
            TopologySpec::CsrRegular { .. }
            | TopologySpec::CsrGnp { .. }
            | TopologySpec::CsrGridHoles { .. }
            | TopologySpec::CsrCliqueRing { .. } => None,
        }
    }

    /// The **measured** theory class for any spec: builds the topology,
    /// estimates the decay rate of its walk's non-structural modes
    /// ([`antdensity_graphs::spectral::effective_lambda`] — deflated
    /// power iteration; on bipartite graphs the parity mode is deflated
    /// too, since co-located walkers share parity and the ±1 modes only
    /// contribute the `1/A`-scale floor the envelope carries
    /// separately), and classifies the graph as an
    /// [`TopologyClass::Expander`] with that λ — the paper's Lemma
    /// 23/24 envelope, which holds for *every* regular graph and is the
    /// honest numeric surrogate on near-regular irregular ones. Useful
    /// exactly where [`Self::from_spec`] has nothing: `csr:*` graphs
    /// and `toruskd` below three dimensions.
    ///
    /// Deterministic (fixed internal power-iteration seed) and cached
    /// per spec for the life of the process, so sweep reports price the
    /// spectral estimation once per distinct topology.
    pub fn measured(spec: TopologySpec) -> Self {
        Self::Expander {
            lambda: measured_lambda(spec),
            nodes: spec.num_nodes(),
        }
    }
}

/// Store namespace for disk-cached measured λ values. Folds in the
/// power-iteration configuration (seed, iteration budget, deflation
/// scheme) implicitly: change any of those and this must be bumped so
/// stale values are never served.
const LAMBDA_CACHE_NS: &str = "antdensity-lambda v1";

/// Process-wide disk layer under the in-memory λ memo, set by
/// [`set_lambda_cache_dir`].
static LAMBDA_STORE: std::sync::Mutex<Option<antdensity_cas::Store>> = std::sync::Mutex::new(None);

/// Points the measured-λ memo at an on-disk content-addressed store
/// (the same root `repro sweep --cache DIR` uses), so large CSR
/// spectral estimations are priced once per *machine* instead of once
/// per process. Purely an accelerator: λ stays a pure function of the
/// spec (fixed power-iteration seed), values round-trip through f64
/// bit patterns, and a corrupt entry is silently re-measured.
pub fn set_lambda_cache_dir(dir: &std::path::Path) {
    if let Ok(store) = antdensity_cas::Store::open(dir, LAMBDA_CACHE_NS) {
        *LAMBDA_STORE.lock().expect("lambda store lock") = Some(store);
    }
}

/// Measures (and caches) `λ` for a spec's built topology.
fn measured_lambda(spec: TopologySpec) -> f64 {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<TopologySpec, f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&lambda) = cache.lock().expect("lambda cache lock").get(&spec) {
        return lambda;
    }
    // Disk layer: the spec's display form is its canonical token, the
    // value its exact f64 bit pattern in hex.
    let key = format!("{spec}");
    {
        let store = LAMBDA_STORE.lock().expect("lambda store lock");
        if let Some(store) = store.as_ref() {
            if let antdensity_cas::Lookup::Hit(text) = store.get(&key) {
                if let Ok(bits) = u64::from_str_radix(text.trim(), 16) {
                    let lambda = f64::from_bits(bits);
                    if lambda.is_finite() {
                        cache
                            .lock()
                            .expect("lambda cache lock")
                            .insert(spec, lambda);
                        return lambda;
                    }
                }
            }
        }
    }
    let topo = spec.build();
    // Fixed seed: the measured column is a pure function of the spec,
    // so resumed/re-run sweeps report identical bounds.
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0x4c41_4d42); // "LAMB"
    let lambda = antdensity_graphs::spectral::effective_lambda(&topo, 4000, &mut rng).lambda;
    if let Some(store) = LAMBDA_STORE.lock().expect("lambda store lock").as_ref() {
        let _ = store.put(&key, &format!("{:016x}", lambda.to_bits()));
    }
    cache
        .lock()
        .expect("lambda cache lock")
        .insert(spec, lambda);
    lambda
}

/// Which derivation produced a theory-bound value — reported alongside
/// the bound itself (sweep reports carry it as the `bound_src` column),
/// so a closed-form paper envelope is never conflated with a numeric
/// spectral surrogate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundSource {
    /// One of the paper's per-topology closed-form envelopes.
    ClosedForm,
    /// No closed form exists for the topology: λ was measured
    /// numerically and the expander envelope (Lemma 23/24) applied.
    MeasuredGap,
    /// No single-theorem bound applies (composite estimators; Algorithm
    /// 4 off the 2-d torus).
    Unavailable,
}

impl BoundSource {
    /// Stable report token: `closed-form`, `measured-gap`, or empty.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::ClosedForm => "closed-form",
            Self::MeasuredGap => "measured-gap",
            Self::Unavailable => "",
        }
    }
}

impl std::fmt::Display for BoundSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A predicted error bound together with the path that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoryBound {
    /// The predicted relative-error bound (unit constants), when one
    /// applies.
    pub epsilon: Option<f64>,
    /// How it was derived.
    pub source: BoundSource,
}

/// The predicted relative-error bound (unit constants) for an estimator
/// running `t` rounds at density `d` with failure probability `delta`
/// on `topology`, together with **which path derived it**:
///
/// * Algorithm 1 (and its quorum read-out) on a topology the paper
///   analyses — the closed-form Theorem 1 / Lemma 19 shape
///   ([`BoundSource::ClosedForm`]);
/// * Algorithm 1 / quorum on anything else (`csr:*` graphs, `toruskd`
///   below three dimensions) — the **measured** spectral-gap expander
///   envelope ([`TopologyClass::measured`],
///   [`BoundSource::MeasuredGap`]), never a silent empty column;
/// * Algorithm 4 on the 2-d torus — Theorem 32's independent-sampling
///   shape (closed form); off the torus — no bound;
/// * relative frequency composes two estimates, so no single-theorem
///   bound applies.
pub fn theory_bound(
    topology: TopologySpec,
    estimator: &EstimatorSpec,
    t: u64,
    d: f64,
    delta: f64,
) -> TheoryBound {
    match estimator {
        EstimatorSpec::Algorithm1 | EstimatorSpec::Quorum { .. } => {
            match TopologyClass::from_spec(topology) {
                Some(class) => TheoryBound {
                    epsilon: Some(class.epsilon(t, d, delta)),
                    source: BoundSource::ClosedForm,
                },
                None => TheoryBound {
                    epsilon: Some(TopologyClass::measured(topology).epsilon(t, d, delta)),
                    source: BoundSource::MeasuredGap,
                },
            }
        }
        EstimatorSpec::Algorithm4 => match topology {
            TopologySpec::Torus2d { .. } => TheoryBound {
                epsilon: Some(bounds::theorem32_epsilon(t, d, delta, 1.0)),
                source: BoundSource::ClosedForm,
            },
            _ => TheoryBound {
                epsilon: None,
                source: BoundSource::Unavailable,
            },
        },
        EstimatorSpec::RelativeFrequency { .. } => TheoryBound {
            epsilon: None,
            source: BoundSource::Unavailable,
        },
    }
}

/// [`theory_bound`]'s epsilon alone — the historical entry point. Since
/// the measured-gap path landed, topologies without a closed form
/// return the numeric bound instead of `None`; only combinations with
/// no applicable theorem at all (relative frequency, Algorithm 4 off
/// the torus) stay empty.
pub fn predicted_epsilon(
    topology: TopologySpec,
    estimator: &EstimatorSpec,
    t: u64,
    d: f64,
    delta: f64,
) -> Option<f64> {
    theory_bound(topology, estimator, t, d, delta).epsilon
}

/// The harmonic number `H_n = Σ_{i=1..n} 1/i`.
pub fn harmonic(n: u64) -> f64 {
    if n < 100 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        // Euler–Maclaurin: H_n ≈ ln n + γ + 1/2n − 1/12n².
        let nf = n as f64;
        nf.ln() + 0.577_215_664_901_532_9 + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_asymptotic_is_continuous() {
        // the exact and asymptotic branches agree at the crossover
        let exact: f64 = (1..=99u64).map(|i| 1.0 / i as f64).sum();
        assert!((harmonic(99) - exact).abs() < 1e-12);
        assert!((harmonic(100) - (exact + 0.01)).abs() < 1e-6);
    }

    #[test]
    fn from_spec_matches_node_counts() {
        let cases = [
            TopologySpec::Torus2d { side: 32 },
            TopologySpec::TorusKd { dims: 3, side: 8 },
            TopologySpec::Ring { nodes: 512 },
            TopologySpec::Hypercube { dims: 10 },
            TopologySpec::Complete { nodes: 4096 },
        ];
        for spec in cases {
            let class = TopologyClass::from_spec(spec).unwrap();
            assert_eq!(class.nodes(), spec.num_nodes(), "{spec}");
        }
        assert!(TopologyClass::from_spec(TopologySpec::TorusKd { dims: 2, side: 8 }).is_none());
    }

    #[test]
    fn predicted_epsilon_shapes() {
        let torus = TopologySpec::Torus2d { side: 64 };
        let e1 = predicted_epsilon(torus, &EstimatorSpec::Algorithm1, 256, 0.05, 0.1).unwrap();
        let e1_longer =
            predicted_epsilon(torus, &EstimatorSpec::Algorithm1, 4096, 0.05, 0.1).unwrap();
        assert!(e1_longer < e1, "more rounds tighten the bound");
        // quorum thresholds Algorithm 1 estimates: same bound
        let eq = predicted_epsilon(
            torus,
            &EstimatorSpec::Quorum { threshold: 0.1 },
            256,
            0.05,
            0.1,
        )
        .unwrap();
        assert_eq!(eq, e1);
        // Algorithm 4 is torus-only and sqrt-shaped
        assert!(predicted_epsilon(torus, &EstimatorSpec::Algorithm4, 32, 0.05, 0.1).is_some());
        assert!(predicted_epsilon(
            TopologySpec::Ring { nodes: 64 },
            &EstimatorSpec::Algorithm4,
            32,
            0.05,
            0.1
        )
        .is_none());
        // relative frequency has no single-theorem bound
        assert!(predicted_epsilon(
            torus,
            &EstimatorSpec::RelativeFrequency { property_agents: 4 },
            32,
            0.05,
            0.1
        )
        .is_none());
    }

    #[test]
    fn theory_bound_reports_derivation_path() {
        let torus = TopologySpec::Torus2d { side: 64 };
        let b = theory_bound(torus, &EstimatorSpec::Algorithm1, 256, 0.05, 0.1);
        assert_eq!(b.source, BoundSource::ClosedForm);
        assert_eq!(
            b.epsilon,
            predicted_epsilon(torus, &EstimatorSpec::Algorithm1, 256, 0.05, 0.1)
        );
        // csr graphs go through the measured spectral gap
        let csr = TopologySpec::CsrRegular {
            nodes: 128,
            degree: 8,
        };
        let b = theory_bound(csr, &EstimatorSpec::Algorithm1, 256, 0.05, 0.1);
        assert_eq!(b.source, BoundSource::MeasuredGap);
        let eps = b.epsilon.expect("measured path must produce a bound");
        assert!(eps.is_finite() && eps > 0.0);
        // no-bound combinations are labeled, not silently empty
        let b = theory_bound(
            csr,
            &EstimatorSpec::RelativeFrequency { property_agents: 4 },
            256,
            0.05,
            0.1,
        );
        assert_eq!((b.epsilon, b.source), (None, BoundSource::Unavailable));
        let b = theory_bound(csr, &EstimatorSpec::Algorithm4, 32, 0.05, 0.1);
        assert_eq!((b.epsilon, b.source), (None, BoundSource::Unavailable));
        assert_eq!(BoundSource::MeasuredGap.to_string(), "measured-gap");
        assert_eq!(BoundSource::Unavailable.as_str(), "");
    }

    #[test]
    fn measured_class_tracks_the_actual_spectrum() {
        // A random 8-regular graph is an expander: measured lambda near
        // the Friedman value ~2*sqrt(7)/8 ≈ 0.66, never close to 1.
        let expander = TopologyClass::measured(TopologySpec::CsrRegular {
            nodes: 256,
            degree: 8,
        });
        match expander {
            TopologyClass::Expander { lambda, nodes } => {
                assert_eq!(nodes, 256);
                assert!(lambda < 0.85, "expander lambda {lambda}");
                assert!(lambda > 0.3, "lambda suspiciously small: {lambda}");
            }
            other => panic!("unexpected class {other:?}"),
        }
        // A ring of cliques is a bottleneck graph: lambda much closer
        // to 1 than the expander's — the measured bound orders the two
        // families the way mixing actually orders them.
        let bottleneck = TopologyClass::measured(TopologySpec::CsrCliqueRing {
            cliques: 16,
            clique_size: 8,
        });
        match (expander, bottleneck) {
            (
                TopologyClass::Expander { lambda: le, .. },
                TopologyClass::Expander { lambda: lb, .. },
            ) => {
                assert!(lb > 0.95, "clique-ring lambda {lb} should be near 1");
                assert!(lb > le + 0.1, "bottleneck {lb} vs expander {le}");
            }
            other => panic!("unexpected classes {other:?}"),
        }
        // deterministic: the cache and the fixed seed agree across calls
        let again = TopologyClass::measured(TopologySpec::CsrCliqueRing {
            cliques: 16,
            clique_size: 8,
        });
        assert_eq!(again, bottleneck);
    }

    #[test]
    fn measured_bound_stays_informative_on_bipartite_regions() {
        // Masked lattices are bipartite (grid subgraphs), so the naive
        // max(|λ₂|, |λ_A|) saturates at 1; the measured path deflates
        // the parity mode and must report a real decay rate — a finite,
        // non-degenerate epsilon that still reflects slow mixing.
        let bound_at = |pm: u32| {
            let spec = TopologySpec::CsrGridHoles {
                side: 16,
                mask_seed: 7,
                hole_pm: pm,
            };
            theory_bound(spec, &EstimatorSpec::Algorithm1, 512, 0.1, 0.1)
        };
        for pm in [0u32, 200, 400] {
            let b = bound_at(pm);
            assert_eq!(b.source, BoundSource::MeasuredGap);
            let eps = b.epsilon.expect("measured bound");
            assert!(eps.is_finite() && eps > 0.0, "hole_pm {pm}: eps {eps}");
        }
        // and the measured class's lambda sits strictly inside (0, 1)
        match TopologyClass::measured(TopologySpec::CsrGridHoles {
            side: 16,
            mask_seed: 7,
            hole_pm: 200,
        }) {
            TopologyClass::Expander { lambda, .. } => {
                assert!(
                    lambda > 0.5 && lambda < 0.9999,
                    "grid-holes effective lambda {lambda}"
                );
            }
            other => panic!("unexpected class {other:?}"),
        }
    }

    #[test]
    fn beta_shapes_at_lag_zero_and_large() {
        let a = 4096;
        let torus = TopologyClass::Torus2d { nodes: a };
        assert!((torus.beta(0) - (1.0 + 1.0 / a as f64)).abs() < 1e-12);
        // large m: floor at 1/A
        assert!(torus.beta(1 << 20) < 2.0 / a as f64 + 1e-6);

        let ring = TopologyClass::Ring { nodes: a };
        assert!(ring.beta(99) > torus.beta(99), "ring decays slower");

        let t3 = TopologyClass::TorusKd { dims: 3, nodes: a };
        assert!(t3.beta(99) < torus.beta(99), "3-d torus decays faster");

        let hyper = TopologyClass::Hypercube { dims: 12 };
        assert!(hyper.beta(100) < 0.02, "hypercube decays geometrically");

        let complete = TopologyClass::Complete { nodes: a };
        assert_eq!(complete.beta(5), 1.0 / a as f64);
    }

    #[test]
    fn b_sum_growth_rates() {
        let a = 1 << 20; // huge A so the 1/A terms are negligible
        let torus = TopologyClass::Torus2d { nodes: a };
        let ring = TopologyClass::Ring { nodes: a };
        let t3 = TopologyClass::TorusKd { dims: 3, nodes: a };
        // torus: log growth — doubling t adds ~ln 2
        let g_torus = torus.b_sum(2048) - torus.b_sum(1024);
        assert!(
            (g_torus - (2.0f64).ln()).abs() < 0.01,
            "torus growth {g_torus}"
        );
        // ring: sqrt growth — B(4t) ~ 2 B(t)
        let r1 = ring.b_sum(1024);
        let r4 = ring.b_sum(4096);
        assert!((r4 / r1 - 2.0).abs() < 0.1, "ring ratio {}", r4 / r1);
        // k = 3: bounded
        assert!(
            t3.b_sum(1 << 14) < 3.0,
            "3-d torus B(t) = {}",
            t3.b_sum(1 << 14)
        );
    }

    #[test]
    fn expander_b_sum_is_inverse_gap() {
        let e = TopologyClass::Expander {
            lambda: 0.5,
            nodes: 1 << 20,
        };
        // Σ λ^m → 1/(1−λ) = 2
        assert!((e.b_sum(200) - 2.0).abs() < 0.01);
    }

    #[test]
    fn epsilon_ordering_matches_paper() {
        // At matched (t, d, delta): complete < k=3 torus < 2-d torus < ring.
        let a = 1 << 16;
        let (t, d, delta) = (4096u64, 0.02, 0.05);
        let eps = |c: TopologyClass| c.epsilon(t, d, delta);
        let complete = eps(TopologyClass::Complete { nodes: a });
        let t3 = eps(TopologyClass::TorusKd { dims: 3, nodes: a });
        let t2 = eps(TopologyClass::Torus2d { nodes: a });
        let ring = eps(TopologyClass::Ring { nodes: a });
        assert!(complete < t3, "{complete} < {t3}");
        assert!(t3 < t2, "{t3} < {t2}");
        assert!(t2 < ring, "{t2} < {ring}");
    }

    #[test]
    fn rounds_for_finds_torus_budget_but_not_ring() {
        let a = 1 << 24;
        let torus = TopologyClass::Torus2d { nodes: a };
        let ring = TopologyClass::Ring { nodes: a };
        let t_torus = torus.rounds_for(0.2, 0.1, 0.05, 1 << 30);
        assert!(t_torus.is_some());
        // Lemma 19's epsilon on the ring does not shrink with t:
        // eps ~ sqrt(1/(td)) * sqrt(t) = const. The planner must fail,
        // matching the paper's remark that the technique is too weak there.
        let t_ring = ring.rounds_for(0.2, 0.1, 0.05, 1 << 30);
        assert_eq!(t_ring, None);
    }

    #[test]
    fn epsilon_shrinks_with_time_on_torus() {
        let c = TopologyClass::Torus2d { nodes: 1 << 20 };
        let e1 = c.epsilon(1 << 8, 0.02, 0.05);
        let e2 = c.epsilon(1 << 16, 0.02, 0.05);
        assert!(e2 < e1 / 5.0, "e(2^16) = {e2} vs e(2^8) = {e1}");
    }

    #[test]
    fn hypercube_nodes_computed_from_dims() {
        assert_eq!(TopologyClass::Hypercube { dims: 10 }.nodes(), 1024);
    }
}
