//! Algorithm 4: independent-sampling-based density estimation
//! (Appendix A of the paper).
//!
//! Each agent flips a fair coin: *stationary* agents never move, *walking*
//! agents take the deterministic step `(0, 1)` every round. A walking
//! agent therefore visits `t` distinct cells (for `t < √A`) and its
//! collision count with stationary agents is a sum of independent
//! Bernoulli(`t/2A`-ish) variables — i.i.d. sampling in disguise, giving
//! Theorem 32's clean `ε = O(√(log(1/δ)/td))` with no log factor.
//!
//! The subtlety the paper handles: two walking agents that *start on the
//! same cell* move in lockstep and would register `t` spurious collisions
//! (`w` co-located walkers → `w·t` spurious counts). The `c := c mod t`
//! step removes exactly those, which is why the estimator returns
//! `d̃ = 2·(c mod t)/t`.

use crate::algorithm1::DensityRun;
use antdensity_engine::observer::{Alg4Observer, EncounterTallies, Observer, RoundEvents};
use antdensity_graphs::{NodeId, Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use rand::Rng;

/// Configuration for an Algorithm 4 run on the 2-d torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Algorithm4 {
    num_agents: usize,
    rounds: u64,
}

impl Algorithm4 {
    /// Creates a run configuration.
    ///
    /// Theorem 32 requires `t < √A`; [`Algorithm4::run`] enforces it.
    ///
    /// # Panics
    ///
    /// Panics if `num_agents == 0` or `rounds == 0`.
    pub fn new(num_agents: usize, rounds: u64) -> Self {
        assert!(num_agents > 0, "need at least one agent");
        assert!(rounds > 0, "need at least one round");
        Self { num_agents, rounds }
    }

    /// Number of agents `n + 1`.
    pub fn num_agents(&self) -> usize {
        self.num_agents
    }

    /// Number of rounds `t`.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Executes Algorithm 4 with uniform random placement.
    ///
    /// # Panics
    ///
    /// Panics if `rounds ≥ √A` (the theorem's precondition: a walking
    /// agent must visit `t` distinct cells).
    pub fn run(&self, torus: &Torus2d, seed: u64) -> DensityRun {
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let positions: Vec<NodeId> = (0..self.num_agents)
            .map(|_| torus.uniform_node(&mut rng))
            .collect();
        let walking: Vec<bool> = (0..self.num_agents).map(|_| rng.gen_bool(0.5)).collect();
        self.run_explicit(torus, &positions, &walking)
    }

    /// Executes with explicit starting positions and walking states —
    /// exposes the adversarial co-located-start case the `c mod t` step
    /// corrects.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, a position is out of range, or
    /// `rounds ≥ √A`.
    pub fn run_explicit(
        &self,
        torus: &Torus2d,
        positions: &[NodeId],
        walking: &[bool],
    ) -> DensityRun {
        assert_eq!(positions.len(), self.num_agents, "positions length");
        assert_eq!(walking.len(), self.num_agents, "walking length");
        assert!(
            self.rounds < torus.side(),
            "Theorem 32 requires t < sqrt(A) (= {}); got t = {}",
            torus.side(),
            self.rounds
        );
        let mut pos = positions.to_vec();
        for &p in &pos {
            assert!(p < torus.num_nodes(), "position {p} out of range");
        }
        // The deterministic drift simulation emits per-round encounter
        // events; the stationary/mobile `c mod t` correction itself is
        // the shared `Alg4Observer` snapshot.
        let mut tallies = EncounterTallies::new(self.num_agents, false);
        let mut round_counts = vec![0u32; self.num_agents];
        let mut occupancy: std::collections::HashMap<NodeId, u32> =
            std::collections::HashMap::new();
        for round in 1..=self.rounds {
            for (p, &w) in pos.iter_mut().zip(walking) {
                if w {
                    *p = torus.offset(*p, 0, 1); // the paper's (0, 1) step
                }
            }
            occupancy.clear();
            for &p in &pos {
                *occupancy.entry(p).or_insert(0) += 1;
            }
            for (c, &p) in round_counts.iter_mut().zip(&pos) {
                *c = occupancy[&p] - 1;
            }
            tallies.record(&RoundEvents {
                round,
                counts: &round_counts,
                raw_counts: &round_counts,
                group_counts: None,
            });
        }
        let observer = Alg4Observer {
            walking: walking.to_vec(),
        };
        let outcome = observer.snapshot(
            &tallies,
            (self.num_agents as f64 - 1.0) / torus.num_nodes() as f64,
        );
        DensityRun::from_parts(
            outcome.estimates,
            outcome.collision_counts,
            outcome.rounds,
            outcome.true_density,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbiased_on_torus() {
        let torus = Torus2d::new(64); // A = 4096
        let cfg = Algorithm4::new(513, 63); // d = 512/4096 = 0.125
        let mut grand = 0.0;
        let runs = 10;
        for seed in 0..runs {
            grand += cfg.run(&torus, seed).mean_estimate();
        }
        let mean = grand / runs as f64;
        assert!((mean - 0.125).abs() < 0.01, "grand mean {mean}");
    }

    #[test]
    fn colocated_walkers_corrected_exactly() {
        // Two walking agents on the same start cell, nobody else: they
        // march in lockstep and collide every round. Without mod t each
        // would report c = t (estimate 2.0!); the correction zeroes it.
        let torus = Torus2d::new(32);
        let cfg = Algorithm4::new(2, 16);
        let run = cfg.run_explicit(&torus, &[100, 100], &[true, true]);
        assert_eq!(run.collision_counts(), &[0, 0]);
        assert_eq!(run.estimates(), &[0.0, 0.0]);
    }

    #[test]
    fn colocated_stack_of_three_walkers() {
        // w+1 = 3 co-located walkers: each counts 2 per round = 2t total,
        // and 2t mod t = 0. Correction handles any stack size.
        let torus = Torus2d::new(32);
        let cfg = Algorithm4::new(3, 10);
        let run = cfg.run_explicit(&torus, &[5, 5, 5], &[true, true, true]);
        assert_eq!(run.collision_counts(), &[0, 0, 0]);
    }

    #[test]
    fn walker_meets_stationary_agent_once() {
        // A walker passing a stationary agent directly above it collides
        // exactly once (torus side > t).
        let torus = Torus2d::new(32);
        let start = torus.node(3, 3);
        let blocker = torus.node(3, 7); // 4 steps up
        let cfg = Algorithm4::new(2, 16);
        let run = cfg.run_explicit(&torus, &[start, blocker], &[true, false]);
        assert_eq!(run.collision_counts()[0], 1);
        assert_eq!(run.collision_counts()[1], 1);
        // estimate = 2 * 1 / 16 = 0.125
        assert!((run.estimates()[0] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn two_stationary_agents_on_same_cell_saturate_mod() {
        // Degenerate but instructive: two stationary agents together
        // collide every round -> c = t -> c mod t = 0. (The paper's
        // analysis only needs the walking-agent estimates; symmetry makes
        // stationary agents behave identically.)
        let torus = Torus2d::new(32);
        let cfg = Algorithm4::new(2, 8);
        let run = cfg.run_explicit(&torus, &[9, 9], &[false, false]);
        assert_eq!(run.collision_counts(), &[0, 0]);
    }

    #[test]
    fn more_accurate_than_algorithm1_at_same_t() {
        // Theorem 32 vs Theorem 1: independent sampling saves the log
        // factor. With matched (A, d, t) Algorithm 4's error variance
        // should not exceed Algorithm 1's by much; typically it's smaller.
        use crate::algorithm1::Algorithm1;
        let torus = Torus2d::new(128); // A = 16384
        let agents = 2049; // d = 2048/16384 = 0.125
        let rounds = 100;
        let mut err4 = 0.0;
        let mut err1 = 0.0;
        for seed in 0..5 {
            let r4 = Algorithm4::new(agents, rounds).run(&torus, seed);
            let r1 = Algorithm1::new(agents, rounds).run(&torus, seed);
            err4 += r4.relative_errors().iter().sum::<f64>() / agents as f64;
            err1 += r1.relative_errors().iter().sum::<f64>() / agents as f64;
        }
        // allow generous slack; the key regression guard is that alg4 is
        // in the same ballpark or better, never wildly worse.
        assert!(
            err4 < err1 * 1.5,
            "algorithm 4 error {err4} should not exceed algorithm 1 error {err1} by 50%"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let torus = Torus2d::new(32);
        let cfg = Algorithm4::new(65, 16);
        assert_eq!(cfg.run(&torus, 11), cfg.run(&torus, 11));
    }

    #[test]
    #[should_panic(expected = "t < sqrt(A)")]
    fn rejects_t_of_sqrt_a() {
        let torus = Torus2d::new(16);
        let _ = Algorithm4::new(4, 16).run(&torus, 0);
    }
}
