//! The i.i.d. sampling baseline of Section 1.1.
//!
//! On the complete graph "each agent steps to a uniformly random position
//! and, in expectation, the number of other agents it collides with in
//! this step is d. … The agents are effectively taking independent
//! Bernoulli samples with success probability d." This module samples
//! that process *directly* — each round's collision count is an exact
//! `Binomial(n, 1/A)` draw — so the baseline costs O(t) per agent
//! regardless of population size, letting experiments compare the torus
//! against the idealised baseline at large scale.

use crate::algorithm1::DensityRun;
use antdensity_stats::rng::SeedSequence;
use rand::Rng;

/// The idealised independent-sampling estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IidBaseline {
    others: u64,
    area: u64,
    rounds: u64,
}

impl IidBaseline {
    /// An agent observing `others = n` other agents on `area = A` nodes
    /// for `rounds = t` rounds (density `d = n/A`).
    ///
    /// # Panics
    ///
    /// Panics if `area == 0` or `rounds == 0`.
    pub fn new(others: u64, area: u64, rounds: u64) -> Self {
        assert!(area > 0, "area must be positive");
        assert!(rounds > 0, "need at least one round");
        Self {
            others,
            area,
            rounds,
        }
    }

    /// The density `d = n/A` being estimated.
    pub fn density(&self) -> f64 {
        self.others as f64 / self.area as f64
    }

    /// Draws `num_estimators` independent estimates (each the average of
    /// `t` i.i.d. `Binomial(n, 1/A)` rounds).
    pub fn run(&self, num_estimators: usize, seed: u64) -> DensityRun {
        assert!(num_estimators > 0, "need at least one estimator");
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let p = 1.0 / self.area as f64;
        let mut counts = Vec::with_capacity(num_estimators);
        for _ in 0..num_estimators {
            let mut c = 0u64;
            for _ in 0..self.rounds {
                c += sample_binomial_u64(self.others, p, &mut rng);
            }
            counts.push(c);
        }
        let estimates = counts
            .iter()
            .map(|&c| c as f64 / self.rounds as f64)
            .collect();
        DensityRun::from_parts(estimates, counts, self.rounds, self.density())
    }
}

/// Exact Binomial(n, p) sampling by inversion on the CDF — O(np + 1)
/// expected work, exact for the tiny `np = d ≤ 1` regime this baseline
/// lives in, and still correct (just slower) elsewhere.
pub fn sample_binomial_u64(n: u64, p: f64, rng: &mut impl Rng) -> u64 {
    assert!((0.0..=1.0).contains(&p), "probability must lie in [0,1]");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Inversion: walk the pmf using the recurrence
    //   P(k+1) = P(k) * (n-k)/(k+1) * p/(1-p).
    let q = 1.0 - p;
    let mut pmf = q.powf(n as f64); // P(0)
    if pmf == 0.0 {
        // Too deep in the tail for direct inversion (np huge). Fall back
        // to a normal approximation, clamped to the support. The baseline
        // never hits this path with valid model parameters (np = d <= 1).
        let mean = n as f64 * p;
        let sd = (n as f64 * p * q).sqrt();
        let z = sample_standard_normal(rng);
        let v = (mean + sd * z).round();
        return v.clamp(0.0, n as f64) as u64;
    }
    let mut cdf = pmf;
    let u: f64 = rng.gen_range(0.0..1.0);
    let mut k = 0u64;
    while u > cdf && k < n {
        pmf *= (n - k) as f64 / (k + 1) as f64 * (p / q);
        k += 1;
        cdf += pmf;
        if pmf < 1e-300 {
            break;
        }
    }
    k
}

/// Standard normal via Box–Muller.
fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn baseline_mean_matches_density() {
        let b = IidBaseline::new(128, 1024, 256); // d = 0.125
        let run = b.run(200, 1);
        assert!((run.mean_estimate() - 0.125).abs() < 0.005);
        assert_eq!(run.true_density(), 0.125);
    }

    #[test]
    fn error_decays_like_inverse_sqrt_t() {
        let d = 0.125;
        let short = IidBaseline::new(128, 1024, 64).run(400, 2);
        let long = IidBaseline::new(128, 1024, 1024).run(400, 3);
        let rms = |r: &DensityRun| {
            let e = r.relative_errors();
            (e.iter().map(|x| x * x).sum::<f64>() / e.len() as f64).sqrt()
        };
        let ratio = rms(&short) / rms(&long);
        // t grew 16x so rms error should shrink ~4x
        assert!(
            (ratio - 4.0).abs() < 1.2,
            "ratio {ratio} should be near 4 (d = {d})"
        );
    }

    #[test]
    fn binomial_u64_mean_and_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(sample_binomial_u64(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial_u64(10, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial_u64(10, 1.0, &mut rng), 10);
        let trials = 40_000;
        let total: u64 = (0..trials)
            .map(|_| sample_binomial_u64(2000, 0.001, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn binomial_u64_huge_n_normal_path() {
        let mut rng = SmallRng::seed_from_u64(5);
        // np = 5e5 forces the normal fallback; sanity-check the scale.
        let trials = 2000;
        let total: u64 = (0..trials)
            .map(|_| sample_binomial_u64(1_000_000, 0.5, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 500_000.0).abs() < 200.0, "mean {mean}");
    }

    #[test]
    fn chernoff_coverage_holds() {
        // After chernoff_rounds(eps, delta, d) rounds, at least 1 - delta
        // of estimators are within (1 +- eps) d.
        let d = 0.125;
        let (eps, delta) = (0.2, 0.1);
        let t = antdensity_stats::bounds::chernoff_rounds(eps, delta, d).ceil() as u64;
        let run = IidBaseline::new(128, 1024, t).run(1000, 6);
        let cover = run.fraction_within(eps);
        assert!(
            cover >= 1.0 - delta,
            "coverage {cover} below 1 - delta = {}",
            1.0 - delta
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let b = IidBaseline::new(10, 100, 50);
        assert_eq!(b.run(20, 9), b.run(20, 9));
    }
}
