//! Section 5.2: estimating the relative frequency of a property.
//!
//! "Let d be the overall population density and d_P be the density of
//! agents with some property P. … Assuming that agents with property P
//! are distributed uniformly in population and that agents can detect
//! this property, they can separately track encounters with these agents.
//! They can compute an estimate d̃ of d and d̃_P of d_P", and the ratio
//! `d̃_P/d̃ ∈ [(1−ε)/(1+ε)·f_P, (1+ε)/(1−ε)·f_P]` w.h.p.
//!
//! Properties in nature: successful forager, nestmate vs enemy; in robot
//! swarms: task-group membership, event detection.

use antdensity_engine::observer::{
    Alg1Observer, EncounterTallies, Observer, RelFreqObserver, RoundEvents,
};
use antdensity_graphs::Topology;
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::arena::SyncArena;
use antdensity_walks::movement::MovementModel;

/// One agent's joint estimate of overall density, property density, and
/// relative frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyEstimate {
    /// Estimate `d̃` of the overall density.
    pub density: f64,
    /// Estimate `d̃_P` of the property density.
    pub property_density: f64,
    /// Whether this agent itself has the property.
    pub has_property: bool,
}

impl FrequencyEstimate {
    /// The relative-frequency estimate `f̃_P = d̃_P / d̃`, or `None` when
    /// the agent observed no collisions at all (d̃ = 0).
    pub fn frequency(&self) -> Option<f64> {
        if self.density > 0.0 {
            Some(self.property_density / self.density)
        } else {
            None
        }
    }
}

/// The outcome of a frequency-estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyRun {
    estimates: Vec<FrequencyEstimate>,
    rounds: u64,
    num_property: usize,
    num_agents: usize,
    nodes: u64,
}

impl FrequencyRun {
    /// Per-agent estimates.
    pub fn estimates(&self) -> &[FrequencyEstimate] {
        &self.estimates
    }

    /// Rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The population-level property frequency `f_P = |P| / (n+1)`.
    pub fn true_frequency(&self) -> f64 {
        self.num_property as f64 / self.num_agents as f64
    }

    /// Paper-convention true density `d = n/A`.
    pub fn true_density(&self) -> f64 {
        (self.num_agents as f64 - 1.0) / self.nodes as f64
    }

    /// Mean of the defined per-agent frequency estimates.
    pub fn mean_frequency(&self) -> Option<f64> {
        let defined: Vec<f64> = self
            .estimates
            .iter()
            .filter_map(FrequencyEstimate::frequency)
            .collect();
        if defined.is_empty() {
            None
        } else {
            Some(defined.iter().sum::<f64>() / defined.len() as f64)
        }
    }

    /// Fraction of agents whose `f̃_P` lies within the paper's two-sided
    /// band `[(1−eps)/(1+eps)·f, (1+eps)/(1−eps)·f]`.
    pub fn fraction_within(&self, eps: f64) -> f64 {
        let f = self.true_frequency();
        let lo = (1.0 - eps) / (1.0 + eps) * f;
        let hi = (1.0 + eps) / (1.0 - eps) * f;
        let ok = self
            .estimates
            .iter()
            .filter_map(FrequencyEstimate::frequency)
            .filter(|&x| x >= lo && x <= hi)
            .count();
        ok as f64 / self.estimates.len() as f64
    }
}

/// Configuration for a property-frequency estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyEstimation {
    num_agents: usize,
    num_property: usize,
    rounds: u64,
    movement: MovementModel,
}

impl FrequencyEstimation {
    /// `num_property` of the `num_agents` agents carry property P; all
    /// agents walk `rounds` rounds tracking total and per-property
    /// encounter counts.
    ///
    /// # Panics
    ///
    /// Panics if `num_agents == 0`, `rounds == 0`, or
    /// `num_property > num_agents`.
    pub fn new(num_agents: usize, num_property: usize, rounds: u64) -> Self {
        assert!(num_agents > 0, "need at least one agent");
        assert!(rounds > 0, "need at least one round");
        assert!(
            num_property <= num_agents,
            "property holders cannot exceed population"
        );
        Self {
            num_agents,
            num_property,
            rounds,
            movement: MovementModel::Pure,
        }
    }

    /// Replaces the movement model.
    pub fn with_movement(mut self, movement: MovementModel) -> Self {
        self.movement = movement;
        self
    }

    /// Runs the estimation; property holders are a uniformly random
    /// subset of the population (the paper's uniformity assumption holds
    /// by the exchangeability of uniform placement, so we mark the first
    /// `num_property` agents).
    pub fn run<T: Topology>(&self, topo: &T, seed: u64) -> FrequencyRun {
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut arena = SyncArena::new(topo, self.num_agents);
        arena.set_movement_all(&self.movement);
        for a in 0..self.num_property {
            arena.assign_group(a, 0);
        }
        arena.place_uniform(&mut rng);
        // The arena emits per-round events; the dual total/property
        // tally and the ratio estimator live in the shared observer
        // layer ([`RelFreqObserver`]), not in this loop.
        let n = self.num_agents;
        let track = self.num_property > 0;
        let mut tallies = EncounterTallies::new(n, track);
        let mut counts = vec![0u32; n];
        let mut group_counts = vec![0u32; if track { n } else { 0 }];
        for round in 1..=self.rounds {
            arena.step_round(&mut rng);
            for (a, slot) in counts.iter_mut().enumerate() {
                *slot = arena.count(a);
            }
            for (a, slot) in group_counts.iter_mut().enumerate() {
                *slot = arena.count_in_group(a, 0);
            }
            tallies.record(&RoundEvents {
                round,
                counts: &counts,
                raw_counts: &counts,
                group_counts: track.then_some(group_counts.as_slice()),
            });
        }
        let d_true = (n as f64 - 1.0) / topo.num_nodes() as f64;
        let (density, property_density) = if track {
            let o = RelFreqObserver.snapshot(&tallies, d_true);
            (
                o.estimates,
                o.property_estimates
                    .expect("relative-frequency snapshots carry property estimates"),
            )
        } else {
            // No property holders: the property stream is identically 0.
            (
                Alg1Observer.snapshot(&tallies, d_true).estimates,
                vec![0.0; n],
            )
        };
        let estimates = density
            .into_iter()
            .zip(property_density)
            .enumerate()
            .map(|(a, (d, dp))| FrequencyEstimate {
                density: d,
                property_density: dp,
                has_property: a < self.num_property,
            })
            .collect();
        FrequencyRun {
            estimates,
            rounds: self.rounds,
            num_property: self.num_property,
            num_agents: self.num_agents,
            nodes: topo.num_nodes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CompleteGraph, Torus2d};

    #[test]
    fn frequency_estimates_converge_on_complete_graph() {
        // d = 256/512, f_P = 64/257 ~ 0.249
        let topo = CompleteGraph::new(512);
        let run = FrequencyEstimation::new(257, 64, 512).run(&topo, 1);
        let f = run.mean_frequency().expect("plenty of collisions");
        let truth = run.true_frequency();
        assert!(
            (f - truth).abs() < 0.03,
            "mean frequency {f} vs truth {truth}"
        );
    }

    #[test]
    fn frequency_estimates_on_torus() {
        let topo = Torus2d::new(16); // A = 256
        let run = FrequencyEstimation::new(65, 32, 2048).run(&topo, 2);
        let f = run.mean_frequency().expect("defined");
        let truth = run.true_frequency(); // ~0.492
        assert!((f - truth).abs() < 0.08, "mean {f} vs truth {truth}");
    }

    #[test]
    fn property_density_le_density() {
        let topo = Torus2d::new(8);
        let run = FrequencyEstimation::new(20, 5, 100).run(&topo, 3);
        for e in run.estimates() {
            assert!(e.property_density <= e.density + 1e-12);
            if let Some(f) = e.frequency() {
                assert!((0.0..=1.0 + 1e-12).contains(&f));
            }
        }
    }

    #[test]
    fn zero_property_holders_give_zero_frequency() {
        let topo = Torus2d::new(8);
        let run = FrequencyEstimation::new(10, 0, 50).run(&topo, 4);
        assert_eq!(run.true_frequency(), 0.0);
        for e in run.estimates() {
            assert_eq!(e.property_density, 0.0);
            if let Some(f) = e.frequency() {
                assert_eq!(f, 0.0);
            }
        }
    }

    #[test]
    fn all_property_holders_give_unit_frequency() {
        let topo = CompleteGraph::new(64);
        let run = FrequencyEstimation::new(33, 33, 256).run(&topo, 5);
        assert_eq!(run.true_frequency(), 1.0);
        let f = run.mean_frequency().expect("defined");
        assert!((f - 1.0).abs() < 1e-9, "f = {f}");
    }

    #[test]
    fn has_property_flags_assigned() {
        let topo = Torus2d::new(8);
        let run = FrequencyEstimation::new(10, 3, 10).run(&topo, 6);
        let flagged = run.estimates().iter().filter(|e| e.has_property).count();
        assert_eq!(flagged, 3);
    }

    #[test]
    fn fraction_within_band_improves_with_rounds() {
        let topo = CompleteGraph::new(256);
        let short = FrequencyEstimation::new(129, 64, 16).run(&topo, 7);
        let long = FrequencyEstimation::new(129, 64, 2048).run(&topo, 7);
        assert!(long.fraction_within(0.2) >= short.fraction_within(0.2));
        assert!(long.fraction_within(0.2) > 0.9);
    }

    #[test]
    #[should_panic(expected = "cannot exceed population")]
    fn too_many_property_holders_rejected() {
        let _ = FrequencyEstimation::new(5, 6, 10);
    }
}
