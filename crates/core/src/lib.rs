//! The paper's primary contribution: random-walk-based density estimation.
//!
//! This crate implements, verbatim, the algorithms of
//! *Ant-Inspired Density Estimation via Random Walks* (Musco, Su, Lynch;
//! PODC 2016 / PNAS 2017):
//!
//! * [`algorithm1`] — **Algorithm 1**: every agent random-walks and
//!   accumulates `count(position)`; after `t` rounds it returns
//!   `d̃ = c/t`. Theorem 1 proves `d̃ ∈ (1±ε)d` w.h.p. on the 2-d torus.
//! * [`algorithm4`] — **Algorithm 4** (Appendix A): the
//!   independent-sampling variant with stationary/mobile halves, a
//!   deterministic drift pattern, and the `c mod t` correction for
//!   co-located starts (Theorem 32).
//! * [`baseline`] — the complete-graph / i.i.d. Bernoulli baseline of
//!   Section 1.1 against which "nearly matches independent sampling" is
//!   measured.
//! * [`theory`] — every topology's re-collision envelope `β(m)`, its sum
//!   `B(t)`, and the resulting accuracy predictions (Theorem 1, Lemma 19,
//!   Theorems 21/32, Lemmas 20/22/23/25).
//! * [`recollision`] — measurement APIs for re-collision curves and
//!   collision-count moments (Lemma 11, Corollaries 15/16), both
//!   Monte-Carlo and exact.
//! * [`frequency`] — Section 5.2: estimating the relative frequency
//!   `f_P = d_P/d` of a property (task group, enemy status, …).
//! * [`quorum`] — density-threshold detection (quorum sensing), the
//!   Section 6.2 use-case, built as an adaptive stopping rule on top of
//!   Algorithm 1.
//! * [`noise`] — Section 6.1's noisy collision detection (missed and
//!   spurious detections) with unbiasing corrections.
//! * [`local`] — Sections 2.1.1 / 6.1 future work, implemented:
//!   non-uniform (clustered) placement, exact local densities, and the
//!   local-vs-global accounting of what encounter rates estimate then.
//!
//! # Quickstart
//!
//! ```
//! use antdensity_core::algorithm1::Algorithm1;
//! use antdensity_graphs::Torus2d;
//!
//! // 65 agents (n = 64 others) on a 32x32 torus: d = 64/1024 = 0.0625
//! let run = Algorithm1::new(65, 512).run(&Torus2d::new(32), 42);
//! assert_eq!(run.estimates().len(), 65);
//! let mean = run.mean_estimate();
//! assert!((mean - run.true_density()).abs() < 0.05);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod algorithm1;
pub mod algorithm4;
pub mod baseline;
pub mod frequency;
pub mod local;
pub mod noise;
pub mod quorum;
pub mod recollision;
pub mod theory;

pub use algorithm1::{Algorithm1, DensityRun};
pub use algorithm4::Algorithm4;
pub use noise::CollisionNoise;
pub use quorum::SequentialQuorum;
pub use theory::TopologyClass;
