//! Measurement APIs for the paper's core technical quantities:
//! re-collision probability curves (Lemma 4 / Lemma 9 and the Section 4
//! analogues) and collision-count moments (Lemma 11, Corollaries 15/16).
//!
//! Each quantity comes in two flavours:
//!
//! * **exact** — computed from the walk-distribution evolution in
//!   [`antdensity_graphs::dist`] (no sampling noise; preferred for shape
//!   verification);
//! * **Monte-Carlo** — sampled with the simulation engine (validates that
//!   the engine agrees with the exact math, and scales to quantities with
//!   no closed form, like conditional-on-path moments).

use antdensity_graphs::{dist, NodeId, Topology};
use antdensity_stats::moments::CentralMoments;
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::{pairwise, parallel};

/// Exact re-collision probability at each lag `0..=t` for two walks
/// launched from the same node (Lemma 4's unconditional form).
pub fn exact_recollision_curve<T: Topology>(topo: &T, start: NodeId, t: u64) -> Vec<f64> {
    dist::recollision_series(topo, start, t)
}

/// Exact `max_v P[walk at v after m]` for `m = 0..=t` (Lemma 9's bound
/// target, which also upper-bounds the *conditional* re-collision
/// probability of Lemma 4 for every conditioning path).
pub fn exact_max_prob_curve<T: Topology>(topo: &T, start: NodeId, t: u64) -> Vec<f64> {
    dist::max_probability_series(topo, start, t)
}

/// Exact equalization (return) probability at each lag (Corollary 10).
pub fn exact_return_curve<T: Topology>(topo: &T, start: NodeId, t: u64) -> Vec<f64> {
    dist::return_probability_series(topo, start, t)
}

/// Monte-Carlo re-collision curve: fraction of `trials` walk pairs (both
/// from `start`) that share a node at each lag `0..=t`. Deterministic in
/// `(seed, trials)`; independent of `threads`.
pub fn mc_recollision_curve<T: Topology + Sync>(
    topo: &T,
    start: NodeId,
    t: u64,
    trials: u64,
    seed: u64,
    threads: usize,
) -> Vec<f64> {
    let seq = SeedSequence::new(seed);
    let per_trial = parallel::run_trials(trials, threads, seq, |_, rng| {
        pairwise::recollision_series(topo, start, t, rng)
    });
    let mut counts = vec![0u64; t as usize + 1];
    for series in &per_trial {
        for (m, &hit) in series.iter().enumerate() {
            if hit {
                counts[m] += 1;
            }
        }
    }
    counts
        .into_iter()
        .map(|c| c as f64 / trials as f64)
        .collect()
}

/// Expected number of equalizations of a `t`-step walk from `start`,
/// computed exactly: `Σ_{m=1..t} P[return at m]`.
pub fn expected_equalizations<T: Topology>(topo: &T, start: NodeId, t: u64) -> f64 {
    exact_return_curve(topo, start, t)[1..].iter().sum()
}

/// Central moments (orders `1..=max_order`, centered on the exact mean
/// `t/A`) of the pairwise collision count `c_j` — the object of
/// **Lemma 11**: `E[c̄ⱼᵏ] ≤ (t/A)·wᵏ·k!·logᵏ(2t)` on the 2-d torus.
pub fn pair_count_moments<T: Topology + Sync>(
    topo: &T,
    t: u64,
    max_order: u32,
    trials: u64,
    seed: u64,
    threads: usize,
) -> CentralMoments {
    let center = t as f64 / topo.num_nodes() as f64;
    let seq = SeedSequence::new(seed);
    let samples = parallel::run_trials(trials, threads, seq, |_, rng| {
        pairwise::pair_collision_count(topo, t, rng) as f64
    });
    let mut cm = CentralMoments::new(center, max_order);
    samples.iter().for_each(|&x| cm.push(x));
    cm
}

/// Central moments of the visit count of a `t`-step walk (uniform start)
/// to a fixed target node — **Corollary 15**'s variable, centered on its
/// exact mean `t/A`.
pub fn visit_count_moments<T: Topology + Sync>(
    topo: &T,
    target: NodeId,
    t: u64,
    max_order: u32,
    trials: u64,
    seed: u64,
    threads: usize,
) -> CentralMoments {
    let center = t as f64 / topo.num_nodes() as f64;
    let seq = SeedSequence::new(seed);
    let samples = parallel::run_trials(trials, threads, seq, |_, rng| {
        pairwise::visit_count(topo, target, t, rng) as f64
    });
    let mut cm = CentralMoments::new(center, max_order);
    samples.iter().for_each(|&x| cm.push(x));
    cm
}

/// Central moments of the equalization count of a `t`-step walk from
/// `start` — **Corollary 16**'s variable, centered on its exact mean
/// (computed by distribution evolution).
pub fn equalization_moments<T: Topology + Sync>(
    topo: &T,
    start: NodeId,
    t: u64,
    max_order: u32,
    trials: u64,
    seed: u64,
    threads: usize,
) -> CentralMoments {
    let center = expected_equalizations(topo, start, t);
    let seq = SeedSequence::new(seed);
    let samples = parallel::run_trials(trials, threads, seq, |_, rng| {
        pairwise::equalization_count(topo, start, t, rng) as f64
    });
    let mut cm = CentralMoments::new(center, max_order);
    samples.iter().for_each(|&x| cm.push(x));
    cm
}

/// The Lemma 11 moment *bound* with explicit constant `w`:
/// `(t/A)·wᵏ·k!·logᵏ(2t)`. Experiments fit `w` and check stability.
pub fn lemma11_bound(t: u64, a: u64, k: u32, w: f64) -> f64 {
    let log2t = (2.0 * t as f64).ln();
    let mut kfact = 1.0;
    for i in 1..=k as u64 {
        kfact *= i as f64;
    }
    (t as f64 / a as f64) * w.powi(k as i32) * kfact * log2t.powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CompleteGraph, Ring, Torus2d};

    #[test]
    fn exact_and_mc_recollision_agree() {
        let topo = Torus2d::new(8);
        let t = 12;
        let exact = exact_recollision_curve(&topo, 0, t);
        let mc = mc_recollision_curve(&topo, 0, t, 60_000, 1, 4);
        for m in 0..=t as usize {
            // 60k trials: 5-sigma band on a proportion is ~0.01
            assert!(
                (exact[m] - mc[m]).abs() < 0.012,
                "lag {m}: exact {} vs mc {}",
                exact[m],
                mc[m]
            );
        }
    }

    #[test]
    fn recollision_curve_respects_lemma4_shape() {
        // exact curve <= C * (1/(m+1) + 1/A) for a single modest C.
        let topo = Torus2d::new(32); // A = 1024
        let t = 128;
        let curve = exact_recollision_curve(&topo, 0, t);
        let a = 1024.0;
        for (m, &p) in curve.iter().enumerate() {
            let envelope = 1.0 / (m as f64 + 1.0) + 1.0 / a;
            assert!(
                p <= 4.0 * envelope,
                "lag {m}: p {p} exceeds 4x envelope {envelope}"
            );
        }
    }

    #[test]
    fn max_prob_dominates_recollision() {
        let topo = Torus2d::new(16);
        let rec = exact_recollision_curve(&topo, 0, 40);
        let max = exact_max_prob_curve(&topo, 0, 40);
        for m in 0..rec.len() {
            assert!(rec[m] <= max[m] + 1e-12);
        }
    }

    #[test]
    fn expected_equalizations_log_growth_on_torus() {
        // E[equalizations] = Theta(log t) on the 2-d torus (Cor. 10 sum).
        let topo = Torus2d::new(64);
        let e1 = expected_equalizations(&topo, 0, 64);
        let e2 = expected_equalizations(&topo, 0, 256);
        let e3 = expected_equalizations(&topo, 0, 1024);
        // log growth: equal increments per 4x
        let inc1 = e2 - e1;
        let inc2 = e3 - e2;
        assert!((inc1 - inc2).abs() < 0.15, "increments {inc1} vs {inc2}");
    }

    #[test]
    fn pair_count_first_moment_near_zero() {
        // centered at the true mean t/A, the first central moment ~ 0.
        let topo = Torus2d::new(8);
        let cm = pair_count_moments(&topo, 32, 4, 40_000, 2, 4);
        assert!(cm.moment(1).abs() < 0.02, "first moment {}", cm.moment(1));
        assert!(cm.moment(2) > 0.0);
    }

    #[test]
    fn pair_count_moments_bounded_by_lemma11_shape() {
        let topo = Torus2d::new(16); // A = 256
        let t = 64;
        let cm = pair_count_moments(&topo, t, 4, 60_000, 3, 4);
        // fit w from k = 2, then check k = 3, 4 hold with the same w (x4
        // slack for constants).
        let m2 = cm.abs_moment(2);
        let w = (m2 / lemma11_bound(t, 256, 2, 1.0)).sqrt().max(0.1);
        for k in 3..=4u32 {
            let bound = lemma11_bound(t, 256, k, w) * 8.0;
            assert!(
                cm.abs_moment(k) <= bound,
                "k = {k}: moment {} vs bound {bound} (w = {w})",
                cm.abs_moment(k)
            );
        }
    }

    #[test]
    fn visit_moments_on_complete_graph_are_binomial() {
        // On CompleteGraph visits to a fixed node are Binomial(t, 1/A):
        // variance = t * (1/A)(1 - 1/A).
        let topo = CompleteGraph::new(32);
        let t = 64;
        let cm = visit_count_moments(&topo, 5, t, 2, 60_000, 4, 4);
        let p = 1.0 / 32.0;
        let expected_var = t as f64 * p * (1.0 - p);
        assert!(
            (cm.moment(2) - expected_var).abs() < 0.1,
            "variance {} vs {expected_var}",
            cm.moment(2)
        );
    }

    #[test]
    fn equalization_moments_ring_larger_than_torus() {
        // Corollary 16 vs ring: sqrt(t) equalizations on the ring vs log t
        // on the torus — second moments reflect it.
        let ring = Ring::new(1024);
        let torus = Torus2d::new(32);
        let t = 256;
        let ring_cm = equalization_moments(&ring, 0, t, 2, 20_000, 5, 4);
        let torus_cm = equalization_moments(&torus, 0, t, 2, 20_000, 6, 4);
        assert!(
            ring_cm.moment(2) > 3.0 * torus_cm.moment(2),
            "ring var {} vs torus var {}",
            ring_cm.moment(2),
            torus_cm.moment(2)
        );
    }

    #[test]
    fn lemma11_bound_monotone_in_k_factorial() {
        let b2 = lemma11_bound(100, 1000, 2, 1.0);
        let b4 = lemma11_bound(100, 1000, 4, 1.0);
        assert!(b4 > b2);
    }

    #[test]
    fn mc_curve_deterministic_and_thread_independent() {
        let topo = Torus2d::new(8);
        let a = mc_recollision_curve(&topo, 3, 6, 500, 9, 1);
        let b = mc_recollision_curve(&topo, 3, 6, 500, 9, 4);
        assert_eq!(a, b);
    }
}
