//! Algorithm 1: random-walk-based density estimation.
//!
//! The paper's pseudocode, executed by every agent independently:
//!
//! ```text
//! c := 0
//! for r = 1, ..., t do
//!     step := rand{(0,1), (0,−1), (1,0), (−1,0)}
//!     position := position + step
//!     c := c + count(position)
//! end for
//! return d̃ = c / t
//! ```
//!
//! [`Algorithm1`] runs the full population synchronously (all agents both
//! walk and are counted — the paper's setting) and reports every agent's
//! estimate. Movement can be swapped for the Section 6.1 variants (lazy,
//! biased) and collision sensing can be made noisy; the defaults are the
//! paper's exact model.

use crate::noise::CollisionNoise;
use antdensity_engine::observer::{Alg1Observer, EncounterTallies, Observer, RoundEvents};
use antdensity_graphs::Topology;
use antdensity_stats::moments::SampleStats;
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::arena::SyncArena;
use antdensity_walks::movement::MovementModel;

/// Configuration/builder for an Algorithm 1 run.
///
/// `num_agents` is the paper's `n + 1`: the population size including the
/// estimating agent, so the target density is `d = n/A =
/// (num_agents − 1)/A` (Section 2.1's convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Algorithm1 {
    num_agents: usize,
    rounds: u64,
    movement: MovementModel,
    noise: Option<CollisionNoise>,
}

impl Algorithm1 {
    /// Creates a run configuration with the paper's defaults (pure random
    /// walk, exact collision sensing).
    ///
    /// # Panics
    ///
    /// Panics if `num_agents == 0` or `rounds == 0`.
    pub fn new(num_agents: usize, rounds: u64) -> Self {
        assert!(num_agents > 0, "need at least one agent");
        assert!(rounds > 0, "need at least one round");
        Self {
            num_agents,
            rounds,
            movement: MovementModel::Pure,
            noise: None,
        }
    }

    /// Replaces the movement model (Section 6.1 robustness studies).
    pub fn with_movement(mut self, movement: MovementModel) -> Self {
        self.movement = movement;
        self
    }

    /// Adds collision-detection noise (Section 6.1).
    pub fn with_noise(mut self, noise: CollisionNoise) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Number of agents `n + 1`.
    pub fn num_agents(&self) -> usize {
        self.num_agents
    }

    /// Number of rounds `t`.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Executes the algorithm on `topo` with a master `seed`; every agent
    /// starts at an independent uniform node.
    pub fn run<T: Topology>(&self, topo: &T, seed: u64) -> DensityRun {
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut arena = SyncArena::new(topo, self.num_agents);
        arena.set_movement_all(&self.movement);
        arena.place_uniform(&mut rng);
        self.run_arena(&mut arena, &mut rng)
    }

    /// Executes on explicit starting positions (used by tests and by the
    /// adversarial-placement experiments).
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != num_agents` or a position is out of
    /// range.
    pub fn run_from<T: Topology>(
        &self,
        topo: &T,
        positions: &[antdensity_graphs::NodeId],
        seed: u64,
    ) -> DensityRun {
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut arena = SyncArena::new(topo, self.num_agents);
        arena.set_movement_all(&self.movement);
        arena.place_at(positions);
        self.run_arena(&mut arena, &mut rng)
    }

    /// The synchronous round loop: the arena emits each round's
    /// encounter events once and the shared observer tallies accumulate
    /// them — the estimate math lives in
    /// [`antdensity_engine::observer`], not here.
    fn run_arena<T: Topology>(
        &self,
        arena: &mut SyncArena<&T>,
        rng: &mut rand::rngs::SmallRng,
    ) -> DensityRun {
        let n_agents = self.num_agents;
        let mut tallies = EncounterTallies::new(n_agents, false);
        let mut raw = vec![0u32; n_agents];
        let mut seen = vec![0u32; n_agents];
        for round in 1..=self.rounds {
            arena.step_round(rng);
            for (a, slot) in raw.iter_mut().enumerate() {
                *slot = arena.count(a);
            }
            match &self.noise {
                None => seen.copy_from_slice(&raw),
                Some(noise) => {
                    for (slot, &c) in seen.iter_mut().zip(&raw) {
                        *slot = noise.observe(c, rng);
                    }
                }
            }
            tallies.record(&RoundEvents {
                round,
                counts: &seen,
                raw_counts: &raw,
                group_counts: None,
            });
        }
        let outcome = Alg1Observer.snapshot(&tallies, arena.density());
        DensityRun {
            estimates: outcome.estimates,
            collision_counts: outcome.collision_counts,
            rounds: outcome.rounds,
            true_density: outcome.true_density,
        }
    }
}

/// The result of a density-estimation run: one estimate per agent.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityRun {
    estimates: Vec<f64>,
    collision_counts: Vec<u64>,
    rounds: u64,
    true_density: f64,
}

impl DensityRun {
    /// Assembles a run from raw parts (used by Algorithm 4 and netsize).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `rounds == 0`.
    pub fn from_parts(
        estimates: Vec<f64>,
        collision_counts: Vec<u64>,
        rounds: u64,
        true_density: f64,
    ) -> Self {
        assert_eq!(
            estimates.len(),
            collision_counts.len(),
            "estimates and counts must align"
        );
        assert!(rounds > 0, "rounds must be positive");
        Self {
            estimates,
            collision_counts,
            rounds,
            true_density,
        }
    }

    /// Per-agent density estimates `d̃`.
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// Per-agent raw collision counts `c`.
    pub fn collision_counts(&self) -> &[u64] {
        &self.collision_counts
    }

    /// Number of rounds `t` executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The true density `d = n/A` of the run.
    pub fn true_density(&self) -> f64 {
        self.true_density
    }

    /// Mean of the per-agent estimates.
    pub fn mean_estimate(&self) -> f64 {
        self.estimates.iter().sum::<f64>() / self.estimates.len() as f64
    }

    /// Per-agent relative errors `|d̃ − d| / d`.
    ///
    /// # Panics
    ///
    /// Panics if the true density is zero (a lone agent, which the paper's
    /// convention maps to estimate 0 — relative error is then undefined).
    pub fn relative_errors(&self) -> Vec<f64> {
        assert!(
            self.true_density > 0.0,
            "relative error undefined at zero density"
        );
        self.estimates
            .iter()
            .map(|e| (e - self.true_density).abs() / self.true_density)
            .collect()
    }

    /// Fraction of agents whose estimate lies in `(1±eps)·d` — the
    /// quantity Theorem 1 lower-bounds by `1 − δ`.
    pub fn fraction_within(&self, eps: f64) -> f64 {
        if self.true_density == 0.0 {
            return self.estimates.iter().filter(|&&e| e == 0.0).count() as f64
                / self.estimates.len() as f64;
        }
        let lo = (1.0 - eps) * self.true_density;
        let hi = (1.0 + eps) * self.true_density;
        self.estimates
            .iter()
            .filter(|&&e| e >= lo && e <= hi)
            .count() as f64
            / self.estimates.len() as f64
    }

    /// Summary statistics of the per-agent estimates.
    pub fn estimate_stats(&self) -> SampleStats {
        SampleStats::from_slice(&self.estimates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CompleteGraph, Ring, Torus2d};

    #[test]
    fn mean_estimate_is_unbiased_on_torus() {
        // Lemma 2 / Corollary 3: E[d~] = d. Average over agents and seeds.
        let topo = Torus2d::new(16); // A = 256
        let cfg = Algorithm1::new(33, 128); // d = 32/256 = 0.125
        let mut grand = 0.0;
        let runs = 20;
        for seed in 0..runs {
            grand += cfg.run(&topo, seed).mean_estimate();
        }
        let mean = grand / runs as f64;
        assert!(
            (mean - 0.125).abs() < 0.01,
            "grand mean {mean} should be near 0.125"
        );
    }

    #[test]
    fn single_agent_estimates_zero() {
        // Paper Section 2.1: with one agent, d = n/A = 0 and the agent
        // must return 0 (it never collides).
        let topo = Torus2d::new(8);
        let run = Algorithm1::new(1, 64).run(&topo, 1);
        assert_eq!(run.true_density(), 0.0);
        assert_eq!(run.estimates(), &[0.0]);
        assert_eq!(run.fraction_within(0.5), 1.0);
    }

    #[test]
    fn estimates_concentrate_with_more_rounds() {
        let topo = Torus2d::new(16);
        let short = Algorithm1::new(65, 16).run(&topo, 7);
        let long = Algorithm1::new(65, 1024).run(&topo, 7);
        let err = |r: &DensityRun| {
            let e = r.relative_errors();
            e.iter().sum::<f64>() / e.len() as f64
        };
        assert!(
            err(&long) < err(&short),
            "longer runs must be more accurate: {} vs {}",
            err(&long),
            err(&short)
        );
    }

    #[test]
    fn complete_graph_matches_density_quickly() {
        // i.i.d. sampling: 512 rounds at d = 0.125 is plenty.
        let topo = CompleteGraph::new(256);
        let run = Algorithm1::new(33, 512).run(&topo, 3);
        assert!((run.mean_estimate() - run.true_density()).abs() < 0.02);
        assert!(run.fraction_within(0.5) > 0.95);
    }

    #[test]
    fn collision_counts_match_estimates() {
        let topo = Torus2d::new(8);
        let run = Algorithm1::new(10, 50).run(&topo, 9);
        for (c, e) in run.collision_counts().iter().zip(run.estimates()) {
            assert!((*c as f64 / 50.0 - e).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_estimates_are_noisier_than_torus() {
        // Section 4.2: the ring's poor local mixing inflates the error.
        // Match A, d, t across the two topologies and compare mean errors
        // over several seeds.
        let a = 1024u64;
        let agents = 129; // d = 128/1024 = 0.125
        let rounds = 256;
        let ring = Ring::new(a);
        let torus = Torus2d::new(32);
        let mut ring_err = 0.0;
        let mut torus_err = 0.0;
        for seed in 0..8 {
            let rr = Algorithm1::new(agents, rounds).run(&ring, seed);
            let tr = Algorithm1::new(agents, rounds).run(&torus, seed);
            ring_err += rr.relative_errors().iter().sum::<f64>() / agents as f64;
            torus_err += tr.relative_errors().iter().sum::<f64>() / agents as f64;
        }
        assert!(
            ring_err > torus_err,
            "ring error {ring_err} should exceed torus error {torus_err}"
        );
    }

    #[test]
    fn run_is_seed_deterministic() {
        let topo = Torus2d::new(8);
        let cfg = Algorithm1::new(12, 40);
        assert_eq!(cfg.run(&topo, 5), cfg.run(&topo, 5));
        assert_ne!(cfg.run(&topo, 5), cfg.run(&topo, 6));
    }

    #[test]
    fn run_from_fixed_positions() {
        let topo = Torus2d::new(4);
        // all agents stacked on one node: every agent counts the other two
        // somewhere near start
        let run = Algorithm1::new(3, 10).run_from(&topo, &[5, 5, 5], 1);
        assert_eq!(run.estimates().len(), 3);
    }

    #[test]
    fn lazy_movement_still_unbiased() {
        let topo = Torus2d::new(16);
        let cfg = Algorithm1::new(33, 256).with_movement(MovementModel::lazy(0.2));
        let mut grand = 0.0;
        for seed in 0..10 {
            grand += cfg.run(&topo, seed).mean_estimate();
        }
        let mean = grand / 10.0;
        assert!((mean - 0.125).abs() < 0.015, "mean {mean}");
    }

    #[test]
    fn fraction_within_boundaries() {
        let run = DensityRun::from_parts(vec![0.9, 1.0, 1.1, 2.0], vec![9, 10, 11, 20], 10, 1.0);
        assert_eq!(run.fraction_within(0.1), 0.75);
        assert_eq!(run.fraction_within(1.0), 1.0);
        assert_eq!(run.fraction_within(0.05), 0.25);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = Algorithm1::new(5, 0);
    }

    #[test]
    #[should_panic(expected = "relative error undefined")]
    fn relative_error_at_zero_density_panics() {
        let topo = Torus2d::new(4);
        let run = Algorithm1::new(1, 4).run(&topo, 0);
        let _ = run.relative_errors();
    }
}
