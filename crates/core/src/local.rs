//! Local density estimation and non-uniform placement — the paper's
//! Section 2.1.1 / Section 6.1 future-work directions, implemented.
//!
//! The paper's global guarantee leans on uniform initial placement:
//! "when agents are uniformly distributed, the local density in a small
//! radius around their starting position reflects the global density".
//! Dropping that assumption raises two questions the paper poses:
//!
//! 1. **How does global estimation degrade** when agents are clustered?
//!    ([`ClusteredPlacement`] generates the adversarial configurations,
//!    parameterised by how far they are from uniform.)
//! 2. **What does an agent's encounter rate estimate then?** A `t`-round
//!    walk stays within radius ~√t of its start, so the encounter rate
//!    tracks the *local* density there. [`LocalDensityRun`] records, for
//!    every agent, its estimate alongside the exact local density around
//!    its starting position ([`local_density`]), making the
//!    local-vs-global question quantitative.

use antdensity_graphs::{NodeId, Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::arena::SyncArena;
use rand::Rng;
use rand::RngCore;

/// A two-population placement: a fraction of agents confined to a small
/// square patch, the rest uniform — the paper's "many agents placed in a
/// very small portion of the torus" scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredPlacement {
    /// Fraction of agents inside the cluster patch, in `[0, 1]`.
    pub cluster_fraction: f64,
    /// Side length of the square cluster patch.
    pub cluster_side: u64,
}

impl ClusteredPlacement {
    /// Creates a placement spec.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_fraction ∉ [0, 1]` or `cluster_side == 0`.
    pub fn new(cluster_fraction: f64, cluster_side: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cluster_fraction),
            "cluster fraction must lie in [0,1]"
        );
        assert!(cluster_side > 0, "cluster patch needs positive side");
        Self {
            cluster_fraction,
            cluster_side,
        }
    }

    /// Uniform placement (distance zero from the paper's assumption).
    pub fn uniform() -> Self {
        Self {
            cluster_fraction: 0.0,
            cluster_side: 1,
        }
    }

    /// Samples starting positions for `n` agents on `torus`. The cluster
    /// patch sits at the torus origin corner; clustered agents pick
    /// uniform cells *inside* it, the rest uniform over the whole torus.
    ///
    /// # Panics
    ///
    /// Panics if the patch does not fit on the torus.
    pub fn sample(&self, torus: &Torus2d, n: usize, rng: &mut dyn RngCore) -> Vec<NodeId> {
        assert!(
            self.cluster_side <= torus.side(),
            "cluster patch larger than the torus"
        );
        let clustered = (n as f64 * self.cluster_fraction).round() as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if i < clustered {
                let x = rng.gen_range(0..self.cluster_side);
                let y = rng.gen_range(0..self.cluster_side);
                out.push(torus.node(x, y));
            } else {
                out.push(torus.uniform_node(rng));
            }
        }
        out
    }

    /// Total-variation distance between this placement's single-agent
    /// start distribution and uniform — the paper's suggested parameter
    /// ("bounds parameterised by the distance from this distribution to
    /// the uniform distribution").
    pub fn tv_from_uniform(&self, torus: &Torus2d) -> f64 {
        let a = torus.num_nodes() as f64;
        let patch = (self.cluster_side * self.cluster_side) as f64;
        let f = self.cluster_fraction;
        // inside the patch: mass f/patch + (1-f)/A per cell; outside:
        // (1-f)/A. TV = patch * max(0, inside - 1/A)... compute directly:
        let inside = f / patch + (1.0 - f) / a;
        let outside = (1.0 - f) / a;
        0.5 * (patch * (inside - 1.0 / a).abs() + (a - patch) * (1.0 / a - outside).abs())
    }
}

/// Exact local density around `center`: the number of *other* agents
/// within L1 torus distance `radius` of `center`, divided by the number
/// of cells in that ball.
///
/// # Panics
///
/// Panics if `center` is out of range.
pub fn local_density(
    torus: &Torus2d,
    positions: &[NodeId],
    center: NodeId,
    exclude: Option<usize>,
    radius: u64,
) -> f64 {
    assert!(center < torus.num_nodes(), "center out of range");
    let ball = ball_size(torus, radius) as f64;
    let inside = positions
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != exclude)
        .filter(|(_, &p)| torus.torus_distance(center, p) <= radius)
        .count() as f64;
    inside / ball
}

/// Number of cells within L1 torus distance `radius` of a point.
pub fn ball_size(torus: &Torus2d, radius: u64) -> u64 {
    // Exact count on the torus (handles wrap-around overlap).
    let s = torus.side();
    let mut count = 0u64;
    let r = radius.min(s) as i64;
    let half = (s / 2) as i64;
    for dx in -half..=(s as i64 - 1 - half) {
        for dy in -half..=(s as i64 - 1 - half) {
            // minimal displacement representatives cover each cell once
            if dx.abs() + dy.abs() <= r {
                count += 1;
            }
        }
    }
    count
}

/// The outcome of a density-estimation run under arbitrary placement,
/// with per-agent local ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDensityRun {
    /// Per-agent encounter-rate estimates `d̃`.
    pub estimates: Vec<f64>,
    /// Per-agent local density around the agent's *start*, radius
    /// `local_radius`.
    pub local_truths: Vec<f64>,
    /// The global density `d = n/A`.
    pub global_truth: f64,
    /// The radius used for local ground truth.
    pub local_radius: u64,
    /// Rounds walked.
    pub rounds: u64,
}

impl LocalDensityRun {
    /// Mean absolute error of the estimates against the *global* density.
    pub fn mean_error_vs_global(&self) -> f64 {
        self.estimates
            .iter()
            .map(|e| (e - self.global_truth).abs())
            .sum::<f64>()
            / self.estimates.len() as f64
    }

    /// Mean absolute error of the estimates against each agent's *local*
    /// density.
    pub fn mean_error_vs_local(&self) -> f64 {
        self.estimates
            .iter()
            .zip(&self.local_truths)
            .map(|(e, l)| (e - l).abs())
            .sum::<f64>()
            / self.estimates.len() as f64
    }

    /// Pearson correlation between estimates and local truths — positive
    /// and large when encounter rates track local densities.
    pub fn correlation_with_local(&self) -> f64 {
        correlation(&self.estimates, &self.local_truths)
    }
}

fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Runs Algorithm 1 from explicit starting positions and records local
/// ground truth at radius `local_radius` around each start.
///
/// # Panics
///
/// Panics if `positions` is empty or `rounds == 0`.
pub fn run_with_placement(
    torus: &Torus2d,
    positions: &[NodeId],
    rounds: u64,
    local_radius: u64,
    seed: u64,
) -> LocalDensityRun {
    assert!(!positions.is_empty(), "need at least one agent");
    assert!(rounds > 0, "need at least one round");
    let n = positions.len();
    let local_truths: Vec<f64> = (0..n)
        .map(|i| local_density(torus, positions, positions[i], Some(i), local_radius))
        .collect();
    let seq = SeedSequence::new(seed);
    let mut rng = seq.rng(0);
    let mut arena = SyncArena::new(torus, n);
    arena.place_at(positions);
    let mut counts = vec![0u64; n];
    for _ in 0..rounds {
        arena.step_round(&mut rng);
        for (a, c) in counts.iter_mut().enumerate() {
            *c += arena.count(a) as u64;
        }
    }
    LocalDensityRun {
        estimates: counts.iter().map(|&c| c as f64 / rounds as f64).collect(),
        local_truths,
        global_truth: (n as f64 - 1.0) / torus.num_nodes() as f64,
        local_radius,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ball_size_small_radii() {
        let t = Torus2d::new(32);
        assert_eq!(ball_size(&t, 0), 1);
        assert_eq!(ball_size(&t, 1), 5);
        assert_eq!(ball_size(&t, 2), 13); // 1 + 4 + 8
    }

    #[test]
    fn ball_size_saturates_at_torus() {
        let t = Torus2d::new(8);
        assert_eq!(ball_size(&t, 100), 64);
    }

    #[test]
    fn uniform_placement_has_zero_tv() {
        let t = Torus2d::new(32);
        let p = ClusteredPlacement::uniform();
        assert!(p.tv_from_uniform(&t) < 1e-12);
    }

    #[test]
    fn full_clustering_has_large_tv() {
        let t = Torus2d::new(32);
        let p = ClusteredPlacement::new(1.0, 4);
        // all mass in 16 of 1024 cells: TV = 1 - 16/1024
        assert!((p.tv_from_uniform(&t) - (1.0 - 16.0 / 1024.0)).abs() < 1e-9);
    }

    #[test]
    fn tv_monotone_in_cluster_fraction() {
        let t = Torus2d::new(32);
        let tv = |f: f64| ClusteredPlacement::new(f, 4).tv_from_uniform(&t);
        assert!(tv(0.2) < tv(0.5));
        assert!(tv(0.5) < tv(0.9));
    }

    #[test]
    fn sample_respects_cluster_patch() {
        let t = Torus2d::new(32);
        let mut rng = SmallRng::seed_from_u64(1);
        let p = ClusteredPlacement::new(0.5, 4);
        let pos = p.sample(&t, 100, &mut rng);
        assert_eq!(pos.len(), 100);
        // first half in the patch
        for &v in &pos[..50] {
            let (x, y) = t.coord(v);
            assert!(x < 4 && y < 4, "clustered agent escaped the patch");
        }
    }

    #[test]
    fn local_density_hand_case() {
        let t = Torus2d::new(16);
        // three agents: two adjacent to center, one far away
        let center = t.node(8, 8);
        let positions = vec![center, t.node(8, 9), t.node(0, 0)];
        let d = local_density(&t, &positions, center, Some(0), 1);
        // ball of radius 1 has 5 cells; 1 other agent inside
        assert!((d - 1.0 / 5.0).abs() < 1e-12);
        // not excluding self counts the center agent too
        let d_all = local_density(&t, &positions, center, None, 1);
        assert!((d_all - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn clustered_agents_see_higher_local_density() {
        let t = Torus2d::new(64);
        let mut rng = SmallRng::seed_from_u64(2);
        let p = ClusteredPlacement::new(0.5, 6);
        let pos = p.sample(&t, 200, &mut rng);
        let run = run_with_placement(&t, &pos, 64, 8, 3);
        // clustered agents (first 100) have much larger local truth
        let in_mean: f64 = run.local_truths[..100].iter().sum::<f64>() / 100.0;
        let out_mean: f64 = run.local_truths[100..].iter().sum::<f64>() / 100.0;
        assert!(
            in_mean > 5.0 * out_mean,
            "cluster local density {in_mean} vs outside {out_mean}"
        );
    }

    #[test]
    fn estimates_track_local_better_than_global_under_clustering() {
        // The Section 2.1.1 story, quantified: with heavy clustering and a
        // short horizon, encounter rates estimate LOCAL density.
        let t = Torus2d::new(64);
        let mut rng = SmallRng::seed_from_u64(4);
        let p = ClusteredPlacement::new(0.6, 6);
        let pos = p.sample(&t, 300, &mut rng);
        let run = run_with_placement(&t, &pos, 48, 10, 5);
        assert!(
            run.mean_error_vs_local() < run.mean_error_vs_global(),
            "local error {} should beat global error {}",
            run.mean_error_vs_local(),
            run.mean_error_vs_global()
        );
        assert!(
            run.correlation_with_local() > 0.5,
            "estimates should correlate with local density: r = {}",
            run.correlation_with_local()
        );
    }

    #[test]
    fn uniform_placement_recovers_global_estimation() {
        let t = Torus2d::new(32);
        let mut rng = SmallRng::seed_from_u64(6);
        let pos = ClusteredPlacement::uniform().sample(&t, 129, &mut rng);
        let run = run_with_placement(&t, &pos, 1024, 4, 7);
        let mean_est = run.estimates.iter().sum::<f64>() / run.estimates.len() as f64;
        assert!(
            (mean_est - run.global_truth).abs() / run.global_truth < 0.15,
            "uniform placement: mean {mean_est} vs global {}",
            run.global_truth
        );
    }

    #[test]
    fn correlation_edge_cases() {
        assert_eq!(correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        let xs = [1.0, 2.0, 3.0];
        assert!((correlation(&xs, &xs) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cluster patch larger")]
    fn oversized_patch_rejected() {
        let t = Torus2d::new(4);
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = ClusteredPlacement::new(0.5, 8).sample(&t, 10, &mut rng);
    }
}
