//! Property-based tests for the core estimators.

use antdensity_core::algorithm1::{Algorithm1, DensityRun};
use antdensity_core::algorithm4::Algorithm4;
use antdensity_core::noise::{sample_binomial, sample_poisson, CollisionNoise};
use antdensity_core::theory::TopologyClass;
use antdensity_graphs::{Topology, Torus2d};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn algorithm1_output_invariants(
        side in 4u64..12,
        agents in 2usize..24,
        rounds in 1u64..64,
        seed in any::<u64>(),
    ) {
        let torus = Torus2d::new(side);
        let run = Algorithm1::new(agents, rounds).run(&torus, seed);
        prop_assert_eq!(run.estimates().len(), agents);
        // estimate = count / t exactly
        for (e, &c) in run.estimates().iter().zip(run.collision_counts()) {
            prop_assert!((e - c as f64 / rounds as f64).abs() < 1e-12);
            prop_assert!(*e >= 0.0);
        }
        // density convention
        let d = (agents as f64 - 1.0) / torus.num_nodes() as f64;
        prop_assert!((run.true_density() - d).abs() < 1e-12);
        // total collisions even (each collision counted by both parties
        // every round it persists)
        let total: u64 = run.collision_counts().iter().sum();
        prop_assert_eq!(total % 2, 0);
    }

    #[test]
    fn algorithm1_deterministic(seed in any::<u64>()) {
        let torus = Torus2d::new(8);
        let a = Algorithm1::new(6, 20).run(&torus, seed);
        let b = Algorithm1::new(6, 20).run(&torus, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn algorithm4_estimates_in_range(
        agents in 1usize..30,
        rounds in 1u64..15,
        seed in any::<u64>(),
    ) {
        let torus = Torus2d::new(16);
        let run = Algorithm4::new(agents, rounds).run(&torus, seed);
        for e in run.estimates() {
            // d~ = 2 (c mod t) / t is in [0, 2)
            prop_assert!(*e >= 0.0 && *e < 2.0);
        }
    }

    #[test]
    fn fraction_within_is_monotone_in_eps(
        estimates in prop::collection::vec(0.0..2.0f64, 1..50),
        eps1 in 0.01..1.0f64,
        eps2 in 0.01..1.0f64,
    ) {
        let counts = vec![0u64; estimates.len()];
        let run = DensityRun::from_parts(estimates, counts, 10, 1.0);
        let (lo, hi) = if eps1 <= eps2 { (eps1, eps2) } else { (eps2, eps1) };
        prop_assert!(run.fraction_within(lo) <= run.fraction_within(hi) + 1e-12);
    }

    #[test]
    fn noise_observation_bounded(
        true_count in 0u32..50,
        p in 0.01..=1.0f64,
        s in 0.0..2.0f64,
        seed in any::<u64>(),
    ) {
        let noise = CollisionNoise::new(p, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        let seen = noise.observe(true_count, &mut rng);
        // detections cannot exceed truth unless spurious events exist
        if s == 0.0 {
            prop_assert!(seen <= true_count);
        }
        // correction is non-negative and inverts cleanly at p = 1, s = 0
        if p == 1.0 && s == 0.0 {
            prop_assert_eq!(seen, true_count);
        }
        prop_assert!(noise.correct(seen as f64) >= 0.0);
    }

    #[test]
    fn binomial_sample_in_support(n in 0u32..100, p in 0.0..=1.0f64, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = sample_binomial(n, p, &mut rng);
        prop_assert!(k <= n);
    }

    #[test]
    fn poisson_sample_finite(lambda in 0.0..10.0f64, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = sample_poisson(lambda, &mut rng);
        // crude sanity: tail beyond lambda + 60 is essentially impossible
        prop_assert!((k as f64) < lambda + 60.0);
    }

    #[test]
    fn beta_is_decreasing_and_floored(m1 in 0u64..500, m2 in 0u64..500) {
        let classes = [
            TopologyClass::Torus2d { nodes: 4096 },
            TopologyClass::Ring { nodes: 4096 },
            TopologyClass::TorusKd { dims: 3, nodes: 4096 },
            TopologyClass::Expander { lambda: 0.7, nodes: 4096 },
            TopologyClass::Hypercube { dims: 12 },
        ];
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        for c in classes {
            prop_assert!(c.beta(lo) >= c.beta(hi) - 1e-12, "{c:?}");
            prop_assert!(c.beta(hi) > 0.0);
        }
    }

    #[test]
    fn b_sum_is_monotone_in_t(t1 in 1u64..2000, t2 in 1u64..2000) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let c = TopologyClass::Torus2d { nodes: 1 << 20 };
        prop_assert!(c.b_sum(hi) >= c.b_sum(lo) - 1e-12);
    }

    #[test]
    fn epsilon_decreasing_in_density(
        d1 in 0.01..0.5f64,
        d2 in 0.01..0.5f64,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let c = TopologyClass::Torus2d { nodes: 1 << 20 };
        // more agents => easier estimation at the same horizon
        prop_assert!(c.epsilon(1024, hi, 0.1) <= c.epsilon(1024, lo, 0.1) + 1e-12);
    }
}
