//! Concurrency contract of the telemetry registry: counter snapshots
//! are monotone non-decreasing while writer threads race, every
//! increment lands exactly once, and histogram records never lose a
//! bucket entry.
//!
//! These are the properties the sweep progress line and the metrics
//! snapshot rely on — a reader interleaved with writers may see a
//! *stale* value, never a *regressing* or *inflated* one.

use antdensity_telemetry as telemetry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn counter_snapshots_are_monotone_under_concurrent_writers(
        writers in 2usize..5,
        per_writer in 100u64..2_000,
    ) {
        telemetry::set_enabled(true);
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                std::thread::spawn(move || {
                    // Two shared counters plus a histogram, hammered
                    // from every writer.
                    let a = telemetry::counter("test.mono.a");
                    let b = telemetry::counter("test.mono.b");
                    let h = telemetry::duration_histogram("test.mono.h");
                    for i in 0..per_writer {
                        a.add(1);
                        b.add(2);
                        h.record_ns(1 + (w as u64) * 1000 + i);
                    }
                })
            })
            .collect();

        // Reader: successive snapshots must never go backwards.
        let mut last_a = 0u64;
        let mut last_b = 0u64;
        let mut last_h = 0u64;
        for _ in 0..50 {
            let snap = telemetry::snapshot();
            let a = snap.counter("test.mono.a");
            let b = snap.counter("test.mono.b");
            let h = snap.histogram("test.mono.h").map_or(0, |h| {
                // Bucket sums are monotone too: each bucket cell is
                // only ever incremented.
                h.buckets.iter().sum::<u64>()
            });
            prop_assert!(a >= last_a, "counter a regressed: {a} < {last_a}");
            prop_assert!(b >= last_b, "counter b regressed: {b} < {last_b}");
            prop_assert!(h >= last_h, "histogram bucket sum regressed: {h} < {last_h}");
            last_a = a;
            last_b = b;
            last_h = h;
        }
        for j in handles {
            j.join().unwrap();
        }

        // Quiescent totals: nothing lost, nothing double-counted.
        // Counters are process-cumulative across proptest cases, so
        // check lower bounds plus the histogram's internal identity.
        let snap = telemetry::snapshot();
        let expect = (writers as u64) * per_writer;
        let a = snap.counter("test.mono.a");
        let b = snap.counter("test.mono.b");
        prop_assert!(a >= expect, "a = {a}, case delta {expect}");
        prop_assert!(b >= 2 * expect, "b = {b}, case delta {}", 2 * expect);
        prop_assert!(a >= last_a && b >= last_b);
        prop_assert_eq!(b, 2 * a, "b tracks a two-for-one across all cases");
        let h = snap.histogram("test.mono.h").unwrap();
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }
}

#[test]
fn quiescent_totals_are_exact() {
    telemetry::set_enabled(true);
    let writers = 4usize;
    let per_writer = 10_000u64;
    let before = telemetry::snapshot().counter("test.exact.total");
    let handles: Vec<_> = (0..writers)
        .map(|_| {
            std::thread::spawn(move || {
                let c = telemetry::counter("test.exact.total");
                for _ in 0..per_writer {
                    c.incr();
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let after = telemetry::snapshot().counter("test.exact.total");
    assert_eq!(after - before, writers as u64 * per_writer);
}
