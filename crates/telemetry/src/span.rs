//! RAII span timers.
//!
//! A [`SpanMetric`] is declared once per instrumentation site as a
//! `static`; [`SpanMetric::start`] returns a [`Span`] guard that, on
//! drop, records the elapsed nanoseconds into the same-named duration
//! histogram and — when tracing is active — pushes a complete
//! (`"ph": "X"`) Chrome trace event on the calling thread's lane.
//!
//! When telemetry is disabled `start` costs one relaxed load and the
//! guard is inert (no `Instant::now`, no drop work).

use crate::registry::{duration_histogram, DurationHistogram};
use crate::trace;
use std::sync::OnceLock;
use std::time::Instant;

/// A named span declared at an instrumentation site.
#[derive(Debug)]
pub struct SpanMetric {
    name: &'static str,
    histo: OnceLock<DurationHistogram>,
}

impl SpanMetric {
    /// Creates the (unresolved) metric; `const` so it can live in a
    /// `static`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            histo: OnceLock::new(),
        }
    }

    /// The metric's name, as it appears in snapshots and traces.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn histogram(&self) -> DurationHistogram {
        *self.histo.get_or_init(|| duration_histogram(self.name))
    }

    /// Starts a timed span. Inert (one relaxed load, no clock read)
    /// when telemetry is disabled.
    #[inline]
    pub fn start(&'static self) -> Span {
        if crate::enabled() {
            Span {
                live: Some(LiveSpan {
                    metric: self,
                    start: Instant::now(),
                    args: Vec::new(),
                }),
            }
        } else {
            Span { live: None }
        }
    }

    /// Records an externally measured duration into this span's
    /// histogram only — no trace event even when tracing is active.
    /// For high-frequency metrics (e.g. pool queue wait) where a trace
    /// event per record would swamp the viewer. No-op when telemetry
    /// is disabled.
    pub fn record_duration_ns(&'static self, ns: u64) {
        if crate::enabled() {
            self.histogram().record_ns(ns);
        }
    }

    /// Records an externally measured interval: `dur_ns` into the
    /// histogram and, when tracing, a trace event laid `offset_ns`
    /// after `anchor` with the given viewer arguments. Used for
    /// accumulated sub-phase totals (e.g. RNG-draw vs `apply_moves`
    /// time within one round) that are not single contiguous
    /// intervals, and for spans whose arguments are only known at the
    /// end. No-op when telemetry is disabled.
    pub fn record_interval_at(
        &'static self,
        anchor: Instant,
        offset_ns: u64,
        dur_ns: u64,
        args: &[(&'static str, f64)],
    ) {
        if !crate::enabled() {
            return;
        }
        self.histogram().record_ns(dur_ns);
        if trace::tracing() {
            trace::push_event(self.name, anchor, offset_ns, dur_ns, args);
        }
    }
}

#[derive(Debug)]
struct LiveSpan {
    metric: &'static SpanMetric,
    start: Instant,
    args: Vec<(&'static str, f64)>,
}

/// The RAII guard returned by [`SpanMetric::start`].
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    live: Option<LiveSpan>,
}

impl Span {
    /// Attaches a numeric argument shown in the trace viewer (ignored
    /// by the histogram). No-op on an inert span.
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if let Some(live) = &mut self.live {
            live.args.push((key, value));
        }
    }

    /// The span's start instant, if it is live (telemetry enabled).
    pub fn start_instant(&self) -> Option<Instant> {
        self.live.as_ref().map(|l| l.start)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let ns = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        live.metric.histogram().record_ns(ns);
        if trace::tracing() {
            trace::push_event(live.metric.name, live.start, 0, ns, &live.args);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let _g = crate::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        static SPAN: SpanMetric = SpanMetric::new("test.span.inert");
        {
            let mut s = SPAN.start();
            s.arg("ignored", 1.0);
            assert!(s.start_instant().is_none());
        }
        let snap = crate::snapshot();
        // Either never registered, or registered with zero records.
        if let Some(h) = snap.histogram("test.span.inert") {
            assert_eq!(h.count, 0);
        }
    }

    #[test]
    fn accumulated_record_feeds_histogram() {
        let _g = crate::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        static SPAN: SpanMetric = SpanMetric::new("test.span.accum");
        SPAN.record_duration_ns(1234);
        SPAN.record_interval_at(Instant::now(), 10, 56, &[("k", 1.0)]);
        let snap = crate::snapshot();
        let h = snap.histogram("test.span.accum").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_ns, 1234 + 56);
        crate::set_enabled(false);
    }
}
