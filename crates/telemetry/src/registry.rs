//! The process-global metric registry: named counters and log-bucketed
//! duration histograms.
//!
//! Registration (first use of a name) takes a `Mutex` over a `BTreeMap`
//! and leaks the metric's storage, handing back `&'static` atomics;
//! everything after that — increments, histogram records, reads — is
//! lock-free. [`snapshot`] re-takes the mutex to walk the maps, so
//! snapshots are cheap but not free; they are meant for end-of-run
//! metrics files and progress lines, not per-agent loops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of log₂ nanosecond buckets per duration histogram. Bucket
/// `i` holds durations in `[2^i, 2^{i+1})` ns (bucket 0 also takes 0),
/// so 64 buckets cover every representable `u64` duration — about 584
/// years at the top end.
pub const HISTOGRAM_BUCKETS: usize = 64;

struct HistoStorage {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

static COUNTERS: Mutex<BTreeMap<&'static str, &'static AtomicU64>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<&'static str, &'static HistoStorage>> =
    Mutex::new(BTreeMap::new());

/// A handle to a named monotonic counter.
///
/// Copyable and `'static`; increments are a single relaxed `fetch_add`
/// when telemetry is enabled and a single relaxed flag load when it is
/// not.
#[derive(Debug, Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds `v` if telemetry is enabled; otherwise a no-op.
    #[inline]
    pub fn add(&self, v: u64) {
        if crate::enabled() {
            self.add_unconditional(v);
        }
    }

    /// Adds 1 if telemetry is enabled; otherwise a no-op.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `v` without re-checking the global enable flag — for call
    /// sites that already branched on [`crate::enabled`] once for a
    /// whole batch of records.
    #[inline]
    pub fn add_unconditional(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value (relaxed load). Per-location coherence makes
    /// repeated `get`s on one counter monotone non-decreasing.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Looks up or registers the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    let mut map = COUNTERS.lock().expect("counter registry poisoned");
    let cell = map
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
    Counter(cell)
}

/// A call-site cache for [`counter`]: `static C: LazyCounter =
/// LazyCounter::new("name");` resolves the registry entry on first use
/// and never touches the mutex again.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// Creates the (unresolved) handle; `const` so it can live in a
    /// `static` at the instrumentation site.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The resolved registry-backed counter.
    #[inline]
    pub fn handle(&self) -> Counter {
        *self.cell.get_or_init(|| counter(self.name))
    }

    /// Adds `v` if telemetry is enabled; otherwise one relaxed load.
    #[inline]
    pub fn add(&self, v: u64) {
        if crate::enabled() {
            self.handle().add_unconditional(v);
        }
    }

    /// Adds 1 if telemetry is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 if never touched).
    pub fn get(&self) -> u64 {
        self.handle().get()
    }
}

/// A handle to a named log₂-bucketed duration histogram.
#[derive(Debug, Clone, Copy)]
pub struct DurationHistogram(&'static HistoStorage);

impl std::fmt::Debug for HistoStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoStorage")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[inline]
fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ns.ilog2() as usize
    }
}

impl DurationHistogram {
    /// Records one duration of `ns` nanoseconds (three relaxed RMWs).
    /// Does **not** check the enable flag: span guards only exist when
    /// telemetry was enabled at their creation.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.0.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Looks up or registers the duration histogram named `name`.
pub fn duration_histogram(name: &'static str) -> DurationHistogram {
    let mut map = HISTOGRAMS.lock().expect("histogram registry poisoned");
    let cell = map.entry(name).or_insert_with(|| {
        Box::leak(Box::new(HistoStorage {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }))
    });
    DurationHistogram(cell)
}

/// A point-in-time copy of one duration histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total recorded durations.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^{i+1})` ns.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean recorded duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile in nanoseconds, `0.0 <= q <= 1.0`,
    /// linearly interpolated inside the containing log₂ bucket.
    /// Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, in [1, count].
        let rank = (q * self.count as f64).max(1.0).min(self.count as f64);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if rank <= next as f64 {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = (1u128 << (i + 1)) as f64;
                let frac = (rank - seen as f64) / c as f64;
                return lo + (hi - lo) * frac;
            }
            seen = next;
        }
        // Unreachable when count == sum(buckets); defensive fallback.
        (1u128 << HISTOGRAM_BUCKETS) as f64
    }
}

/// A point-in-time copy of every registered metric, names sorted.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` for every registered duration histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of the named counter in this snapshot (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named histogram in this snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Copies every registered metric. Counter values are monotone across
/// successive snapshots (each cell is only ever `fetch_add`ed), which
/// the property tests pin down under concurrent writers.
pub fn snapshot() -> Snapshot {
    let counters = COUNTERS
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
        .collect();
    let histograms = HISTOGRAMS
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .map(|(name, h)| {
            // Read `count` last: it was bumped after the bucket on the
            // write side, so `sum(buckets) >= count` can transiently
            // fail but never by more than in-flight writers.
            let buckets: Vec<u64> = h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            let snap = HistogramSnapshot {
                count: h.count.load(Ordering::Relaxed),
                sum_ns: h.sum_ns.load(Ordering::Relaxed),
                buckets,
            };
            (name.to_string(), snap)
        })
        .collect();
    Snapshot {
        counters,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn same_name_same_cell() {
        let _g = crate::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        let a = counter("test.registry.same");
        let b = counter("test.registry.same");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = duration_histogram("test.registry.quant");
        for _ in 0..100 {
            h.record_ns(1000); // bucket 9: [512, 1024)
        }
        let snap = snapshot();
        let hs = snap.histogram("test.registry.quant").unwrap();
        assert_eq!(hs.count, 100);
        assert_eq!(hs.sum_ns, 100_000);
        let p50 = hs.quantile_ns(0.5);
        assert!((512.0..1024.0).contains(&p50), "p50 = {p50}");
        assert!(hs.quantile_ns(0.0) <= hs.quantile_ns(1.0));
        assert!((hs.mean_ns() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let _ = duration_histogram("test.registry.empty");
        let snap = snapshot();
        let hs = snap.histogram("test.registry.empty").unwrap();
        assert_eq!(hs.quantile_ns(0.5), 0.0);
        assert_eq!(hs.mean_ns(), 0.0);
    }
}
