//! Trace-event capture and Chrome-tracing/Perfetto export.
//!
//! When tracing is switched on ([`set_tracing`]) every completed span
//! appends a [`TraceEvent`] to a global buffer, stamped against a
//! process-wide epoch and tagged with the calling thread's *lane* — a
//! small dense id assigned on first use, mapped to the OS thread name
//! so the viewer shows one labelled track per pool worker.
//!
//! [`chrome_trace_json`] renders the drained buffer as the JSON object
//! form of the Chrome trace event format (`"traceEvents"` array of
//! `"ph": "X"` complete events plus `"ph": "M"` `thread_name`
//! metadata), which both `chrome://tracing` and Perfetto load
//! directly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_LANE: AtomicU64 = AtomicU64::new(1);
static LANE_NAMES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

thread_local! {
    static LANE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// One completed (`"ph": "X"`) trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name, shared with the duration histogram.
    pub name: &'static str,
    /// Thread lane (dense per-thread id; 1 is the first thread seen).
    pub lane: u64,
    /// Start, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Viewer-visible numeric arguments.
    pub args: Vec<(&'static str, f64)>,
}

/// Switches trace-event capture on or off. Turning it on pins the
/// process epoch (timestamp zero) on first use. Capture is
/// independent of [`crate::set_enabled`] in the API but events are
/// only produced by live spans, so tracing without enabling telemetry
/// records nothing.
pub fn set_tracing(on: bool) {
    if on {
        let _ = EPOCH.set(Instant::now());
    }
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether trace-event capture is active.
#[inline]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// The calling thread's lane id, assigning one (and recording the
/// thread's name for the viewer) on first use.
fn lane_id() -> u64 {
    LANE.with(|l| {
        let mut id = l.get();
        if id == 0 {
            id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            l.set(id);
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{id}"), str::to_owned);
            LANE_NAMES
                .lock()
                .expect("lane names poisoned")
                .push((id, name));
        }
        id
    })
}

/// Appends one complete event for the calling thread. `start` is the
/// wall-clock instant the measured work began; `offset_ns` shifts the
/// event later by that amount (used to lay accumulated sub-phase
/// totals end to end inside their parent span).
pub(crate) fn push_event(
    name: &'static str,
    start: Instant,
    offset_ns: u64,
    dur_ns: u64,
    args: &[(&'static str, f64)],
) {
    let epoch = *EPOCH.get_or_init(Instant::now);
    let since = start
        .checked_duration_since(epoch)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    let ev = TraceEvent {
        name,
        lane: lane_id(),
        ts_ns: since.saturating_add(offset_ns),
        dur_ns,
        args: args.to_vec(),
    };
    EVENTS.lock().expect("trace buffer poisoned").push(ev);
}

/// Drains and returns every captured event (oldest first per thread;
/// globally sorted by timestamp).
pub fn take_trace() -> Vec<TraceEvent> {
    let mut events = std::mem::take(&mut *EVENTS.lock().expect("trace buffer poisoned"));
    events.sort_by_key(|e| e.ts_ns);
    events
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

/// Renders events as Chrome trace event format JSON (object form),
/// with a `thread_name` metadata record per lane seen so far.
/// Timestamps and durations are microseconds with nanosecond
/// precision, as the format expects.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (lane, name) in LANE_NAMES.lock().expect("lane names poisoned").iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&lane.to_string());
        out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":\"");
        escape(name, &mut out);
        out.push_str("\"}}");
    }
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&ev.lane.to_string());
        out.push_str(",\"name\":\"");
        escape(ev.name, &mut out);
        out.push_str("\",\"ts\":");
        push_f64(ev.ts_ns as f64 / 1000.0, &mut out);
        out.push_str(",\"dur\":");
        push_f64(ev.dur_ns as f64 / 1000.0, &mut out);
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape(k, &mut out);
                out.push_str("\":");
                push_f64(*v, &mut out);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape() {
        let events = vec![
            TraceEvent {
                name: "round",
                lane: 1,
                ts_ns: 1_500,
                dur_ns: 2_000,
                args: vec![("msteps_per_sec", 12.5)],
            },
            TraceEvent {
                name: "shard",
                lane: 2,
                ts_ns: 0,
                dur_ns: 10_000,
                args: vec![],
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"round\""));
        assert!(json.contains("\"ts\":1.5"));
        assert!(json.contains("\"dur\":2"));
        assert!(json.contains("\"msteps_per_sec\":12.5"));
        // Balanced braces/brackets — cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn spans_emit_events_when_tracing() {
        let _g = crate::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        set_tracing(true);
        static SPAN: crate::SpanMetric = crate::SpanMetric::new("test.trace.span");
        {
            let mut s = SPAN.start();
            s.arg("k", 3.0);
        }
        set_tracing(false);
        crate::set_enabled(false);
        let events = take_trace();
        let ev = events
            .iter()
            .find(|e| e.name == "test.trace.span")
            .expect("event captured");
        assert!(ev.lane >= 1);
        assert_eq!(ev.args, vec![("k", 3.0)]);
    }
}
