//! `antdensity-telemetry` — the workspace's hand-rolled instrumentation
//! core (vendored-deps-style: std-only, offline-friendly).
//!
//! Three primitives, all registered by `&'static str` name in a
//! process-global [`Registry`](registry):
//!
//! * **Counters** ([`Counter`], [`LazyCounter`]) — monotonic `u64`s
//!   bumped with one relaxed `fetch_add`.
//! * **Duration histograms** — 64 log₂-spaced nanosecond buckets per
//!   metric, each an `AtomicU64`; recording is three relaxed RMWs and
//!   never locks.
//! * **Spans** ([`SpanMetric`], [`Span`]) — RAII timers that feed the
//!   same-named histogram on drop and, when tracing is on, push a
//!   [`TraceEvent`] for Chrome/Perfetto export
//!   ([`chrome_trace_json`]).
//!
//! ## Cost model
//!
//! The registry mutex is touched only on first use of a name and on
//! [`snapshot`]; the hot path sees leaked `&'static` atomics. When
//! telemetry is **disabled** (the default) every entry point degrades
//! to a single `Relaxed` load of one global flag — instrumented code
//! is expected to hoist that check to coarse granularity (the engine
//! checks once per *round*, never inside the per-agent loop).
//!
//! ## Determinism guarantee
//!
//! Telemetry observes, never influences: no function here returns a
//! value that simulation code consumes, touches an RNG stream, or
//! reorders work. The golden-vector and sweep kill/resume bit-identity
//! suites run with telemetry (and tracing) fully enabled to enforce
//! this.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod registry;
pub mod span;
pub mod trace;

pub use registry::{
    counter, duration_histogram, snapshot, Counter, HistogramSnapshot, LazyCounter, Snapshot,
};
pub use span::{Span, SpanMetric};
pub use trace::{chrome_trace_json, set_tracing, take_trace, tracing, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};

/// The single global on/off switch. `Relaxed` is sufficient: readers
/// only ever use it to decide whether to *observe*, never to
/// synchronize data.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on or off process-wide.
///
/// Disabled is the default; in that state every instrumentation entry
/// point is a single relaxed atomic load. Metrics accumulated while
/// enabled are retained (counters are monotonic for the process
/// lifetime), so toggling never loses data.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether telemetry collection is currently enabled.
///
/// This is the one relaxed atomic load instrumented hot paths pay per
/// round when telemetry is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Unit tests in this crate toggle the process-global enable flag, so
/// every test that touches it serializes on this lock.
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counter_does_not_count() {
        let _g = TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let c = counter("test.lib.disabled");
        c.add(5);
        assert_eq!(c.get(), 0);
        set_enabled(true);
        c.add(5);
        assert_eq!(c.get(), 5);
        set_enabled(false);
    }

    #[test]
    fn span_records_into_same_named_histogram() {
        let _g = TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        static SPAN: SpanMetric = SpanMetric::new("test.lib.span");
        {
            let _s = SPAN.start();
            std::hint::black_box(1 + 1);
        }
        let snap = snapshot();
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "test.lib.span")
            .expect("histogram registered");
        assert_eq!(h.count, 1);
        assert!(h.sum_ns > 0);
        set_enabled(false);
    }
}
