//! Experiment output: reports, effort levels, CSV persistence.

use antdensity_stats::table::Table;
use std::io::Write;
use std::path::Path;

/// How much compute an experiment should spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Seconds per experiment — CI-friendly smoke version with smaller
    /// graphs and fewer trials. Shapes are still visible, constants are
    /// noisier.
    Quick,
    /// The full parameter grids used for `EXPERIMENTS.md`.
    Full,
}

impl Effort {
    /// Scales a trial count.
    pub fn trials(&self, quick: u64, full: u64) -> u64 {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }

    /// Picks a size parameter.
    pub fn size(&self, quick: u64, full: u64) -> u64 {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}

/// The result of one experiment: a set of tables plus free-form findings.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Stable id (`e1` … `e15`).
    pub id: &'static str,
    /// Human-readable title including the paper reference.
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Headline findings — one line each, written for EXPERIMENTS.md.
    pub findings: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Self {
            id,
            title: title.into(),
            tables: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Adds a table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Adds a finding line.
    pub fn finding(&mut self, line: impl Into<String>) {
        self.findings.push(line.into());
    }

    /// Renders the whole report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### {} — {}\n\n",
            self.id.to_uppercase(),
            self.title
        ));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for f in &self.findings {
            out.push_str(&format!("  => {f}\n"));
        }
        out
    }

    /// Writes each table as `dir/<id>_<index>_<slug>.csv`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or files.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            let slug: String = t
                .title()
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect::<String>()
                .split('_')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("_");
            let path = dir.join(format!("{}_{:02}_{}.csv", self.id, i, slug));
            let mut f = std::fs::File::create(&path)?;
            f.write_all(t.to_csv().as_bytes())?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling() {
        assert_eq!(Effort::Quick.trials(10, 1000), 10);
        assert_eq!(Effort::Full.trials(10, 1000), 1000);
        assert_eq!(Effort::Quick.size(8, 64), 8);
    }

    #[test]
    fn report_renders_tables_and_findings() {
        let mut r = ExperimentReport::new("e0", "demo experiment");
        let mut t = Table::new("numbers", &["x"]);
        t.row(&["1"]);
        r.push_table(t);
        r.finding("slope = -1.0 as predicted");
        let s = r.render();
        assert!(s.contains("E0"));
        assert!(s.contains("numbers"));
        assert!(s.contains("=> slope"));
    }

    #[test]
    fn csv_files_written() {
        let dir = std::env::temp_dir().join(format!("antdensity_test_{}", std::process::id()));
        let mut r = ExperimentReport::new("e9", "csv test");
        let mut t = Table::new("My Table! (v2)", &["a", "b"]);
        t.row(&["1", "2"]);
        r.push_table(t);
        let files = r.write_csv(&dir).unwrap();
        assert_eq!(files.len(), 1);
        let content = std::fs::read_to_string(&files[0]).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        assert!(files[0]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("e9_00_my_table"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
