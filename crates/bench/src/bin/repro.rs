//! `repro` — regenerate the paper's quantitative claims.
//!
//! ```text
//! repro list                        # show all experiments
//! repro all [--quick]               # run everything
//! repro e3 e8 [--full]              # run selected experiments
//! repro bench                       # engine throughput -> BENCH_engine.json
//! repro bench --compare [BASE]      # …then gate against a baseline JSON
//! repro bench --group NAME          # one benchmark family only (e.g. rng_batch)
//! repro bench --list-groups         # print the known group names, run nothing
//! repro sweep SPEC [--quick]        # run a declarative parameter sweep
//! repro sweep SPEC --dry-run        # print the expanded/fused plan, run nothing
//! repro sweep SPEC --serve-shards   # distribute shards to worker processes
//! repro sweep-worker --stdio        # worker half (spawned by --serve-shards)
//! repro sweep-worker --connect ADDR # worker half for a --listen coordinator
//! repro check-metrics FILE          # validate a METRICS_*.json against its schema
//! repro serve [--listen ADDR]       # estimation daemon (line-delimited JSON jobs)
//! repro serve --stdio               # one daemon session over stdin/stdout
//! repro serve-submit ADDR SPEC      # submit a spec to a daemon, stream results
//! repro serve-bench [--full]        # hammer an in-process daemon, verify bytes
//! options:
//!   --quick           small grids (default for experiments)
//!   --full            the EXPERIMENTS.md grids
//!   --seed N          experiments: master seed (default 20160725 — PODC'16 day
//!                     one); sweep/serve-submit: override the spec's seed (same
//!                     bytes as editing its `seed =` line)
//!   --out DIR         CSV/JSON output directory (default results/)
//!   --tolerance F     bench gate: allowed fractional regression (default 0.25)
//!   --group NAME      bench: run one family (see `bench --list-groups`); the
//!                     gate then covers just that family's rows
//!   --list-groups     bench: print the group names one per line and exit
//! sweep options:
//!   --workers N       worker threads for shard fan-out (results never depend on it)
//!   --resume          continue from DIR/<name>.ckpt if present
//!   --max-shards K    stop after K newly executed fused shards (checkpoint survives)
//!   --no-checkpoint   do not write a checkpoint file
//!   --no-fuse         one simulation per cell instead of per fused shard
//!                     (bit-identical report, strictly more work — the cross-check)
//!   --dry-run         print cell/shard/trial counts and the fused-vs-unfused
//!                     simulation work, then exit without running
//!   --metrics [FILE]  write the execution-metrics snapshot (schema
//!                     `antdensity-metrics v3`; default DIR/METRICS_<name>.json)
//!   --trace FILE      write a Chrome-tracing / Perfetto JSON of the run's spans
//!   --progress        live stderr line per wave: shards done/total, Msteps/s, ETA
//!   --cache DIR       consult/publish a content-addressed shard result cache
//!                     under DIR (`off` disables); warm reruns skip simulation
//!                     and write byte-identical reports. Shared safely across
//!                     concurrent processes; spawned dist workers inherit it
//!   --cache-verify    recompute every cache hit and byte-compare against the
//!                     stored blob; any mismatch aborts the run (CI distrust)
//!   --cache-cap BYTES LRU-evict the cache down to BYTES after the run
//! distributed sweep options:
//!   --serve-shards    lease fused shards to worker processes instead of
//!                     running them on the in-process pool; the report stays
//!                     byte-identical to the in-process run
//!   --workers-cmd N   spawn N child workers over stdin/stdout pipes
//!                     (default: the thread default; implies --serve-shards)
//!   --listen ADDR     accept TCP workers on ADDR instead of spawning children
//!                     (start them with `repro sweep-worker --connect ADDR`;
//!                     implies --serve-shards)
//!   --fault PLAN      deterministic fault injection for testing, e.g.
//!                     `kill:lease3,drop:RESULT@2` (see DESIGN.md)
//! serve options (admission knobs):
//!   --listen ADDR     TCP bind address (default 127.0.0.1:4710, port 0 = ephemeral)
//!   --stdio           serve a single session over stdin/stdout instead
//!   --max-queue N     queue slots before submits are rejected (default 64)
//!   --executors N     concurrent jobs (default 2; all share the worker pool)
//!   --workers N       worker threads per job (default: the thread default)
//!   --dist N          run each job's shards on N child worker processes
//!   --cache DIR       one shard result cache shared by every executor and job
//! exit codes: 0 ok; 1 perf gate regressed / IO failure; 2 usage; 3 partial sweep;
//!             4 distributed result mismatch (byte-unequal duplicate shard result)
//! ```
//!
//! This binary is a thin dispatcher: argv parses into the typed
//! request structs in [`antdensity_bench::cli`] (shared with the
//! tests), each subcommand's runner consumes its request, and every
//! exit goes through [`cli::ExitCode`] — the same enum the contract
//! tests assert against. A sweep request converts to the identical
//! [`sweep::SweepJob`] a `repro serve` submit deserializes to, so the
//! two front ends cannot drift.
//!
//! Telemetry is always enabled for `sweep` and `serve` runs (it
//! observes, never influences — reports are byte-identical with or
//! without it, which the determinism suites pin); `--trace`/`--metrics`
//! only choose whether the collected data is written anywhere.

use antdensity_bench::cli::{self, Command, ExitCode};
use antdensity_bench::experiments;
use antdensity_bench::perf;
use antdensity_bench::report::Effort;
use antdensity_serve as serve;
use antdensity_sweep as sweep;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro <list|bench|sweep SPEC|sweep-worker|check-metrics FILE|serve|\
         serve-submit ADDR SPEC|serve-bench|all|e1..e17...> \
         [--quick|--full] [--seed N] [--out DIR] [--compare [BASELINE]] [--tolerance F] \
         [--group NAME] [--list-groups] \
         [--workers N] [--resume] [--max-shards K] [--no-checkpoint] [--no-fuse] \
         [--dry-run] [--metrics [FILE]] [--trace FILE] [--progress] \
         [--serve-shards] [--workers-cmd N] [--listen ADDR] [--fault PLAN] \
         [--cache DIR|off] [--cache-verify] [--cache-cap BYTES] \
         [--stdio] [--max-queue N] [--executors N] [--dist N] [--clients N] [--jobs N]"
    );
    ExitCode::Usage.exit()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("repro: {e}");
            usage();
        }
    };
    match command {
        Command::List => run_list(),
        Command::Experiments(req) => run_experiments(&req),
        Command::Bench(req) => run_bench(&req),
        Command::Sweep(req) => run_sweep_cmd(&req),
        Command::SweepWorker(req) => run_sweep_worker(&req),
        Command::CheckMetrics(req) => run_check_metrics(&req.path),
        Command::Serve(req) => run_serve(&req),
        Command::ServeBench(req) => run_serve_bench_cmd(&req),
        Command::ServeSubmit(req) => run_serve_submit(&req),
    }
}

fn run_list() {
    println!("available experiments:");
    for def in experiments::all() {
        println!("  {:>4}  {}", def.id, def.summary);
    }
}

fn run_experiments(req: &cli::ExperimentsRequest) {
    let mode = match req.effort {
        Effort::Quick => "quick",
        Effort::Full => "full",
    };
    println!("# antdensity repro — mode: {mode}, seed: {}\n", req.seed);
    let t_all = Instant::now();
    for id in &req.ids {
        let Some(def) = experiments::find(id) else {
            ExitCode::Usage.fail(&format!("unknown experiment id: {id}"));
        };
        let t0 = Instant::now();
        let report = (def.run)(req.effort, req.seed);
        let elapsed = t0.elapsed();
        print!("{}", report.render());
        match report.write_csv(&req.out) {
            Ok(files) => {
                for f in files {
                    println!("  csv: {}", f.display());
                }
            }
            Err(e) => eprintln!("  csv write failed: {e}"),
        }
        println!("  [{} finished in {:.1}s]\n", def.id, elapsed.as_secs_f64());
    }
    println!(
        "# all selected experiments done in {:.1}s",
        t_all.elapsed().as_secs_f64()
    );
}

/// Opens the `--cache` store (when given) and routes the
/// `spectral::effective_lambda` disk memo to the same root, so one
/// directory caches both shard blobs and spectral-gap results.
fn open_cache(dir: Option<&Path>) -> Option<std::sync::Arc<sweep::ShardCache>> {
    let dir = dir?;
    let cache = sweep::ShardCache::open(dir)
        .unwrap_or_else(|e| ExitCode::Failure.fail(&format!("--cache {}: {e}", dir.display())));
    antdensity_core::theory::set_lambda_cache_dir(dir);
    Some(std::sync::Arc::new(cache))
}

fn run_bench(req: &cli::BenchRequest) {
    if req.list_groups {
        for group in perf::GROUPS {
            println!("{group}");
        }
        return;
    }
    let t0 = Instant::now();
    // The parser already vetted the group name, so this only errors on
    // a programmatic caller handing an unknown label.
    let report = perf::run_engine_bench_group(req.effort, req.group.as_deref())
        .unwrap_or_else(|e| ExitCode::Usage.fail(&format!("repro bench: {e}")));
    print!("{}", report.render());
    match report.write_json(&req.out) {
        Ok(path) => println!("  json: {}", path.display()),
        Err(e) => ExitCode::Failure.fail(&format!("  json write failed: {e}")),
    }
    println!("  [bench finished in {:.1}s]", t0.elapsed().as_secs_f64());

    if let Some(baseline_path) = &req.compare {
        let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            ExitCode::Failure.fail(&format!(
                "cannot read baseline {}: {e}",
                baseline_path.display()
            ))
        });
        let baseline = perf::parse_json(&text).unwrap_or_else(|e| {
            ExitCode::Failure.fail(&format!(
                "baseline {} is malformed: {e}",
                baseline_path.display()
            ))
        });
        let cmp = perf::compare(&report, &baseline, req.tolerance)
            .unwrap_or_else(|e| ExitCode::Failure.fail(&format!("comparison failed: {e}")));
        print!("{}", cmp.render());
        if cmp.regressed() {
            ExitCode::Failure.fail(&format!(
                "perf gate FAILED: median throughput ratio {:.3} below {:.2}",
                cmp.median_ratio,
                1.0 - req.tolerance
            ));
        }
    }
}

/// `repro sweep SPEC --dry-run`: print what would run — expanded cells,
/// fused shards, trials, and the fused-vs-unfused simulation work —
/// without executing anything or touching the filesystem.
fn dry_run(resolved: &sweep::ResolvedSweep) {
    let (fused_sims, unfused_sims) = resolved.simulation_counts();
    let (fused_rounds, unfused_rounds) = resolved.simulated_round_counts();
    println!(
        "sweep {} ({} mode) — dry run, nothing executed",
        resolved.name, resolved.mode
    );
    println!(
        "  grid cells:       {} ({} skipped combination{})",
        resolved.cells.len(),
        resolved.skipped.len(),
        if resolved.skipped.len() == 1 { "" } else { "s" }
    );
    println!("  fused shards:     {}", resolved.fused.len());
    println!("  trials per cell:  {}", resolved.trials);
    println!(
        "  simulations:      {fused_sims} fused vs {unfused_sims} unfused ({:.2}x fewer passes)",
        unfused_sims as f64 / fused_sims as f64
    );
    println!(
        "  simulated rounds: {fused_rounds} fused vs {unfused_rounds} unfused ({:.2}x less work)",
        unfused_rounds as f64 / fused_rounds as f64
    );
    println!("  fingerprint:      {:016x}", resolved.fingerprint);
    for shard in &resolved.fused {
        let taps: Vec<String> = shard
            .taps
            .iter()
            .map(|t| format!("{}@{}", t.estimator, t.schedule()))
            .collect();
        let base = &resolved.cells[shard.cells[0]];
        println!(
            "    shard {:>3}: {} agents {} {} {} — {} cell{} [{}]",
            shard.index,
            base.topology,
            base.num_agents,
            base.movement,
            base.noise_label(),
            shard.cells.len(),
            if shard.cells.len() == 1 { "" } else { "s" },
            taps.join(", "),
        );
    }
}

/// Shared sweep-failure exit: one structured, machine-greppable stderr
/// line for the known failure classes, prose after, exit code 1.
fn sweep_failure(e: &str, spec_path: &Path, checkpoint: &Option<PathBuf>) -> ! {
    let ck = checkpoint
        .as_ref()
        .map_or_else(|| "?".to_string(), |p| p.display().to_string());
    if e.contains("different sweep configuration") || e.contains("cells, spec resolves") {
        eprintln!(
            "repro-sweep: status=error reason=checkpoint-fingerprint-mismatch \
             spec={} checkpoint={ck} action=\"delete the checkpoint or rerun \
             with the original spec and mode\"",
            spec_path.display(),
        );
    } else if e.contains("locked by running process") {
        eprintln!(
            "repro-sweep: status=error reason=checkpoint-locked spec={} checkpoint={ck} \
             action=\"wait for the other coordinator or remove the stale .lock file\"",
            spec_path.display(),
        );
    }
    ExitCode::Failure.fail(&format!("sweep failed: {e}"))
}

/// The `--serve-shards` / `--listen` execution path: build the
/// distributed options from the request, run, and map
/// [`sweep::DistError`] to the exit-code contract
/// ([`ExitCode::Mismatch`] = byte-unequal duplicate results).
fn run_sweep_distributed_cmd(
    req: &cli::SweepRequest,
    spec: &sweep::SweepSpec,
    spec_text: &str,
    opts: &sweep::SweepOptions,
    checkpoint: &Option<PathBuf>,
) -> (sweep::SweepOutcome, sweep::DistStats) {
    let plan = match &req.fault {
        Some(p) => sweep::FaultPlan::parse(p)
            .unwrap_or_else(|e| ExitCode::Usage.fail(&format!("--fault plan: {e}"))),
        None => sweep::FaultPlan::none(),
    };
    let transport = match &req.listen {
        Some(addr) => sweep::Transport::Listen { addr: addr.clone() },
        None => sweep::Transport::Children {
            workers: req
                .workers_cmd
                .unwrap_or_else(antdensity_walks::parallel::default_threads),
        },
    };
    let dopts = sweep::DistOptions {
        transport,
        plan,
        config: sweep::dist::DistConfig::default(),
        spec_text: Some(spec_text.to_string()),
        worker_argv: None,
    };
    match sweep::run_sweep_distributed(spec, opts, &dopts) {
        Ok(pair) => pair,
        Err(sweep::DistError::Mismatch { shard, report }) => {
            eprintln!("repro-sweep: status=error reason=result-mismatch {report}");
            ExitCode::Mismatch.fail(&format!(
                "sweep aborted: workers returned byte-unequal results for shard {shard} \
                 (determinism violated — do not trust partial output)"
            ));
        }
        Err(sweep::DistError::Failed(e)) => sweep_failure(&e, &req.spec_path, checkpoint),
    }
}

fn run_sweep_cmd(req: &cli::SweepRequest) {
    let text = std::fs::read_to_string(&req.spec_path).unwrap_or_else(|e| {
        ExitCode::Failure.fail(&format!(
            "cannot read sweep spec {}: {e}",
            req.spec_path.display()
        ))
    });
    // The same validated job a serve submit builds from this spec.
    let job = req.to_job(text);
    let validated = job
        .validate()
        .unwrap_or_else(|e| ExitCode::Usage.fail(&format!("{}: {e}", req.spec_path.display())));
    if req.dry_run {
        dry_run(&validated.resolved);
        return;
    }
    // Telemetry observes, never influences (the determinism suite runs
    // with it on) — so sweeps always collect; the flags below only
    // decide whether anything is written out.
    antdensity_telemetry::set_enabled(true);
    if req.trace.is_some() {
        antdensity_telemetry::set_tracing(true);
    }
    let checkpoint = if req.no_checkpoint {
        None
    } else {
        Some(req.out.join(format!("{}.ckpt", validated.spec.name)))
    };
    let cache = open_cache(req.cache.as_deref());
    let opts = sweep::SweepOptions {
        quick: req.quick,
        fuse: !req.no_fuse,
        workers: req
            .workers
            .unwrap_or_else(antdensity_walks::parallel::default_threads),
        checkpoint: checkpoint.clone(),
        resume: req.resume,
        max_shards: req.max_shards,
        progress: req.progress,
        cache: cache.clone(),
        cache_verify: req.cache_verify,
        cache_cap: req.cache_cap,
        ..sweep::SweepOptions::default()
    };
    let t0 = Instant::now();
    let (outcome, dist_stats) = if req.serve_shards {
        let (outcome, stats) = run_sweep_distributed_cmd(
            req,
            &validated.spec,
            &job.effective_spec_text(),
            &opts,
            &checkpoint,
        );
        (outcome, Some(stats))
    } else {
        let outcome = sweep::run_sweep(&validated.spec, &opts)
            .unwrap_or_else(|e| sweep_failure(&e, &req.spec_path, &checkpoint));
        (outcome, None)
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let report = sweep::build_report(&outcome);
    print!("{}", report.render());
    match report.write(&req.out) {
        Ok((json, csv)) => {
            println!("  json: {}", json.display());
            println!("  csv:  {}", csv.display());
        }
        Err(e) => ExitCode::Failure.fail(&format!("  report write failed: {e}")),
    }
    let snapshot = antdensity_telemetry::snapshot();
    if let Some(metrics_path) = &req.metrics {
        let mut metrics =
            sweep::SweepMetrics::from_outcome(&outcome, opts.fuse, wall_s, snapshot.clone());
        if let Some(stats) = &dist_stats {
            metrics = metrics.with_dist(stats.clone());
        }
        if let Some(cache) = &cache {
            metrics = metrics.with_cache(cache.stats());
        }
        let written = match metrics_path {
            Some(path) => {
                if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir).ok();
                }
                std::fs::write(path, metrics.to_json()).map(|()| path.clone())
            }
            None => metrics.write(&req.out),
        };
        match written {
            Ok(path) => println!("  metrics: {}", path.display()),
            Err(e) => ExitCode::Failure.fail(&format!("  metrics write failed: {e}")),
        }
    }
    if let Some(trace_path) = &req.trace {
        let events = antdensity_telemetry::take_trace();
        let json = antdensity_telemetry::chrome_trace_json(&events);
        match std::fs::write(trace_path, json) {
            Ok(()) => println!(
                "  trace: {} ({} events — open in Perfetto / chrome://tracing)",
                trace_path.display(),
                events.len()
            ),
            Err(e) => ExitCode::Failure.fail(&format!("  trace write failed: {e}")),
        }
    }
    if let Some(stats) = &dist_stats {
        println!(
            "  dist: {} worker{} served {} lease{} ({} reissued, {} respawn{}, \
             {} duplicate{}, {} degraded)",
            stats.workers_seen,
            if stats.workers_seen == 1 { "" } else { "s" },
            stats.leases,
            if stats.leases == 1 { "" } else { "s" },
            stats.reissues,
            stats.respawns,
            if stats.respawns == 1 { "" } else { "s" },
            stats.duplicates,
            if stats.duplicates == 1 { "" } else { "s" },
            stats.degraded,
        );
    } else if outcome.workers_effective < outcome.workers_requested {
        println!(
            "  workers: {} effective of {} requested (pool clamp)",
            outcome.workers_effective, outcome.workers_requested
        );
    }
    if let Some(cache) = &cache {
        // One greppable line mirroring the metrics file's `cache`
        // section (CI asserts hits>0 on the warm run from either).
        let s = cache.stats();
        println!(
            "  cache: hits={} misses={} stores={} corrupt={} evictions={} \
             verify_failures={} ({} B read, {} B written)",
            s.hits,
            s.misses,
            s.stores,
            s.corrupt,
            s.evictions,
            s.verify_failures,
            s.bytes_read,
            s.bytes_written,
        );
    }
    println!(
        "  [sweep {} ran {} shard{} (+{} resumed), {} simulation{} / {} rounds{}, in {wall_s:.1}s]",
        report.name,
        outcome.executed,
        if outcome.executed == 1 { "" } else { "s" },
        outcome.resumed,
        outcome.simulations,
        if outcome.simulations == 1 { "" } else { "s" },
        outcome.simulated_rounds,
        if opts.fuse { "" } else { " (unfused)" },
    );
    if outcome.complete {
        if let Some(ck) = &checkpoint {
            let _ = std::fs::remove_file(ck); // finished: nothing to resume
        }
        return;
    }
    // Partial run (exit code 3): one structured stderr line saying what
    // ran, why it stopped, and how to continue — built from the same
    // telemetry counters the metrics file carries.
    let total_shards = outcome.resolved.fused.len();
    let reason = if req.max_shards.is_some() {
        "max-shards-budget"
    } else {
        "stopped-early"
    };
    let next = match &checkpoint {
        Some(_) => format!(
            "resume=\"repro sweep {} --resume --out {}\"",
            req.spec_path.display(),
            req.out.display()
        ),
        None => "resume=none (--no-checkpoint discarded progress)".to_string(),
    };
    eprintln!(
        "repro-sweep: status=partial reason={reason} executed={}/{total_shards} \
         resumed={} cells_done={} trials_done={} checkpoint_writes={} {next}",
        outcome.executed,
        outcome.resumed,
        snapshot.counter("sweep.cells_completed"),
        snapshot.counter("sweep.trials"),
        snapshot.counter("sweep.checkpoint_writes"),
    );
    ExitCode::Partial.exit()
}

/// `repro sweep-worker [--stdio | --connect ADDR] [--cache DIR]`: the
/// worker half of a distributed sweep. Its stdout carries protocol
/// frames, not human output — nothing here prints.
fn run_sweep_worker(req: &cli::SweepWorkerRequest) {
    let cache = open_cache(req.cache.as_deref());
    let result = match &req.mode {
        cli::WorkerMode::Stdio => sweep::dist::runtime::run_worker_stdio(cache.as_deref()),
        cli::WorkerMode::Connect(addr) => {
            sweep::dist::runtime::run_worker_connect(addr, cache.as_deref())
        }
    };
    if let Err(e) = result {
        ExitCode::Failure.fail(&format!("sweep-worker: {e}"));
    }
}

/// `repro check-metrics FILE`: assert a metrics file parses against the
/// `antdensity-metrics v3` schema (v2/v1 files still accepted) — the
/// CI guard that the artifact other jobs grep stays well-formed.
fn run_check_metrics(path: &PathBuf) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        ExitCode::Failure.fail(&format!("cannot read metrics file {}: {e}", path.display()))
    });
    match sweep::metrics::validate(&text) {
        Ok(summary) => println!(
            "metrics ok: schema=v{} sweep={} wall_s={:.3} counters={} histograms={} dist={} \
             cache={}",
            summary.schema_version,
            summary.name,
            summary.wall_s,
            summary.counters,
            summary.histograms,
            if summary.dist { "yes" } else { "no" },
            if summary.cache { "yes" } else { "no" },
        ),
        Err(e) => ExitCode::Failure.fail(&format!(
            "metrics file {} violates {}: {e}",
            path.display(),
            sweep::metrics::SCHEMA
        )),
    }
}

/// `repro serve`: the estimation daemon. Blocks until a client sends
/// the `shutdown` op (TCP) or stdin closes (`--stdio`).
fn run_serve(req: &cli::ServeRequest) {
    antdensity_telemetry::set_enabled(true);
    let cfg = serve::ServeConfig {
        max_queue: req.max_queue,
        executors: req.executors,
        job_workers: req.job_workers,
        dist_workers: req.dist_workers,
        cache: open_cache(req.cache.as_deref()),
    };
    if req.stdio {
        if let Err(e) = serve::run_stdio(cfg) {
            ExitCode::Failure.fail(&format!("serve: {e}"));
        }
        return;
    }
    let addr = req.listen.as_deref().unwrap_or("127.0.0.1:4710");
    let server = serve::Server::bind(addr, cfg)
        .unwrap_or_else(|e| ExitCode::Failure.fail(&format!("serve: {e}")));
    // One structured, machine-greppable readiness line (CI waits on it).
    println!(
        "repro-serve: status=listening addr={} protocol=\"{}\"",
        server.local_addr(),
        serve::PROTOCOL
    );
    server.wait();
}

/// `repro serve-submit ADDR SPEC`: one-shot client — submit, stream,
/// write the daemon-delivered report bytes under `--out` exactly where
/// `repro sweep` would have written them.
fn run_serve_submit(req: &cli::ServeSubmitRequest) {
    let text = std::fs::read_to_string(&req.spec_path).unwrap_or_else(|e| {
        ExitCode::Failure.fail(&format!(
            "cannot read sweep spec {}: {e}",
            req.spec_path.display()
        ))
    });
    let mut job = sweep::SweepJob::new(text);
    job.quick = req.quick;
    job.seed_override = req.seed;
    let mut client = serve::Client::connect(&req.addr)
        .unwrap_or_else(|e| ExitCode::Failure.fail(&format!("serve-submit: {e}")));
    let results = client
        .run_batch(vec![serve::Submit { job, label: None }])
        .unwrap_or_else(|e| {
            // A rejection is the daemon telling us the job was invalid
            // — the same class of mistake as a bad spec on the CLI.
            if e.starts_with("rejected:") {
                ExitCode::Usage.fail(&format!("serve-submit: {e}"));
            }
            ExitCode::Failure.fail(&format!("serve-submit: {e}"));
        });
    let res = &results[0];
    if res.state != "done" {
        ExitCode::Failure.fail(&format!(
            "serve-submit: job {} ended {}{}",
            res.job,
            res.state,
            if res.reason.is_empty() {
                String::new()
            } else {
                format!(": {}", res.reason)
            }
        ));
    }
    std::fs::create_dir_all(&req.out)
        .unwrap_or_else(|e| ExitCode::Failure.fail(&format!("serve-submit: mkdir: {e}")));
    let json_path = req.out.join(format!("SWEEP_{}.json", res.name));
    let csv_path = req.out.join(format!("SWEEP_{}.csv", res.name));
    std::fs::write(&json_path, &res.report_json)
        .and_then(|()| std::fs::write(&csv_path, &res.report_csv))
        .unwrap_or_else(|e| ExitCode::Failure.fail(&format!("serve-submit: write: {e}")));
    println!(
        "serve-submit: job {} done — {} row{} streamed",
        res.job,
        res.rows.len(),
        if res.rows.len() == 1 { "" } else { "s" }
    );
    println!("  json: {}", json_path.display());
    println!("  csv:  {}", csv_path.display());
    if let Some(metrics_path) = &req.metrics {
        let metrics = client
            .metrics()
            .unwrap_or_else(|e| ExitCode::Failure.fail(&format!("serve-submit: metrics: {e}")));
        std::fs::write(metrics_path, metrics.encode())
            .unwrap_or_else(|e| ExitCode::Failure.fail(&format!("serve-submit: write: {e}")));
        println!("  metrics: {}", metrics_path.display());
    }
}

/// `repro serve-bench`: hammer a fresh in-process daemon with
/// concurrent clients; every delivered report is verified byte-for-
/// byte against its sequential reference before any number is printed.
fn run_serve_bench_cmd(req: &cli::ServeBenchRequest) {
    antdensity_telemetry::set_enabled(true);
    let mut cfg = if req.full {
        serve::ServeBenchConfig::full()
    } else {
        serve::ServeBenchConfig::quick()
    };
    if let Some(c) = req.clients {
        cfg.clients = c;
    }
    if let Some(j) = req.jobs {
        cfg.jobs_per_client = j;
    }
    let t0 = Instant::now();
    match serve::run_serve_bench(&cfg) {
        Ok(r) => {
            println!(
                "serve-bench: {} clients x {} jobs — {} delivered in {:.2}s \
                 ({:.0} jobs/s, {:.2} Msteps/s, queue peak {})",
                cfg.clients,
                cfg.jobs_per_client,
                r.jobs,
                r.secs,
                r.jobs_per_sec,
                r.agent_steps as f64 / r.secs.max(1e-9) / 1e6,
                r.queue_peak,
            );
            println!(
                "  every report byte-identical to its sequential CLI run \
                 [{:.1}s total]",
                t0.elapsed().as_secs_f64()
            );
        }
        Err(e) => ExitCode::Failure.fail(&format!("serve-bench failed: {e}")),
    }
}
