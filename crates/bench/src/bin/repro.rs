//! `repro` — regenerate the paper's quantitative claims.
//!
//! ```text
//! repro list                        # show all experiments
//! repro all [--quick]               # run everything
//! repro e3 e8 [--full]              # run selected experiments
//! repro bench                       # engine throughput -> BENCH_engine.json
//! repro bench --compare [BASE]      # …then gate against a baseline JSON
//! repro sweep SPEC [--quick]        # run a declarative parameter sweep
//! repro sweep SPEC --dry-run        # print the expanded/fused plan, run nothing
//! repro sweep SPEC --serve-shards   # distribute shards to worker processes
//! repro sweep-worker --stdio        # worker half (spawned by --serve-shards)
//! repro sweep-worker --connect ADDR # worker half for a --listen coordinator
//! repro check-metrics FILE          # validate a METRICS_*.json against its schema
//! options:
//!   --quick           small grids (default for experiments)
//!   --full            the EXPERIMENTS.md grids
//!   --seed N          master seed for experiments (default 20160725 —
//!                     PODC'16 day one; sweeps read their seed from the spec)
//!   --out DIR         CSV/JSON output directory (default results/)
//!   --tolerance F     bench gate: allowed fractional regression (default 0.25)
//! sweep options:
//!   --workers N       worker threads for shard fan-out (results never depend on it)
//!   --resume          continue from DIR/<name>.ckpt if present
//!   --max-shards K    stop after K newly executed fused shards (checkpoint survives)
//!   --no-checkpoint   do not write a checkpoint file
//!   --no-fuse         one simulation per cell instead of per fused shard
//!                     (bit-identical report, strictly more work — the cross-check)
//!   --dry-run         print cell/shard/trial counts and the fused-vs-unfused
//!                     simulation work, then exit without running
//!   --metrics [FILE]  write the execution-metrics snapshot (schema
//!                     `antdensity-metrics v2`; default DIR/METRICS_<name>.json —
//!                     supersedes the old SWEEP_<name>.timing.json)
//!   --trace FILE      write a Chrome-tracing / Perfetto JSON of the run's spans
//!   --progress        live stderr line per wave: shards done/total, Msteps/s, ETA
//! distributed sweep options:
//!   --serve-shards    lease fused shards to worker processes instead of
//!                     running them on the in-process pool; the report stays
//!                     byte-identical to the in-process run
//!   --workers-cmd N   spawn N child workers over stdin/stdout pipes
//!                     (default: the thread default; implies --serve-shards)
//!   --listen ADDR     accept TCP workers on ADDR instead of spawning children
//!                     (start them with `repro sweep-worker --connect ADDR`;
//!                     implies --serve-shards)
//!   --fault PLAN      deterministic fault injection for testing, e.g.
//!                     `kill:lease3,drop:RESULT@2` (see DESIGN.md)
//! exit codes: 0 ok; 1 perf gate regressed / IO failure; 2 usage; 3 partial sweep;
//!             4 distributed result mismatch (byte-unequal duplicate shard result)
//! ```
//!
//! Telemetry is always enabled for `sweep` runs (it observes, never
//! influences — reports are byte-identical with or without it, which
//! `tests/determinism.rs` pins); `--trace`/`--metrics` only choose
//! whether the collected data is written anywhere.

use antdensity_bench::experiments;
use antdensity_bench::perf;
use antdensity_bench::report::Effort;
use antdensity_sweep as sweep;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro <list|bench|sweep SPEC|sweep-worker|check-metrics FILE|all|e1..e17...> \
         [--quick|--full] [--seed N] [--out DIR] [--compare [BASELINE]] [--tolerance F] \
         [--workers N] [--resume] [--max-shards K] [--no-checkpoint] [--no-fuse] \
         [--dry-run] [--metrics [FILE]] [--trace FILE] [--progress] \
         [--serve-shards] [--workers-cmd N] [--listen ADDR] [--fault PLAN]"
    );
    std::process::exit(2);
}

struct Cli {
    effort: Effort,
    seed: u64,
    out: PathBuf,
    selected: Vec<String>,
    list_only: bool,
    bench_only: bool,
    compare: Option<PathBuf>,
    tolerance: f64,
    sweep_spec: Option<PathBuf>,
    check_metrics: Option<PathBuf>,
    workers: Option<usize>,
    resume: bool,
    max_shards: Option<usize>,
    no_checkpoint: bool,
    no_fuse: bool,
    dry_run: bool,
    /// `Some(None)` = `--metrics` with the default output path;
    /// `Some(Some(p))` = explicit file.
    metrics: Option<Option<PathBuf>>,
    trace: Option<PathBuf>,
    progress: bool,
    serve_shards: bool,
    workers_cmd: Option<usize>,
    listen: Option<String>,
    fault: Option<String>,
}

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli {
        effort: Effort::Quick,
        seed: 20_160_725,
        out: PathBuf::from("results"),
        selected: Vec::new(),
        list_only: false,
        bench_only: false,
        compare: None,
        tolerance: 0.25,
        sweep_spec: None,
        check_metrics: None,
        workers: None,
        resume: false,
        max_shards: None,
        no_checkpoint: false,
        no_fuse: false,
        dry_run: false,
        metrics: None,
        trace: None,
        progress: false,
        serve_shards: false,
        workers_cmd: None,
        listen: None,
        fault: None,
    };
    let mut i = 0;
    let mut expect_sweep_spec = false;
    let mut expect_metrics_file = false;
    while i < args.len() {
        let arg = args[i].as_str();
        if expect_sweep_spec && !arg.starts_with("--") {
            cli.sweep_spec = Some(PathBuf::from(arg));
            expect_sweep_spec = false;
            i += 1;
            continue;
        }
        if expect_metrics_file && !arg.starts_with("--") {
            cli.check_metrics = Some(PathBuf::from(arg));
            expect_metrics_file = false;
            i += 1;
            continue;
        }
        match arg {
            "--quick" => cli.effort = Effort::Quick,
            "--full" => cli.effort = Effort::Full,
            "bench" => cli.bench_only = true,
            "sweep" => expect_sweep_spec = true,
            "check-metrics" => expect_metrics_file = true,
            "--seed" => {
                i += 1;
                cli.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                cli.out = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--compare" => {
                // optional path operand; defaults to the committed baseline
                if let Some(next) = args.get(i + 1).filter(|n| !n.starts_with("--")) {
                    cli.compare = Some(PathBuf::from(next));
                    i += 1;
                } else {
                    cli.compare = Some(PathBuf::from("BENCH_baseline.json"));
                }
            }
            "--tolerance" => {
                i += 1;
                cli.tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                i += 1;
                cli.workers = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&w| w > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--resume" => cli.resume = true,
            "--max-shards" => {
                i += 1;
                cli.max_shards = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--no-checkpoint" => cli.no_checkpoint = true,
            "--no-fuse" => cli.no_fuse = true,
            "--dry-run" => cli.dry_run = true,
            "--metrics" => {
                // optional path operand; defaults to DIR/METRICS_<name>.json
                if let Some(next) = args.get(i + 1).filter(|n| !n.starts_with("--")) {
                    cli.metrics = Some(Some(PathBuf::from(next)));
                    i += 1;
                } else {
                    cli.metrics = Some(None);
                }
            }
            "--trace" => {
                i += 1;
                cli.trace = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--progress" => cli.progress = true,
            "--serve-shards" => cli.serve_shards = true,
            "--workers-cmd" => {
                i += 1;
                cli.workers_cmd = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&w| w > 0)
                        .unwrap_or_else(|| usage()),
                );
                cli.serve_shards = true;
            }
            "--listen" => {
                i += 1;
                cli.listen = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
                cli.serve_shards = true;
            }
            "--fault" => {
                i += 1;
                cli.fault = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "list" => cli.list_only = true,
            "all" => {
                cli.selected = experiments::all()
                    .iter()
                    .map(|e| e.id.to_string())
                    .collect()
            }
            other if other.starts_with('e') || other.starts_with('E') => {
                cli.selected.push(other.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    if expect_sweep_spec {
        eprintln!("`sweep` needs a spec file path");
        usage();
    }
    if expect_metrics_file {
        eprintln!("`check-metrics` needs a metrics JSON file path");
        usage();
    }
    cli
}

fn run_bench(cli: &Cli) {
    let t0 = Instant::now();
    let report = perf::run_engine_bench(cli.effort);
    print!("{}", report.render());
    match report.write_json(&cli.out) {
        Ok(path) => println!("  json: {}", path.display()),
        Err(e) => {
            eprintln!("  json write failed: {e}");
            std::process::exit(1);
        }
    }
    println!("  [bench finished in {:.1}s]", t0.elapsed().as_secs_f64());

    if let Some(baseline_path) = &cli.compare {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", baseline_path.display());
                std::process::exit(1);
            }
        };
        let baseline = perf::parse_json(&text).unwrap_or_else(|e| {
            eprintln!("baseline {} is malformed: {e}", baseline_path.display());
            std::process::exit(1);
        });
        let cmp = perf::compare(&report, &baseline, cli.tolerance).unwrap_or_else(|e| {
            eprintln!("comparison failed: {e}");
            std::process::exit(1);
        });
        print!("{}", cmp.render());
        if cmp.regressed() {
            eprintln!(
                "perf gate FAILED: median throughput ratio {:.3} below {:.2}",
                cmp.median_ratio,
                1.0 - cli.tolerance
            );
            std::process::exit(1);
        }
    }
}

/// `repro sweep SPEC --dry-run`: print what would run — expanded cells,
/// fused shards, trials, and the fused-vs-unfused simulation work —
/// without executing anything or touching the filesystem.
fn dry_run(spec: &sweep::SweepSpec, quick: bool) {
    let resolved = spec.resolve(quick).unwrap_or_else(|e| {
        eprintln!("sweep spec does not resolve: {e}");
        std::process::exit(2);
    });
    let (fused_sims, unfused_sims) = resolved.simulation_counts();
    let (fused_rounds, unfused_rounds) = resolved.simulated_round_counts();
    println!(
        "sweep {} ({} mode) — dry run, nothing executed",
        resolved.name, resolved.mode
    );
    println!(
        "  grid cells:       {} ({} skipped combination{})",
        resolved.cells.len(),
        resolved.skipped.len(),
        if resolved.skipped.len() == 1 { "" } else { "s" }
    );
    println!("  fused shards:     {}", resolved.fused.len());
    println!("  trials per cell:  {}", resolved.trials);
    println!(
        "  simulations:      {fused_sims} fused vs {unfused_sims} unfused ({:.2}x fewer passes)",
        unfused_sims as f64 / fused_sims as f64
    );
    println!(
        "  simulated rounds: {fused_rounds} fused vs {unfused_rounds} unfused ({:.2}x less work)",
        unfused_rounds as f64 / fused_rounds as f64
    );
    println!("  fingerprint:      {:016x}", resolved.fingerprint);
    for shard in &resolved.fused {
        let taps: Vec<String> = shard
            .taps
            .iter()
            .map(|t| format!("{}@{}", t.estimator, t.schedule()))
            .collect();
        let base = &resolved.cells[shard.cells[0]];
        println!(
            "    shard {:>3}: {} agents {} {} {} — {} cell{} [{}]",
            shard.index,
            base.topology,
            base.num_agents,
            base.movement,
            base.noise_label(),
            shard.cells.len(),
            if shard.cells.len() == 1 { "" } else { "s" },
            taps.join(", "),
        );
    }
}

/// Shared sweep-failure exit: one structured, machine-greppable stderr
/// line for the known failure classes, prose after, exit code 1.
fn sweep_failure(e: &str, spec_path: &Path, checkpoint: &Option<PathBuf>) -> ! {
    let ck = checkpoint
        .as_ref()
        .map_or_else(|| "?".to_string(), |p| p.display().to_string());
    if e.contains("different sweep configuration") || e.contains("cells, spec resolves") {
        eprintln!(
            "repro-sweep: status=error reason=checkpoint-fingerprint-mismatch \
             spec={} checkpoint={ck} action=\"delete the checkpoint or rerun \
             with the original spec and mode\"",
            spec_path.display(),
        );
    } else if e.contains("locked by running process") {
        eprintln!(
            "repro-sweep: status=error reason=checkpoint-locked spec={} checkpoint={ck} \
             action=\"wait for the other coordinator or remove the stale .lock file\"",
            spec_path.display(),
        );
    }
    eprintln!("sweep failed: {e}");
    std::process::exit(1);
}

/// The `--serve-shards` / `--listen` execution path: build the
/// distributed options from the CLI, run, and map [`sweep::DistError`]
/// to the exit-code contract (4 = byte-unequal duplicate results).
fn run_sweep_distributed_cmd(
    cli: &Cli,
    spec_path: &Path,
    spec: &sweep::SweepSpec,
    spec_text: &str,
    opts: &sweep::SweepOptions,
    checkpoint: &Option<PathBuf>,
) -> (sweep::SweepOutcome, sweep::DistStats) {
    let plan = match &cli.fault {
        Some(p) => sweep::FaultPlan::parse(p).unwrap_or_else(|e| {
            eprintln!("--fault plan: {e}");
            std::process::exit(2);
        }),
        None => sweep::FaultPlan::none(),
    };
    let transport = match &cli.listen {
        Some(addr) => sweep::Transport::Listen { addr: addr.clone() },
        None => sweep::Transport::Children {
            workers: cli
                .workers_cmd
                .unwrap_or_else(antdensity_walks::parallel::default_threads),
        },
    };
    let dopts = sweep::DistOptions {
        transport,
        plan,
        config: sweep::dist::DistConfig::default(),
        spec_text: Some(spec_text.to_string()),
        worker_argv: None,
    };
    match sweep::run_sweep_distributed(spec, opts, &dopts) {
        Ok(pair) => pair,
        Err(sweep::DistError::Mismatch { shard, report }) => {
            eprintln!("repro-sweep: status=error reason=result-mismatch {report}");
            eprintln!(
                "sweep aborted: workers returned byte-unequal results for shard {shard} \
                 (determinism violated — do not trust partial output)"
            );
            std::process::exit(4);
        }
        Err(sweep::DistError::Failed(e)) => sweep_failure(&e, spec_path, checkpoint),
    }
}

fn run_sweep_cmd(cli: &Cli, spec_path: &PathBuf) {
    let text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read sweep spec {}: {e}", spec_path.display());
            std::process::exit(1);
        }
    };
    let spec = sweep::SweepSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("sweep spec {}: {e}", spec_path.display());
        std::process::exit(2);
    });
    if cli.dry_run {
        dry_run(&spec, cli.effort == Effort::Quick);
        return;
    }
    // Telemetry observes, never influences (the determinism suite runs
    // with it on) — so sweeps always collect; the flags below only
    // decide whether anything is written out.
    antdensity_telemetry::set_enabled(true);
    if cli.trace.is_some() {
        antdensity_telemetry::set_tracing(true);
    }
    let checkpoint = if cli.no_checkpoint {
        None
    } else {
        Some(cli.out.join(format!("{}.ckpt", spec.name)))
    };
    let opts = sweep::SweepOptions {
        quick: cli.effort == Effort::Quick,
        fuse: !cli.no_fuse,
        workers: cli
            .workers
            .unwrap_or_else(antdensity_walks::parallel::default_threads),
        checkpoint: checkpoint.clone(),
        resume: cli.resume,
        max_shards: cli.max_shards,
        progress: cli.progress,
        ..sweep::SweepOptions::default()
    };
    let t0 = Instant::now();
    let (outcome, dist_stats) = if cli.serve_shards {
        let (outcome, stats) =
            run_sweep_distributed_cmd(cli, spec_path, &spec, &text, &opts, &checkpoint);
        (outcome, Some(stats))
    } else {
        let outcome = sweep::run_sweep(&spec, &opts)
            .unwrap_or_else(|e| sweep_failure(&e, spec_path, &checkpoint));
        (outcome, None)
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let report = sweep::build_report(&outcome);
    print!("{}", report.render());
    match report.write(&cli.out) {
        Ok((json, csv)) => {
            println!("  json: {}", json.display());
            println!("  csv:  {}", csv.display());
        }
        Err(e) => {
            eprintln!("  report write failed: {e}");
            std::process::exit(1);
        }
    }
    let snapshot = antdensity_telemetry::snapshot();
    if let Some(metrics_path) = &cli.metrics {
        let mut metrics =
            sweep::SweepMetrics::from_outcome(&outcome, opts.fuse, wall_s, snapshot.clone());
        if let Some(stats) = &dist_stats {
            metrics = metrics.with_dist(stats.clone());
        }
        let written = match metrics_path {
            Some(path) => {
                if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir).ok();
                }
                std::fs::write(path, metrics.to_json()).map(|()| path.clone())
            }
            None => metrics.write(&cli.out),
        };
        match written {
            Ok(path) => println!("  metrics: {}", path.display()),
            Err(e) => {
                eprintln!("  metrics write failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(trace_path) = &cli.trace {
        let events = antdensity_telemetry::take_trace();
        let json = antdensity_telemetry::chrome_trace_json(&events);
        match std::fs::write(trace_path, json) {
            Ok(()) => println!(
                "  trace: {} ({} events — open in Perfetto / chrome://tracing)",
                trace_path.display(),
                events.len()
            ),
            Err(e) => {
                eprintln!("  trace write failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(stats) = &dist_stats {
        println!(
            "  dist: {} worker{} served {} lease{} ({} reissued, {} respawn{}, \
             {} duplicate{}, {} degraded)",
            stats.workers_seen,
            if stats.workers_seen == 1 { "" } else { "s" },
            stats.leases,
            if stats.leases == 1 { "" } else { "s" },
            stats.reissues,
            stats.respawns,
            if stats.respawns == 1 { "" } else { "s" },
            stats.duplicates,
            if stats.duplicates == 1 { "" } else { "s" },
            stats.degraded,
        );
    } else if outcome.workers_effective < outcome.workers_requested {
        println!(
            "  workers: {} effective of {} requested (pool clamp)",
            outcome.workers_effective, outcome.workers_requested
        );
    }
    println!(
        "  [sweep {} ran {} shard{} (+{} resumed), {} simulation{} / {} rounds{}, in {wall_s:.1}s]",
        report.name,
        outcome.executed,
        if outcome.executed == 1 { "" } else { "s" },
        outcome.resumed,
        outcome.simulations,
        if outcome.simulations == 1 { "" } else { "s" },
        outcome.simulated_rounds,
        if opts.fuse { "" } else { " (unfused)" },
    );
    if outcome.complete {
        if let Some(ck) = &checkpoint {
            let _ = std::fs::remove_file(ck); // finished: nothing to resume
        }
        return;
    }
    // Partial run (exit code 3): one structured stderr line saying what
    // ran, why it stopped, and how to continue — built from the same
    // telemetry counters the metrics file carries.
    let total_shards = outcome.resolved.fused.len();
    let reason = if cli.max_shards.is_some() {
        "max-shards-budget"
    } else {
        "stopped-early"
    };
    let next = match &checkpoint {
        Some(_) => format!(
            "resume=\"repro sweep {} --resume --out {}\"",
            spec_path.display(),
            cli.out.display()
        ),
        None => "resume=none (--no-checkpoint discarded progress)".to_string(),
    };
    eprintln!(
        "repro-sweep: status=partial reason={reason} executed={}/{total_shards} \
         resumed={} cells_done={} trials_done={} checkpoint_writes={} {next}",
        outcome.executed,
        outcome.resumed,
        snapshot.counter("sweep.cells_completed"),
        snapshot.counter("sweep.trials"),
        snapshot.counter("sweep.checkpoint_writes"),
    );
    std::process::exit(3);
}

/// `repro sweep-worker [--stdio | --connect ADDR]`: the worker half of
/// a distributed sweep. Intercepted before normal CLI parsing — its
/// stdout carries protocol frames, not human output.
fn run_sweep_worker(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("--stdio") | None => sweep::dist::runtime::run_worker_stdio(),
        Some("--connect") => {
            let addr = args.get(1).ok_or("--connect needs an ADDR operand")?;
            sweep::dist::runtime::run_worker_connect(addr)
        }
        Some(other) => Err(format!(
            "unknown sweep-worker option `{other}` (want --stdio or --connect ADDR)"
        )),
    }
}

/// `repro check-metrics FILE`: assert a metrics file parses against the
/// `antdensity-metrics v2` schema (v1 files still accepted) — the CI
/// guard that the artifact other jobs grep stays well-formed.
fn run_check_metrics(path: &PathBuf) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read metrics file {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    match sweep::metrics::validate(&text) {
        Ok(summary) => println!(
            "metrics ok: schema=v{} sweep={} wall_s={:.3} counters={} histograms={} dist={}",
            summary.schema_version,
            summary.name,
            summary.wall_s,
            summary.counters,
            summary.histograms,
            if summary.dist { "yes" } else { "no" },
        ),
        Err(e) => {
            eprintln!(
                "metrics file {} violates {}: {e}",
                path.display(),
                sweep::metrics::SCHEMA
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args.first().map(String::as_str) == Some("sweep-worker") {
        if let Err(e) = run_sweep_worker(&args[1..]) {
            eprintln!("sweep-worker: {e}");
            std::process::exit(1);
        }
        return;
    }
    let cli = parse_cli(&args);

    if cli.list_only {
        println!("available experiments:");
        for def in experiments::all() {
            println!("  {:>4}  {}", def.id, def.summary);
        }
        return;
    }
    if let Some(metrics_path) = cli.check_metrics.clone() {
        if cli.bench_only || cli.sweep_spec.is_some() || !cli.selected.is_empty() {
            eprintln!("`check-metrics` cannot be combined with other commands");
            std::process::exit(2);
        }
        run_check_metrics(&metrics_path);
        return;
    }
    if let Some(spec_path) = cli.sweep_spec.clone() {
        if cli.bench_only || !cli.selected.is_empty() {
            eprintln!("`sweep` cannot be combined with `bench` or experiment ids");
            std::process::exit(2);
        }
        run_sweep_cmd(&cli, &spec_path);
        return;
    }
    if cli.bench_only {
        if !cli.selected.is_empty() {
            eprintln!(
                "`bench` cannot be combined with experiment ids (got {})",
                cli.selected.join(", ")
            );
            std::process::exit(2);
        }
        run_bench(&cli);
        return;
    }
    if cli.selected.is_empty() {
        usage();
    }

    let mode = match cli.effort {
        Effort::Quick => "quick",
        Effort::Full => "full",
    };
    println!("# antdensity repro — mode: {mode}, seed: {}\n", cli.seed);
    let t_all = Instant::now();
    for id in &cli.selected {
        let Some(def) = experiments::find(id) else {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        };
        let t0 = Instant::now();
        let report = (def.run)(cli.effort, cli.seed);
        let elapsed = t0.elapsed();
        print!("{}", report.render());
        match report.write_csv(&cli.out) {
            Ok(files) => {
                for f in files {
                    println!("  csv: {}", f.display());
                }
            }
            Err(e) => eprintln!("  csv write failed: {e}"),
        }
        println!("  [{} finished in {:.1}s]\n", def.id, elapsed.as_secs_f64());
    }
    println!(
        "# all selected experiments done in {:.1}s",
        t_all.elapsed().as_secs_f64()
    );
}
