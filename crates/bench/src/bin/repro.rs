//! `repro` — regenerate the paper's quantitative claims.
//!
//! ```text
//! repro list                 # show all experiments
//! repro all [--quick]       # run everything
//! repro e3 e8 [--full]      # run selected experiments
//! repro bench               # engine throughput -> BENCH_engine.json
//! options:
//!   --quick      small grids (default)
//!   --full       the EXPERIMENTS.md grids
//!   --seed N     master seed (default 20160725 — PODC'16 day one)
//!   --out DIR    CSV/JSON output directory (default results/)
//! ```

use antdensity_bench::experiments;
use antdensity_bench::perf;
use antdensity_bench::report::Effort;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: repro <list|bench|all|e1..e17...> [--quick|--full] [--seed N] [--out DIR]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut effort = Effort::Quick;
    let mut seed: u64 = 20_160_725;
    let mut out = PathBuf::from("results");
    let mut selected: Vec<String> = Vec::new();
    let mut list_only = false;
    let mut bench_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => effort = Effort::Quick,
            "--full" => effort = Effort::Full,
            "bench" => bench_only = true,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "list" => list_only = true,
            "all" => {
                selected = experiments::all()
                    .iter()
                    .map(|e| e.id.to_string())
                    .collect()
            }
            other if other.starts_with('e') || other.starts_with('E') => {
                selected.push(other.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }

    if list_only {
        println!("available experiments:");
        for def in experiments::all() {
            println!("  {:>4}  {}", def.id, def.summary);
        }
        return;
    }
    if bench_only {
        if !selected.is_empty() {
            eprintln!(
                "`bench` cannot be combined with experiment ids (got {})",
                selected.join(", ")
            );
            std::process::exit(2);
        }
        let t0 = Instant::now();
        let report = perf::run_engine_bench(effort);
        print!("{}", report.render());
        match report.write_json(&out) {
            Ok(path) => println!("  json: {}", path.display()),
            Err(e) => {
                eprintln!("  json write failed: {e}");
                std::process::exit(1);
            }
        }
        println!("  [bench finished in {:.1}s]", t0.elapsed().as_secs_f64());
        return;
    }
    if selected.is_empty() {
        usage();
    }

    let mode = match effort {
        Effort::Quick => "quick",
        Effort::Full => "full",
    };
    println!("# antdensity repro — mode: {mode}, seed: {seed}\n");
    let t_all = Instant::now();
    for id in &selected {
        let Some(def) = experiments::find(id) else {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        };
        let t0 = Instant::now();
        let report = (def.run)(effort, seed);
        let elapsed = t0.elapsed();
        print!("{}", report.render());
        match report.write_csv(&out) {
            Ok(files) => {
                for f in files {
                    println!("  csv: {}", f.display());
                }
            }
            Err(e) => eprintln!("  csv write failed: {e}"),
        }
        println!("  [{} finished in {:.1}s]\n", def.id, elapsed.as_secs_f64());
    }
    println!(
        "# all selected experiments done in {:.1}s",
        t_all.elapsed().as_secs_f64()
    );
}
