//! E14 — Section 5.1.4: burn-in.
//!
//! Claims: the total-variation distance of a seed-started walk to
//! stationarity decays geometrically with rate ≈ λ, so
//! `M = O(log(|E|/δ)/(1−λ))` steps suffice; and size estimates started
//! from a seed vertex are biased until burn-in is long enough, after
//! which they match stationary-start estimates.

use crate::report::{Effort, ExperimentReport};
use antdensity_graphs::{generators, spectral, AdjGraph, Topology};
use antdensity_netsize::algorithm2::{Algorithm2, StartMode};
use antdensity_netsize::{burnin, median};
use antdensity_stats::regression::SemiLogFit;
use antdensity_stats::table::{format_sig, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs E14.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e14",
        "Section 5.1.4: burn-in — TV decays at rate lambda; estimates unbias once TV < delta",
    );
    let v = effort.size(256, 512);
    let mut rng = SmallRng::seed_from_u64(seed);
    let graphs: Vec<(&str, AdjGraph)> = vec![
        (
            "regular8_fast",
            generators::random_regular(v, 8, 500, &mut rng).expect("regular"),
        ),
        (
            "ws_k4_b0.05_slow",
            generators::watts_strogatz(v, 4, 0.05, &mut rng).expect("ws"),
        ),
    ];

    // --- TV decay rate vs lambda ---
    let mut tv_table = Table::new(
        "tv_decay",
        &[
            "graph",
            "lambda",
            "fitted_tv_rate",
            "M_recommended",
            "TV_at_M",
        ],
    );
    let mut rates_ok = true;
    for (name, g) in &graphs {
        let lambda = {
            let mut r = SmallRng::seed_from_u64(seed ^ name.len() as u64);
            spectral::walk_matrix_lambda(g, 8000, &mut r).lambda
        };
        let m_rec = burnin::recommended_burnin(g, 0.05, Some(lambda), 1.0);
        let horizon = (2 * m_rec).clamp(50, 20_000);
        let profile = burnin::tv_profile(g, 0, horizon);
        // fit geometric decay over the mid-range (skip transient, stop
        // before numerical floor)
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (m, &tv) in profile.iter().enumerate() {
            if tv > 1e-9 && tv < 0.5 && m > 2 {
                xs.push(m as f64);
                ys.push(tv);
            }
        }
        let fit = SemiLogFit::fit(&xs, &ys);
        rates_ok &= (fit.ratio - lambda).abs() < 0.08;
        tv_table.row_owned(vec![
            name.to_string(),
            format_sig(lambda, 4),
            format_sig(fit.ratio, 4),
            m_rec.to_string(),
            format_sig(profile[(m_rec as usize).min(profile.len() - 1)], 5),
        ]);
    }
    tv_table.note("paper: TV ~ lambda^m; M = log(|E|/delta)/(1-lambda) brings TV below delta");
    report.push_table(tv_table);
    report.finding(format!(
        "fitted TV decay rate matches lambda within 0.08 on both graphs: {}",
        if rates_ok { "yes" } else { "NO" }
    ));

    // --- effect on the size estimate ---
    let (_, slow) = &graphs[1];
    let lambda_slow = {
        let mut r = SmallRng::seed_from_u64(seed ^ 0x51);
        spectral::walk_matrix_lambda(slow, 8000, &mut r).lambda
    };
    let m_full = burnin::recommended_burnin(slow, 0.05, Some(lambda_slow), 1.0);
    let mut bias_table = Table::new(
        "estimate_vs_burnin",
        &["burnin_steps", "median_estimate", "rel_err"],
    );
    let walks = effort.size(96, 160) as usize;
    let rounds = 48u64;
    let reps = 9;
    let mut errs = Vec::new();
    for &frac in &[0.0f64, 0.25, 1.0, 2.0] {
        let steps = (m_full as f64 * frac).round() as u64;
        let boosted = median::median_boosted(
            Algorithm2::new(walks, rounds),
            slow,
            slow.avg_degree(),
            StartMode::SeedWithBurnin {
                seed_vertex: 0,
                steps,
            },
            reps,
            seed ^ steps,
        );
        let rel = (boosted.estimate - v as f64).abs() / v as f64;
        errs.push(rel);
        bias_table.row_owned(vec![
            steps.to_string(),
            format_sig(boosted.estimate, 1),
            format_sig(rel, 3),
        ]);
    }
    bias_table.note(
        "paper: estimates from under-burned walks are biased (clustered walkers over-collide)",
    );
    report.push_table(bias_table);
    let improved = errs[0] > errs[2];
    report.finding(format!(
        "zero burn-in error {:.3} vs full-M burn-in error {:.3} — burn-in removes the seed-clustering bias: {}",
        errs[0],
        errs[2],
        if improved { "yes" } else { "NO" }
    ));
    let _ = slow.num_nodes();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_tv_rate_matches_lambda() {
        let r = run(Effort::Quick, 41);
        assert!(r.findings[0].ends_with("yes"), "{}", r.findings[0]);
    }
}
