//! E11 — Section 4.5: the hypercube.
//!
//! Lemma 25: re-collision probability `≤ (9/10)^{m−1} + 1/√A`. The
//! remarkable part: the floor is `1/√A`, not `1/A` — but local mixing
//! *improves* with dimension, so for `t = O(√A)` density estimation
//! matches independent sampling. We verify the bound exactly for several
//! dimensions and locate the geometric-to-floor crossover.

use crate::report::{Effort, ExperimentReport};
use antdensity_core::recollision;
use antdensity_graphs::{Hypercube, Topology};
use antdensity_stats::table::{format_sig, Table};

/// Runs E11.
pub fn run(effort: Effort, _seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e11",
        "Lemma 25/26: hypercube re-collision <= (9/10)^{m-1} + 1/sqrt(A)",
    );
    let dims_list: Vec<u32> = match effort {
        Effort::Quick => vec![8, 10, 12],
        Effort::Full => vec![8, 10, 12, 14, 16],
    };
    let mut table = Table::new(
        "hypercube_recollision",
        &[
            "dims",
            "A",
            "max_violation",
            "bound_ok",
            "floor_at_m64",
            "1_over_sqrtA",
        ],
    );
    let mut all_ok = true;
    let mut floors = Vec::new();
    for &dims in &dims_list {
        let h = Hypercube::new(dims);
        let a = h.num_nodes() as f64;
        let t_max = 64u64;
        let exact = recollision::exact_recollision_curve(&h, 0, t_max);
        let mut max_violation = 0.0f64;
        for m in 0..=t_max {
            let bound = if m == 0 {
                1.0 + 1.0 / a.sqrt()
            } else {
                (0.9f64).powi(m as i32 - 1) + 1.0 / a.sqrt()
            };
            max_violation = max_violation.max(exact[m as usize] - bound);
        }
        let ok = max_violation <= 1e-9;
        all_ok &= ok;
        let floor = exact[t_max as usize];
        floors.push((a, floor));
        table.row_owned(vec![
            dims.to_string(),
            (a as u64).to_string(),
            format_sig(max_violation.max(0.0), 4),
            if ok { "yes" } else { "NO" }.to_string(),
            format_sig(floor, 6),
            format_sig(1.0 / a.sqrt(), 6),
        ]);
    }
    table.note("paper: P(m) <= (9/10)^{m-1} + 1/sqrt(A) for every m (Lemma 25)");
    report.push_table(table);
    report.finding(format!(
        "Lemma 25 bound holds exactly for all dims in {:?}: {}",
        dims_list,
        if all_ok { "yes" } else { "NO" }
    ));

    // the long-lag floor should scale like ~1/A (the stationary collision
    // rate) which is *below* the paper's 1/sqrt(A) bound — the bound is
    // loose at the floor but tight in the geometric phase.
    let (a0, f0) = floors[0];
    let (a1, f1) = floors[floors.len() - 1];
    let scale = (f0 / f1).ln() / (a1 / a0).ln();
    report.finding(format!(
        "long-lag floor scales like A^(-{:.2}) (stationary collision rate ~1/A, comfortably below the 1/sqrt(A) bound)",
        scale
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_bound_holds_everywhere() {
        let r = run(Effort::Quick, 29);
        assert!(r.findings[0].ends_with("yes"), "{}", r.findings[0]);
        for row in r.tables[0].rows() {
            assert_eq!(row[3], "yes");
        }
    }
}
