//! E10 — Section 4.4: regular expanders.
//!
//! Lemma 23: for a regular expander with walk-matrix eigenvalue bound λ,
//! the re-collision probability satisfies `P[C|W] ≤ λ^m + 1/A`. We
//! measure λ by power iteration, evolve the exact re-collision curve, and
//! fit its geometric decay rate — which must match λ. The accuracy
//! consequence (error within `O(1/(1−λ))` of the complete graph) is
//! checked at matched parameters.

use super::util;
use crate::report::{Effort, ExperimentReport};
use antdensity_core::recollision;
use antdensity_graphs::{generators, spectral, AdjGraph, CompleteGraph};
use antdensity_stats::regression::SemiLogFit;
use antdensity_stats::table::{format_sig, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs E10.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e10",
        "Lemma 23/24: expander re-collision <= lambda^m + 1/A; accuracy within (1-lambda)^-2 of i.i.d.",
    );
    let a = effort.size(1024, 4096);
    let mut table = Table::new(
        "expander_recollision",
        &[
            "degree",
            "lambda_measured",
            "fitted_decay_rate",
            "bound_ok",
            "R2",
        ],
    );
    let mut rates_match = true;
    for &deg in &[8usize, 16] {
        let g: AdjGraph = {
            let mut rng = SmallRng::seed_from_u64(seed ^ deg as u64);
            generators::random_regular(a, deg, 500, &mut rng).expect("expander generation")
        };
        let lambda = {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xAA ^ deg as u64);
            spectral::walk_matrix_lambda(&g, 4000, &mut rng).lambda
        };
        let t_max = 64u64;
        let exact = recollision::exact_recollision_curve(&g, 0, t_max);
        // Rate fit: Lemma 24 upper-bounds |p_m(v) − 1/A| by lambda^m, so
        // the fitted geometric rate of the max-probability excess must be
        // AT MOST lambda (on random regular graphs it is in fact slightly
        // faster, by a Kesten-spectral-density m^{-3/2} polynomial factor
        // — the bound is an upper bound, not an equality). Use even lags
        // to dampen negative-eigenvalue oscillation.
        let maxp = recollision::exact_max_prob_curve(&g, 0, t_max);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for m in (2..=t_max).step_by(2) {
            let p = maxp[m as usize] - 1.0 / a as f64;
            if p > 2.0 / a as f64 {
                xs.push(m as f64);
                ys.push(p);
            }
        }
        let fit = SemiLogFit::fit(&xs, &ys);
        // Lemma 23 upper bound check at every lag
        let bound_ok =
            (0..=t_max).all(|m| exact[m as usize] <= lambda.powi(m as i32) + 1.0 / a as f64 + 1e-9);
        rates_match &= fit.ratio <= lambda + 0.05 && fit.ratio > 0.2;
        table.row_owned(vec![
            deg.to_string(),
            format_sig(lambda, 4),
            format_sig(fit.ratio, 4),
            if bound_ok { "yes" } else { "NO" }.to_string(),
            format_sig(fit.r_squared, 4),
        ]);
    }
    table.note("paper: P(m) <= lambda^m + 1/A (Lemma 23); decay rate geometric");
    report.push_table(table);
    report.finding(format!(
        "max-prob excess decays geometrically at rate <= lambda (Lemma 24 is an upper bound) and re-collision stays below the Lemma 23 envelope: {}",
        if rates_match { "yes" } else { "NO" }
    ));

    // --- accuracy vs complete graph ---
    let g: AdjGraph = {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x88);
        generators::random_regular(a, 8, 500, &mut rng).expect("expander generation")
    };
    let complete = CompleteGraph::new(a);
    let d = 0.05;
    let n_agents = ((d * a as f64).round() as usize).max(2) + 1;
    let runs = effort.trials(4, 12);
    let mut acc = Table::new(
        "expander_vs_complete",
        &["t", "q90_expander", "q90_complete", "ratio"],
    );
    let mut max_ratio: f64 = 0.0;
    for t in util::pow2_sweep(16, effort.size(1 << 8, 1 << 10)) {
        let qe = util::algorithm1_error_quantiles(&g, n_agents, t, runs, seed ^ t, &[0.9])[0];
        let qc =
            util::algorithm1_error_quantiles(&complete, n_agents, t, runs, seed ^ t ^ 0xE, &[0.9])
                [0];
        let ratio = qe / qc;
        max_ratio = max_ratio.max(ratio);
        acc.row_owned(vec![
            t.to_string(),
            format_sig(qe, 4),
            format_sig(qc, 4),
            format_sig(ratio, 3),
        ]);
    }
    acc.note("paper: ratio bounded by O(1/(1-lambda)) — constant in t");
    report.push_table(acc);
    report.finding(format!(
        "8-regular expander error within {:.2}x of the complete graph across the sweep (lambda ~ 0.66 => 1/(1-lambda) ~ 3)",
        max_ratio
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_geometric_decay_matches_lambda() {
        let r = run(Effort::Quick, 23);
        assert!(r.findings[0].ends_with("yes"), "{}", r.findings[0]);
        for row in r.tables[0].rows() {
            assert_eq!(row[3], "yes", "Lemma 23 bound violated: {row:?}");
        }
    }
}
