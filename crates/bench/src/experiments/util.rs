//! Shared helpers for experiment modules.

use antdensity_core::algorithm1::Algorithm1;
use antdensity_engine::{Scenario, TopologySpec};
use antdensity_graphs::Topology;
use antdensity_stats::quantile;
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::parallel;

/// Pools per-agent relative errors from `runs` independent Algorithm 1
/// executions and returns the requested error quantiles.
pub(crate) fn algorithm1_error_quantiles<T: Topology + Sync>(
    topo: &T,
    num_agents: usize,
    rounds: u64,
    runs: u64,
    seed: u64,
    qs: &[f64],
) -> Vec<f64> {
    let seq = SeedSequence::new(seed);
    let threads = parallel::default_threads();
    let alg = Algorithm1::new(num_agents, rounds);
    let per_run = parallel::run_trials(runs, threads, seq, |i, _| {
        alg.run(topo, seq.derive(i ^ 0xE1E1)).relative_errors()
    });
    let pooled: Vec<f64> = per_run.into_iter().flatten().collect();
    quantile::quantiles(&pooled, qs)
}

/// Scenario-based counterpart of [`algorithm1_error_quantiles`]: pools
/// per-agent relative errors from `runs` independent executions of an
/// Algorithm 1 [`Scenario`] on the engine and returns the requested error
/// quantiles. Trials fan out over threads; each trial runs the scenario
/// single-threaded (the outer fan-out already saturates the cores), and
/// every trial is a pure function of `(spec, derived seed)`.
pub(crate) fn scenario_error_quantiles(
    topology: TopologySpec,
    num_agents: usize,
    rounds: u64,
    runs: u64,
    seed: u64,
    qs: &[f64],
) -> Vec<f64> {
    let seq = SeedSequence::new(seed);
    let threads = parallel::default_threads();
    let spec = Scenario::new(topology, num_agents, rounds);
    let per_run = parallel::run_trials(runs, threads, seq, |i, _| {
        spec.run(seq.derive(i ^ 0xE1E1)).relative_errors()
    });
    let pooled: Vec<f64> = per_run.into_iter().flatten().collect();
    quantile::quantiles(&pooled, qs)
}

/// Pools per-agent estimates from `runs` executions; returns
/// `(grand_mean, standard_error_of_mean, sample_count)`.
pub(crate) fn algorithm1_mean_estimate<T: Topology + Sync>(
    topo: &T,
    num_agents: usize,
    rounds: u64,
    runs: u64,
    seed: u64,
) -> (f64, f64, u64) {
    let seq = SeedSequence::new(seed);
    let threads = parallel::default_threads();
    let alg = Algorithm1::new(num_agents, rounds);
    // Per-run means are i.i.d. across runs; agents within a run are
    // correlated, so the standard error is computed over run means.
    let run_means = parallel::run_trials(runs, threads, seq, |i, _| {
        alg.run(topo, seq.derive(i ^ 0xE2E2)).mean_estimate()
    });
    let n = run_means.len() as f64;
    let mean = run_means.iter().sum::<f64>() / n;
    let var = run_means
        .iter()
        .map(|m| (m - mean) * (m - mean))
        .sum::<f64>()
        / (n - 1.0).max(1.0);
    (mean, (var / n).sqrt(), runs)
}

/// Geometric sweep `start, start*2, …, ≤ end` (inclusive of `end` when it
/// is a power-of-two multiple of `start`).
pub(crate) fn pow2_sweep(start: u64, end: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut t = start;
    while t <= end {
        v.push(t);
        t = t.saturating_mul(2);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::Torus2d;

    #[test]
    fn pow2_sweep_covers_range() {
        assert_eq!(pow2_sweep(4, 32), vec![4, 8, 16, 32]);
        assert_eq!(pow2_sweep(5, 21), vec![5, 10, 20]);
        assert_eq!(pow2_sweep(8, 8), vec![8]);
    }

    #[test]
    fn error_quantiles_are_ordered() {
        let topo = Torus2d::new(8);
        let q = algorithm1_error_quantiles(&topo, 9, 32, 4, 1, &[0.5, 0.9]);
        assert_eq!(q.len(), 2);
        assert!(q[0] <= q[1]);
    }

    #[test]
    fn scenario_quantiles_match_shape_and_order() {
        let q =
            scenario_error_quantiles(TopologySpec::Torus2d { side: 8 }, 9, 32, 4, 1, &[0.5, 0.9]);
        assert_eq!(q.len(), 2);
        assert!(q[0] <= q[1]);
    }

    #[test]
    fn scenario_quantiles_deterministic() {
        let run =
            || scenario_error_quantiles(TopologySpec::Complete { nodes: 64 }, 9, 32, 6, 7, &[0.9]);
        assert_eq!(run(), run());
    }

    #[test]
    fn mean_estimate_near_truth() {
        let topo = Torus2d::new(8); // A = 64
        let (mean, se, _) = algorithm1_mean_estimate(&topo, 17, 64, 16, 2);
        let truth = 16.0 / 64.0;
        assert!(
            (mean - truth).abs() < 6.0 * se + 0.02,
            "mean {mean} se {se}"
        );
    }
}
