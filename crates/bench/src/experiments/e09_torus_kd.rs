//! E9 — Section 4.3: k-dimensional tori, k ≥ 3.
//!
//! Lemma 22: re-collision probability `O(1/(m+1)^{k/2} + 1/A)`, so
//! `B(t) = O(1)` and density estimation matches independent sampling up
//! to constants. We verify the per-k decay exponents exactly and compare
//! estimation error on the 3-d torus against the complete graph at
//! matched parameters — the ratio must stay bounded (no log factor).

use super::util;
use crate::report::{Effort, ExperimentReport};
use antdensity_core::recollision;
use antdensity_graphs::{CompleteGraph, Topology, TorusKd};
use antdensity_stats::regression::LogLogFit;
use antdensity_stats::table::{format_sig, Table};

/// Runs E9.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e9",
        "Lemma 22: k-dim torus re-collision ~ (m+1)^{-k/2}; k >= 3 matches independent sampling",
    );

    // --- exact decay exponents for k = 2, 3, 4 ---
    let mut slope_table = Table::new(
        "kd_torus_recollision_slopes",
        &["k", "side", "A", "fitted_slope", "paper_slope", "R2"],
    );
    let configs: &[(u32, u64)] = &[(2, 48), (3, 32), (4, 12)];
    let mut slopes_ok = true;
    for &(k, side) in configs {
        let torus = TorusKd::new(k, side);
        let a = torus.num_nodes() as f64;
        let t_max = effort.size(96, 256);
        let exact = recollision::exact_recollision_curve(&torus, 0, t_max);
        // Fit from m = 4 onward (small-m lattice corrections steepen the
        // apparent slope) and stop well before the 1/A stationarity floor.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for m in 4..=t_max {
            let p = exact[m as usize] - 1.0 / a;
            if p > 10.0 / a {
                xs.push(m as f64 + 1.0);
                ys.push(p);
            }
        }
        let fit = LogLogFit::fit(&xs, &ys);
        let predicted = -(k as f64) / 2.0;
        slopes_ok &= (fit.exponent - predicted).abs() < 0.3;
        slope_table.row_owned(vec![
            k.to_string(),
            side.to_string(),
            (a as u64).to_string(),
            format_sig(fit.exponent, 3),
            format_sig(predicted, 3),
            format_sig(fit.r_squared, 4),
        ]);
    }
    slope_table.note("paper: slope = -k/2 per Lemma 22 (k = 2 shown for contrast)");
    report.push_table(slope_table);
    report.finding(format!(
        "re-collision decay exponents match -k/2 for k = 2, 3, 4: {}",
        if slopes_ok { "yes" } else { "NO" }
    ));

    // --- 3-d torus accuracy vs complete graph ---
    let side3 = effort.size(10, 16);
    let torus3 = TorusKd::new(3, side3);
    let a3 = torus3.num_nodes();
    let complete = CompleteGraph::new(a3);
    let d = 0.05;
    let n_agents = ((d * a3 as f64).round() as usize).max(2) + 1;
    let runs = effort.trials(4, 12);
    let mut acc_table = Table::new(
        "torus3d_vs_complete",
        &["t", "q90_torus3d", "q90_complete", "ratio"],
    );
    let mut ratios = Vec::new();
    for t in util::pow2_sweep(16, effort.size(1 << 9, 1 << 11)) {
        let q3 = util::algorithm1_error_quantiles(&torus3, n_agents, t, runs, seed ^ t, &[0.9])[0];
        let qc =
            util::algorithm1_error_quantiles(&complete, n_agents, t, runs, seed ^ t ^ 0x3D, &[0.9])
                [0];
        let ratio = q3 / qc;
        ratios.push(ratio);
        acc_table.row_owned(vec![
            t.to_string(),
            format_sig(q3, 4),
            format_sig(qc, 4),
            format_sig(ratio, 3),
        ]);
    }
    let max_ratio = ratios.iter().cloned().fold(0.0, f64::max);
    acc_table.note("paper: ratio bounded by a constant (B(t) = O(1)) — no log growth");
    report.push_table(acc_table);
    report.finding(format!(
        "3-d torus / complete-graph error ratio stays <= {:.2} across the whole t sweep — matches independent sampling up to constants",
        max_ratio
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_slopes_match_k_over_2() {
        let r = run(Effort::Quick, 19);
        assert!(r.findings[0].ends_with("yes"), "{}", r.findings[0]);
    }

    #[test]
    fn quick_run_ratio_bounded() {
        let r = run(Effort::Quick, 19);
        let max_ratio: f64 = r.findings[1]
            .split("<= ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            max_ratio < 6.0,
            "ratio {max_ratio} should stay constant-ish"
        );
    }
}
