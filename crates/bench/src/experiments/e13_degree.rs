//! E13 — Theorem 31: average-degree estimation by inverse-degree
//! sampling (Algorithm 3).
//!
//! Claims: the estimator `D = Σ 1/deg(wⱼ)/n` is unbiased for `1/deḡ`;
//! its error decays like `1/√n`; and the budget
//! `n = Θ(deḡ/(deg_min·ε²·δ))` delivers `(1±ε)` accuracy w.p. `1−δ`.

use crate::report::{Effort, ExperimentReport};
use antdensity_graphs::{generators, AdjGraph};
use antdensity_netsize::degree;
use antdensity_stats::regression::LogLogFit;
use antdensity_stats::table::{format_sig, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs E13.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e13",
        "Theorem 31: inverse-degree sampling estimates the average degree at the 1/sqrt(n) rate",
    );
    let v = effort.size(400, 1000);
    let mut rng = SmallRng::seed_from_u64(seed);
    let graphs: Vec<(&str, AdjGraph)> = vec![
        (
            "ba_m3",
            generators::barabasi_albert(v, 3, &mut rng).expect("ba"),
        ),
        (
            "ws_k6_b0.1",
            generators::watts_strogatz(v, 6, 0.1, &mut rng).expect("ws"),
        ),
        (
            "regular8",
            generators::random_regular(v, 8, 500, &mut rng).expect("regular"),
        ),
    ];

    let reps = effort.trials(30, 100);
    let mut table = Table::new("degree_error_decay", &["graph", "n_samples", "rms_rel_err"]);
    let mut exponent_ok = true;
    for (name, g) in &graphs {
        let truth = 1.0 / g.avg_degree();
        let mut ns = Vec::new();
        let mut errs = Vec::new();
        for k in 4..=11u32 {
            let n = 1usize << k;
            let rms = {
                let se: f64 = (0..reps)
                    .map(|r| {
                        let est = degree::estimate_avg_degree(g, n, seed ^ (r << 13) ^ n as u64);
                        let rel = (est.inverse_avg_degree - truth) / truth;
                        rel * rel
                    })
                    .sum::<f64>()
                    / reps as f64;
                se.sqrt()
            };
            ns.push(n as f64);
            errs.push(rms.max(1e-12));
            table.row_owned(vec![name.to_string(), n.to_string(), format_sig(rms, 5)]);
        }
        let fit = LogLogFit::fit(&ns, &errs);
        // regular graphs are exact at any n; only check the decay where
        // there is error to decay.
        if errs[0] > 1e-9 {
            exponent_ok &= (fit.exponent + 0.5).abs() < 0.15;
        }
    }
    table.note("paper: rms error ~ n^{-1/2} (Chebyshev on i.i.d. inverse degrees)");
    report.push_table(table);
    report.finding(format!(
        "error decay exponent is -1/2 (within 0.15) on irregular graphs: {}",
        if exponent_ok { "yes" } else { "NO" }
    ));

    // budget coverage
    let (eps, delta) = (0.1, 0.1);
    let mut cov = Table::new(
        "theorem31_budget",
        &["graph", "required_n", "coverage", "target"],
    );
    let mut cov_ok = true;
    for (name, g) in &graphs {
        let n = degree::required_samples(g, eps, delta, 1.0);
        let truth = 1.0 / g.avg_degree();
        let trials = effort.trials(40, 200);
        let hit = (0..trials)
            .filter(|&r| {
                let est = degree::estimate_avg_degree(g, n, seed ^ 0xD0 ^ (r << 7));
                (est.inverse_avg_degree - truth).abs() <= eps * truth
            })
            .count();
        let coverage = hit as f64 / trials as f64;
        cov_ok &= coverage >= 1.0 - delta;
        cov.row_owned(vec![
            name.to_string(),
            n.to_string(),
            format_sig(coverage, 3),
            format_sig(1.0 - delta, 3),
        ]);
    }
    cov.note("paper: n = deg_avg/(deg_min eps^2 delta) samples give coverage >= 1 - delta");
    report.push_table(cov);
    report.finding(format!(
        "Theorem 31 budget achieves >= 1 - delta coverage on all graphs: {}",
        if cov_ok { "yes" } else { "NO" }
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_validates_budget_and_rate() {
        let r = run(Effort::Quick, 37);
        assert!(r.findings[0].ends_with("yes"), "{}", r.findings[0]);
        assert!(r.findings[1].ends_with("yes"), "{}", r.findings[1]);
    }
}
