//! E15 — Section 5.2 and Section 6.1: property frequency, noisy sensing,
//! biased walks.
//!
//! * **Frequency** (§5.2): `f̃_P = d̃_P/d̃` lands in the two-sided
//!   `(1∓ε)/(1±ε)` band around `f_P` for several property fractions.
//! * **Noise** (§6.1): with detection probability `p` and spurious rate
//!   `s`, the raw estimate concentrates on `p·d + s`; the correction
//!   `(d̃−s)/p` restores unbiasedness.
//! * **Bias** (§6.1): a perturbed step distribution (nonuniform over the
//!   five moves) leaves the estimator unbiased — drift is common to all
//!   agents, so relative motion is still a mean-zero random walk — and
//!   the error still decays like `~t^{-1/2}` (constants change only).

use super::util;
use crate::report::{Effort, ExperimentReport};
use antdensity_core::algorithm1::Algorithm1;
use antdensity_core::frequency::FrequencyEstimation;
use antdensity_core::noise::CollisionNoise;
use antdensity_graphs::{Topology, Torus2d};
use antdensity_stats::regression::LogLogFit;
use antdensity_stats::table::{format_sig, Table};
use antdensity_walks::movement::MovementModel;

/// Runs E15.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e15",
        "Section 5.2 + 6.1: relative frequency estimation; noisy detection corrected; biased walks still concentrate",
    );
    let side = effort.size(16, 32);
    let torus = Torus2d::new(side);
    let a = torus.num_nodes();
    let num_agents = ((0.1 * a as f64) as usize).max(20) + 1;
    let d = (num_agents as f64 - 1.0) / a as f64;

    // ---------- Part A: frequency ----------
    let rounds = effort.size(512, 2048);
    let mut freq_table = Table::new(
        "property_frequency",
        &["f_P", "mean_f_estimate", "rel_err", "frac_in_band_eps_0.3"],
    );
    let mut freq_ok = true;
    for &frac in &[0.1f64, 0.25, 0.5] {
        let k = ((num_agents as f64) * frac).round() as usize;
        // Small property groups (k as low as 3) make a single run's mean
        // swing by ~15% on seed luck alone; average over a few master
        // seeds so the check tests the estimator, not the seed.
        let freq_runs = 3u64;
        let mut truth = 0.0;
        let mut mean = 0.0;
        let mut band = 0.0;
        for r in 0..freq_runs {
            let run = FrequencyEstimation::new(num_agents, k, rounds)
                .run(&torus, seed ^ k as u64 ^ (r << 17));
            truth = run.true_frequency();
            mean += run.mean_frequency().unwrap_or(0.0) / freq_runs as f64;
            band += run.fraction_within(0.3) / freq_runs as f64;
        }
        let rel = (mean - truth).abs() / truth;
        freq_ok &= rel < 0.15;
        freq_table.row_owned(vec![
            format_sig(truth, 3),
            format_sig(mean, 4),
            format_sig(rel, 3),
            format_sig(band, 3),
        ]);
    }
    freq_table.note("paper: f_estimate in [(1-e)/(1+e) f, (1+e)/(1-e) f] whp");
    report.push_table(freq_table);
    report.finding(format!(
        "relative-frequency estimates within 15% of truth for f_P in {{0.1, 0.25, 0.5}}: {}",
        if freq_ok { "yes" } else { "NO" }
    ));

    // ---------- Part B: noisy collision detection ----------
    let runs = effort.trials(6, 20);
    let mut noise_table = Table::new(
        "noisy_detection",
        &[
            "detect_p",
            "spurious_s",
            "raw_mean",
            "expected_raw",
            "corrected_mean",
            "d",
        ],
    );
    let mut noise_ok = true;
    for &(p, s) in &[(1.0f64, 0.0f64), (0.7, 0.0), (0.4, 0.0), (0.7, 0.02)] {
        let noise = CollisionNoise::new(p, s);
        let alg = Algorithm1::new(num_agents, rounds).with_noise(noise);
        let mut raw_sum = 0.0;
        for r in 0..runs {
            raw_sum += alg
                .run(
                    &torus,
                    seed ^ 0xB0 ^ (r << 9) ^ (p.to_bits() >> 40) ^ (s.to_bits() >> 44),
                )
                .mean_estimate();
        }
        let raw_mean = raw_sum / runs as f64;
        let expected = p * d + s;
        let corrected = noise.correct(raw_mean);
        noise_ok &= (corrected - d).abs() / d < 0.1;
        noise_table.row_owned(vec![
            format_sig(p, 2),
            format_sig(s, 3),
            format_sig(raw_mean, 4),
            format_sig(expected, 4),
            format_sig(corrected, 4),
            format_sig(d, 4),
        ]);
    }
    noise_table.note("paper (6.1): raw concentrates on p*d + s; (raw - s)/p restores d");
    report.push_table(noise_table);
    report.finding(format!(
        "noise-corrected estimates within 10% of d for all (p, s) settings: {}",
        if noise_ok { "yes" } else { "NO" }
    ));

    // ---------- Part C: biased (perturbed) walks ----------
    let bias = MovementModel::biased(vec![0.3, 0.2, 0.3, 0.2]); // drift +x, +y
    let mut bias_table = Table::new("biased_walk_error", &["t", "q90_biased", "q90_pure"]);
    let mut ts = Vec::new();
    let mut qb = Vec::new();
    for t in util::pow2_sweep(32, effort.size(1 << 9, 1 << 11)) {
        let pooled_biased: Vec<f64> = (0..runs)
            .flat_map(|r| {
                Algorithm1::new(num_agents, t)
                    .with_movement(bias.clone())
                    .run(&torus, seed ^ 0xB1A5 ^ (r << 11) ^ t)
                    .relative_errors()
            })
            .collect();
        let q_biased = antdensity_stats::quantile::quantile(&pooled_biased, 0.9);
        let q_pure =
            util::algorithm1_error_quantiles(&torus, num_agents, t, runs, seed ^ t ^ 0xF, &[0.9])
                [0];
        ts.push(t as f64);
        qb.push(q_biased.max(1e-12));
        bias_table.row_owned(vec![
            t.to_string(),
            format_sig(q_biased, 4),
            format_sig(q_pure, 4),
        ]);
    }
    let fit = LogLogFit::fit(&ts, &qb);
    bias_table.note("paper (6.1): common drift cancels in relative motion; concentration survives");
    report.push_table(bias_table);
    report.finding(format!(
        "biased-walk error exponent vs t: {:.3} (still ~ -0.5; bias changes constants, not rates), R^2 = {:.3}",
        fit.exponent, fit.r_squared
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_all_three_parts_pass() {
        let r = run(Effort::Quick, 43);
        assert!(r.findings[0].ends_with("yes"), "{}", r.findings[0]);
        assert!(r.findings[1].ends_with("yes"), "{}", r.findings[1]);
        let slope: f64 = r.findings[2]
            .split(':')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(slope < -0.25, "biased walk must still concentrate: {slope}");
    }
}
