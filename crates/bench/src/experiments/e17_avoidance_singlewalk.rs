//! E17 (extension) — two more of the paper's discussion items, measured:
//!
//! * **Collision avoidance** (§6.1): the paper sketches two behavioural
//!   variants — "agents sense and sometimes avoid collisions" and "move
//!   away from previously encountered ants" — motivated by field evidence
//!   [GPT93, NTD05] that real encounter rates can run *below* the
//!   random-walk prediction. Measuring both produces a genuinely
//!   interesting split: **freeze-style cell avoidance RAISES encounter
//!   rates** (a just-collided pair hemmed in by occupied neighbours
//!   freezes and re-collides — stickiness), while **post-encounter
//!   dispersal ("flee") LOWERS them**, matching the field data. Only the
//!   second variant explains the observations the paper cites.
//! * **Single-walk size estimation** (§5.1 / §6.3.3): counting repeat
//!   visits of one walk ([LL12, KBM12]) versus the paper's multi-walk
//!   collisions. The thinning gap controls the dependence bias — the
//!   same local-mixing story as everywhere else in the paper.

use crate::report::{Effort, ExperimentReport};
use antdensity_graphs::{generators, Topology, Torus2d};
use antdensity_netsize::singlewalk::SingleWalk;
use antdensity_stats::rng::SeedSequence;
use antdensity_stats::table::{format_sig, Table};
use antdensity_walks::arena::SyncArena;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs E17.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e17",
        "Extension (paper 6.1/6.3.3): collision avoidance lowers encounter rates; single-walk size estimation and its thinning bias",
    );

    // ---------- the two Section 6.1 behavioural variants ----------
    let side = effort.size(24, 32);
    let torus = Torus2d::new(side);
    let agents = ((0.15 * torus.num_nodes() as f64) as usize).max(10);
    let d = (agents as f64 - 1.0) / torus.num_nodes() as f64;
    let rounds = effort.size(256, 1024);
    let runs = effort.trials(3, 8);
    let measure = |avoid: Option<f64>, flee: bool, tag: u64| -> f64 {
        let mut rate_sum = 0.0;
        for r in 0..runs {
            let seq = SeedSequence::new(seed ^ (r << 23) ^ tag);
            let mut rng = seq.rng(0);
            let mut arena = SyncArena::new(&torus, agents);
            arena.set_avoidance(avoid);
            arena.set_flee(flee);
            arena.place_uniform(&mut rng);
            let mut total = 0u64;
            for _ in 0..rounds {
                arena.step_round(&mut rng);
                total += (0..agents).map(|a| arena.count(a) as u64).sum::<u64>();
            }
            rate_sum += total as f64 / (agents as f64 * rounds as f64);
        }
        rate_sum / runs as f64
    };
    let mut avoid_table = Table::new(
        "behavioural_variants_encounter_rates",
        &["behaviour", "mean_rate", "rate_over_d"],
    );
    let pure = measure(None, false, 0);
    avoid_table.row_owned(vec![
        "pure walk (paper model)".to_string(),
        format_sig(pure, 4),
        format_sig(pure / d, 3),
    ]);
    let mut freeze_rates = Vec::new();
    for &q in &[0.5f64, 1.0] {
        let rate = measure(Some(q), false, 100 + q.to_bits());
        freeze_rates.push(rate);
        avoid_table.row_owned(vec![
            format!("freeze-avoid q={q}"),
            format_sig(rate, 4),
            format_sig(rate / d, 3),
        ]);
    }
    let flee_rate = measure(None, true, 777);
    avoid_table.row_owned(vec![
        "flee after encounter".to_string(),
        format_sig(flee_rate, 4),
        format_sig(flee_rate / d, 3),
    ]);
    avoid_table.note("paper cites [GPT93, NTD05]: real encounter rates fall BELOW the pure-walk prediction — only the flee variant reproduces that");
    report.push_table(avoid_table);
    let split_ok = flee_rate < pure && freeze_rates.iter().all(|&r| r > pure);
    report.finding(format!(
        "behavioural split: flee rate {} < pure rate {} < freeze-avoid rates (up to {}) — dispersal, not cell-avoidance, explains below-prediction field encounter rates: {}",
        format_sig(flee_rate / d, 3),
        format_sig(pure / d, 3),
        format_sig(freeze_rates.iter().cloned().fold(0.0, f64::max) / d, 3),
        if split_ok { "yes" } else { "NO" }
    ));

    // ---------- single-walk size estimation ----------
    let v = effort.size(256, 512);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51);
    let g = generators::random_regular(v, 8, 500, &mut rng).expect("regular graph");
    let samples = effort.size(150, 300) as usize;
    let reps = effort.trials(9, 21);
    let mut sw_table = Table::new(
        "singlewalk_thinning",
        &["gap", "median_estimate", "rel_bias", "queries"],
    );
    let mut biases = Vec::new();
    for &gap in &[1u64, 4, 16, 64] {
        let sw = SingleWalk::new(samples, gap);
        let mut ests: Vec<f64> = (0..reps)
            .map(|r| {
                let mut srng = SmallRng::seed_from_u64(seed ^ r ^ gap);
                sw.run(
                    &g,
                    8.0,
                    g.sample_stationary(&mut srng),
                    seed ^ (r << 5) ^ gap,
                )
                .estimate
            })
            .filter(|e| e.is_finite())
            .collect();
        ests.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = ests[ests.len() / 2];
        let bias = (med - v as f64) / v as f64;
        biases.push(bias);
        sw_table.row_owned(vec![
            gap.to_string(),
            format_sig(med, 1),
            format_sig(bias, 3),
            (samples as u64 * gap).to_string(),
        ]);
    }
    sw_table.note("small gaps: correlated samples over-collide and the estimate under-shoots; large gaps approach the multi-walk ideal");
    report.push_table(sw_table);
    report.finding(format!(
        "single-walk estimator bias shrinks from {} (gap 1) to {} (gap 64) — thinning buys independence with queries, the paper's local-mixing trade-off",
        format_sig(biases[0], 3),
        format_sig(*biases.last().unwrap(), 3)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_behavioural_split() {
        let r = run(Effort::Quick, 53);
        assert!(r.findings[0].ends_with("yes"), "{}", r.findings[0]);
    }

    #[test]
    fn quick_run_thinning_reduces_bias() {
        let r = run(Effort::Quick, 53);
        let rows = r.tables[1].rows();
        let bias_first: f64 = rows.first().unwrap()[2].parse().unwrap();
        let bias_last: f64 = rows.last().unwrap()[2].parse().unwrap();
        assert!(
            bias_last.abs() < bias_first.abs(),
            "gap-64 bias {bias_last} should beat gap-1 bias {bias_first}"
        );
        assert!(bias_first < -0.1, "gap-1 must under-shoot: {bias_first}");
    }
}
