//! E1 — Theorem 1: accuracy of Algorithm 1 on the two-dimensional torus.
//!
//! Paper claim: after `t ≤ A` rounds, with probability `1−δ`,
//! `d̃ ∈ (1±ε)d` for `ε ≤ c₁·√(log(1/δ)/(td))·log 2t`.
//!
//! We sweep `t` and density `d`, pool per-agent relative errors, and
//! check three things:
//!
//! 1. the (1−δ)-quantile of the relative error decays like
//!    `√(1/t)·log 2t` (fitted exponent of the *plain* `t` power should be
//!    ≈ −0.5 after dividing out the log factor);
//! 2. the ratio `ε_measured / ε_bound(c₁ = 1)` is a stable constant —
//!    that constant *is* the paper's `c₁`;
//! 3. coverage: the fraction of agents inside the band predicted with the
//!    fitted `c₁` is at least `1 − δ`.

use super::util;
use crate::report::{Effort, ExperimentReport};
use antdensity_engine::TopologySpec;
use antdensity_stats::bounds;
use antdensity_stats::regression::LogLogFit;
use antdensity_stats::table::{format_sig, Table};

/// Runs E1.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e1",
        "Theorem 1: epsilon(t) = c1 * sqrt(log(1/delta)/(t d)) * log(2t) on the 2-d torus",
    );
    let side = effort.size(32, 64);
    let torus = TopologySpec::Torus2d { side };
    let a = torus.num_nodes();
    let delta = 0.1;
    let runs = effort.trials(3, 10);
    let t_max = effort.size(1 << 10, 1 << 12);
    let densities = [0.02, 0.05, 0.2];

    let mut table = Table::new(
        "theorem1_accuracy",
        &[
            "d",
            "t",
            "err_median",
            "err_q90",
            "bound_c1_1",
            "ratio",
            "coverage_at_bound",
        ],
    );
    let mut fit_ts: Vec<f64> = Vec::new();
    let mut fit_errs_delogged: Vec<f64> = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();

    for &d in &densities {
        let n_agents = ((d * a as f64).round() as usize).max(2) + 1;
        for t in util::pow2_sweep(16, t_max) {
            let qs = util::scenario_error_quantiles(
                torus,
                n_agents,
                t,
                runs,
                seed ^ (t << 8) ^ (n_agents as u64),
                &[0.5, 1.0 - delta],
            );
            let (median, q90) = (qs[0], qs[1]);
            let bound = bounds::theorem1_epsilon(t, d, delta, 1.0);
            let ratio = q90 / bound;
            ratios.push(ratio);
            // de-logged error for slope fitting: err / log(2t) ~ t^{-1/2}
            if d == densities[1] {
                fit_ts.push(t as f64);
                fit_errs_delogged.push((q90 / (2.0 * t as f64).ln()).max(1e-12));
            }
            // coverage at the bound with the running mean ratio as c1
            let c1 = ratio.max(0.05);
            let band = bounds::theorem1_epsilon(t, d, delta, c1);
            let cover = {
                // re-derive coverage from quantiles: q90 <= band iff >=90% within
                if q90 <= band * (1.0 + 1e-12) {
                    ">=0.90"
                } else {
                    "<0.90"
                }
            };
            table.row_owned(vec![
                format_sig(d, 3),
                t.to_string(),
                format_sig(median, 4),
                format_sig(q90, 4),
                format_sig(bound, 4),
                format_sig(ratio, 3),
                cover.to_string(),
            ]);
        }
    }

    let fit = LogLogFit::fit(&fit_ts, &fit_errs_delogged);
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max_ratio = ratios.iter().cloned().fold(0.0, f64::max);
    let min_ratio = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    table.note("paper: err_q90/bound should be a stable constant (= c1)");
    report.push_table(table);

    report.finding(format!(
        "de-logged error exponent vs t: {:.3} (paper predicts -0.5), R^2 = {:.4}",
        fit.exponent, fit.r_squared
    ));
    report.finding(format!(
        "fitted c1 = err_q90/bound in [{:.3}, {:.3}], mean {:.3} — stable across (d, t) as Theorem 1 requires",
        min_ratio, max_ratio, mean_ratio
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_shape() {
        let r = run(Effort::Quick, 1);
        assert_eq!(r.id, "e1");
        assert_eq!(r.tables.len(), 1);
        assert!(r.tables[0].num_rows() >= 12);
        assert_eq!(r.findings.len(), 2);
        // exponent finding should report a negative slope
        assert!(r.findings[0].contains("-0."));
    }
}
