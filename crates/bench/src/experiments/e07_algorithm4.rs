//! E7 — Theorem 32: the independent-sampling Algorithm 4.
//!
//! Claims: (a) `ε = O(√(log(1/δ)/td))` with *no* log-t factor — the
//! error decays like a clean `t^{-1/2}`; (b) the `c mod t` step exactly
//! cancels the spurious collisions of co-located lock-step walkers.

use crate::report::{Effort, ExperimentReport};
use antdensity_core::algorithm4::Algorithm4;
use antdensity_graphs::{NodeId, Topology, Torus2d};
use antdensity_stats::quantile;
use antdensity_stats::regression::LogLogFit;
use antdensity_stats::rng::SeedSequence;
use antdensity_stats::table::{format_sig, Table};
use antdensity_walks::parallel;

/// Runs E7.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e7",
        "Theorem 32: Algorithm 4 achieves eps = O(sqrt(log(1/delta)/(t d))) — no log factor",
    );
    let side = effort.size(128, 512);
    let torus = Torus2d::new(side);
    let a = torus.num_nodes();
    let d = 0.02;
    let n_agents = ((d * a as f64).round() as usize).max(2) + 1;
    let runs = effort.trials(4, 10);
    let threads = parallel::default_threads();
    let seq = SeedSequence::new(seed);

    let mut table = Table::new(
        "algorithm4_accuracy",
        &["t", "err_median", "err_q90", "t32_bound_c1", "ratio"],
    );
    let ts: Vec<u64> = [16u64, 32, 64, 128, 256, 448]
        .into_iter()
        .filter(|&t| t < side)
        .collect();
    let mut fit_t = Vec::new();
    let mut fit_q90 = Vec::new();
    for &t in &ts {
        let alg = Algorithm4::new(n_agents, t);
        let per_run = parallel::run_trials(runs, threads, seq.subsequence(t), |i, _| {
            alg.run(&torus, seq.derive(i ^ (t << 16))).relative_errors()
        });
        let pooled: Vec<f64> = per_run.into_iter().flatten().collect();
        let qs = quantile::quantiles(&pooled, &[0.5, 0.9]);
        let bound = antdensity_stats::bounds::theorem32_epsilon(t, d, 0.1, 1.0);
        fit_t.push(t as f64);
        fit_q90.push(qs[1].max(1e-12));
        table.row_owned(vec![
            t.to_string(),
            format_sig(qs[0], 4),
            format_sig(qs[1], 4),
            format_sig(bound, 4),
            format_sig(qs[1] / bound, 3),
        ]);
    }
    table.note("paper: err ~ t^{-1/2} exactly (independent sampling, no log factor)");
    report.push_table(table);

    let fit = LogLogFit::fit(&fit_t, &fit_q90);
    report.finding(format!(
        "Algorithm 4 error exponent vs t: {:.3} (paper predicts -0.5 with NO log factor), R^2 = {:.4}",
        fit.exponent, fit.r_squared
    ));

    // (b) the mod-t correction: stack w walkers on one cell.
    let mut corr_table = Table::new(
        "mod_t_correction",
        &["stacked_walkers", "raw_would_be", "corrected_count"],
    );
    let t = 32u64.min(side - 1);
    for w in [2usize, 3, 5] {
        let positions: Vec<NodeId> = vec![torus.node(1, 1); w];
        let walking = vec![true; w];
        let run = Algorithm4::new(w, t).run_explicit(&torus, &positions, &walking);
        // raw count would have been (w-1) * t for each walker
        corr_table.row_owned(vec![
            w.to_string(),
            ((w as u64 - 1) * t).to_string(),
            run.collision_counts()[0].to_string(),
        ]);
    }
    corr_table.note("paper: c mod t removes exactly the w*t lock-step spurious collisions");
    report.push_table(corr_table);
    report.finding(
        "c mod t correction: co-located lock-step walkers report 0 spurious collisions for stacks of 2, 3, 5"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_clean_sqrt_decay() {
        let r = run(Effort::Quick, 13);
        let slope: f64 = r.findings[0]
            .split(':')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((slope + 0.5).abs() < 0.2, "slope {slope} should be ~ -0.5");
        // corrected counts are all zero
        for row in r.tables[1].rows() {
            assert_eq!(row[2], "0");
        }
    }
}
