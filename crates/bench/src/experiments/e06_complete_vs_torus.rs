//! E6 — Section 1.1: the torus "nearly matches" the complete graph.
//!
//! The paper's headline surprise: despite heavy collision correlations,
//! encounter-rate estimation on the torus is only a `log(2t)`-ish factor
//! worse than i.i.d. sampling on the complete graph. We run both at
//! matched `(A, d, t)` and track the error ratio, which should grow
//! slowly (like `log 2t`) rather than polynomially.

use super::util;
use crate::report::{Effort, ExperimentReport};
use antdensity_engine::TopologySpec;
use antdensity_stats::regression::LinearFit;
use antdensity_stats::table::{format_sig, Table};

/// Runs E6.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e6",
        "Section 1.1: torus error vs complete-graph error — the gap is only ~log(2t)",
    );
    let side = effort.size(32, 64);
    let torus = TopologySpec::Torus2d { side };
    let a = torus.num_nodes();
    let complete = TopologySpec::Complete { nodes: a };
    let d = 0.05;
    let n_agents = ((d * a as f64).round() as usize).max(2) + 1;
    let runs = effort.trials(4, 16);
    let t_max = effort.size(1 << 9, 1 << 11);

    let mut table = Table::new(
        "torus_vs_complete",
        &["t", "q90_torus", "q90_complete", "ratio", "log2t"],
    );
    let mut log2ts = Vec::new();
    let mut ratios = Vec::new();
    for t in util::pow2_sweep(16, t_max) {
        let qt = util::scenario_error_quantiles(torus, n_agents, t, runs, seed ^ t, &[0.9])[0];
        let qc =
            util::scenario_error_quantiles(complete, n_agents, t, runs, seed ^ t ^ 0xC0, &[0.9])[0];
        let ratio = qt / qc;
        let log2t = (2.0 * t as f64).ln();
        log2ts.push(log2t);
        ratios.push(ratio);
        table.row_owned(vec![
            t.to_string(),
            format_sig(qt, 4),
            format_sig(qc, 4),
            format_sig(ratio, 3),
            format_sig(log2t, 3),
        ]);
    }
    table.note("paper: ratio grows at most like log(2t) — i.e. ratio/log2t bounded");
    report.push_table(table);

    // The ratio should be sublinear in log2t with a bounded coefficient;
    // fit ratio = alpha * log2t + beta and report.
    let fit = LinearFit::fit(&log2ts, &ratios);
    let max_norm = ratios
        .iter()
        .zip(&log2ts)
        .map(|(r, l)| r / l)
        .fold(0.0, f64::max);
    report.finding(format!(
        "error ratio torus/complete grows ~{:.3} per unit log(2t) (R^2 = {:.3}); ratio/log(2t) <= {:.3} throughout — consistent with the paper's log-factor gap",
        fit.slope, fit.r_squared, max_norm
    ));
    report.finding(format!(
        "at t = {t_max} the torus is only {:.1}x worse than i.i.d. sampling (A = {a}, d = {d})",
        ratios.last().unwrap()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_bounded_gap() {
        let r = run(Effort::Quick, 11);
        let last_ratio: f64 = r.tables[0].rows().last().unwrap()[3].parse().unwrap();
        // the gap should be a small factor, far below polynomial blowup
        assert!(last_ratio < 10.0, "torus/complete ratio {last_ratio}");
        assert!(last_ratio > 0.5, "ratio suspiciously small {last_ratio}");
    }
}
