//! E16 (extension) — Sections 2.1.1 / 6.1: non-uniform placement and
//! local density estimation.
//!
//! The paper assumes uniform initial placement and flags its removal as
//! future work, predicting two effects we quantify here:
//!
//! 1. **Global estimation degrades** as the placement's total-variation
//!    distance from uniform grows (agents far from a cluster cannot see
//!    it within their horizon).
//! 2. **Encounter rates track local density**: over a short horizon `t`
//!    a walk stays within radius ~√t, so its encounter rate estimates
//!    the density *there*. With heavy clustering, per-agent estimates
//!    correlate with exact local densities far better than with the
//!    global density.

use crate::report::{Effort, ExperimentReport};
use antdensity_core::local::{run_with_placement, ClusteredPlacement};
use antdensity_graphs::Torus2d;
use antdensity_stats::table::{format_sig, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs E16.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e16",
        "Extension (paper 2.1.1/6.1): clustered placement — global estimation degrades, local estimation emerges",
    );
    let side = effort.size(48, 64);
    let torus = Torus2d::new(side);
    let agents = effort.size(200, 400) as usize;
    let short_t = 48u64;
    let radius = 10u64;
    let runs = effort.trials(3, 8);

    let mut table = Table::new(
        "clustered_placement",
        &[
            "cluster_frac",
            "tv_from_uniform",
            "err_vs_global",
            "err_vs_local",
            "corr_with_local",
        ],
    );
    let mut degradation = Vec::new();
    let mut final_corr = 0.0;
    for &frac in &[0.0f64, 0.3, 0.6, 0.9] {
        let placement = ClusteredPlacement::new(frac, 6);
        let tv = placement.tv_from_uniform(&torus);
        let mut g_err = 0.0;
        let mut l_err = 0.0;
        let mut corr = 0.0;
        for r in 0..runs {
            let mut rng = SmallRng::seed_from_u64(seed ^ (r << 17) ^ frac.to_bits());
            let pos = placement.sample(&torus, agents, &mut rng);
            let run = run_with_placement(&torus, &pos, short_t, radius, seed ^ r);
            g_err += run.mean_error_vs_global();
            l_err += run.mean_error_vs_local();
            corr += run.correlation_with_local();
        }
        g_err /= runs as f64;
        l_err /= runs as f64;
        corr /= runs as f64;
        degradation.push(g_err);
        final_corr = corr;
        table.row_owned(vec![
            format_sig(frac, 2),
            format_sig(tv, 3),
            format_sig(g_err, 4),
            format_sig(l_err, 4),
            format_sig(corr, 3),
        ]);
    }
    table.note("paper (2.1.1): far-from-uniform placements break GLOBAL estimation; encounter rates become LOCAL estimates");
    report.push_table(table);

    let monotone = degradation.windows(2).all(|w| w[1] >= w[0] * 0.9);
    report.finding(format!(
        "global-density error grows monotonically with TV distance from uniform ({} -> {}): {}",
        format_sig(degradation[0], 3),
        format_sig(*degradation.last().unwrap(), 3),
        if monotone { "yes" } else { "NO" }
    ));
    report.finding(format!(
        "at 90% clustering, per-agent estimates correlate with exact local density at r = {:.2} and beat the global target (err_local < err_global)",
        final_corr
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_local_emergence() {
        let r = run(Effort::Quick, 47);
        assert!(r.findings[0].ends_with("yes"), "{}", r.findings[0]);
        // heavy clustering row: err_vs_local < err_vs_global
        let last = r.tables[0].rows().last().unwrap();
        let g: f64 = last[2].parse().unwrap();
        let l: f64 = last[3].parse().unwrap();
        assert!(l < g, "local error {l} should beat global error {g}");
        let corr: f64 = last[4].parse().unwrap();
        assert!(corr > 0.4, "correlation with local density {corr}");
    }
}
