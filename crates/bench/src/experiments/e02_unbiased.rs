//! E2 — Lemma 2 / Corollary 3: `E[d̃] = d` on every topology.
//!
//! The paper's unbiasedness argument needs only regularity (uniform
//! placement is stationary). We check the grand mean of `d̃` against `d`
//! on every analysed topology family, reporting the ratio and a
//! 5-standard-error band.

use super::util;
use crate::report::{Effort, ExperimentReport};
use antdensity_graphs::{
    generators, AdjGraph, CompleteGraph, Hypercube, Ring, Topology, Torus2d, TorusKd,
};
use antdensity_stats::table::{format_sig, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn check<T: Topology + Sync>(
    name: &str,
    topo: &T,
    num_agents: usize,
    rounds: u64,
    runs: u64,
    seed: u64,
    table: &mut Table,
) -> bool {
    let d = (num_agents as f64 - 1.0) / topo.num_nodes() as f64;
    let (mean, se, _) = util::algorithm1_mean_estimate(topo, num_agents, rounds, runs, seed);
    let ratio = mean / d;
    let ok = (mean - d).abs() <= 5.0 * se + 1e-9;
    table.row_owned(vec![
        name.to_string(),
        topo.num_nodes().to_string(),
        format_sig(d, 4),
        format_sig(mean, 5),
        format_sig(ratio, 4),
        format_sig(se, 5),
        if ok { "pass" } else { "FAIL" }.to_string(),
    ]);
    ok
}

/// Runs E2.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e2",
        "Lemma 2 / Corollary 3: the encounter rate is an unbiased density estimator",
    );
    let runs = effort.trials(8, 40);
    let rounds = effort.size(128, 512);
    let mut table = Table::new(
        "unbiasedness",
        &[
            "topology",
            "A",
            "d",
            "mean_estimate",
            "ratio",
            "std_err",
            "within_5se",
        ],
    );

    let mut all_ok = true;
    let torus = Torus2d::new(32);
    all_ok &= check(
        "torus2d_32",
        &torus,
        103,
        rounds,
        runs,
        seed ^ 1,
        &mut table,
    );
    let ring = Ring::new(1024);
    all_ok &= check("ring_1024", &ring, 103, rounds, runs, seed ^ 2, &mut table);
    let t3 = TorusKd::new(3, 10);
    all_ok &= check("torus3d_10", &t3, 101, rounds, runs, seed ^ 3, &mut table);
    let hyper = Hypercube::new(10);
    all_ok &= check(
        "hypercube_10",
        &hyper,
        103,
        rounds,
        runs,
        seed ^ 4,
        &mut table,
    );
    let complete = CompleteGraph::new(1024);
    all_ok &= check(
        "complete_1024",
        &complete,
        103,
        rounds,
        runs,
        seed ^ 5,
        &mut table,
    );
    let expander: AdjGraph = {
        let mut rng = SmallRng::seed_from_u64(seed ^ 6);
        generators::random_regular(1024, 8, 500, &mut rng).expect("expander generation")
    };
    all_ok &= check(
        "regular8_1024",
        &expander,
        103,
        rounds,
        runs,
        seed ^ 7,
        &mut table,
    );

    table.note("paper: ratio = 1 exactly in expectation on every regular graph");
    report.push_table(table);
    report.finding(format!(
        "grand-mean estimate within 5 standard errors of d on all 6 topologies: {}",
        if all_ok { "yes" } else { "NO — investigate" }
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_unbiased_everywhere() {
        let r = run(Effort::Quick, 3);
        assert_eq!(r.tables[0].num_rows(), 6);
        // every row passes
        for row in r.tables[0].rows() {
            assert_eq!(row.last().unwrap(), "pass", "row {row:?}");
        }
    }
}
