//! E5 — Lemma 11 / Corollaries 15–16: moment bounds for collision counts.
//!
//! Lemma 11: `E[c̄ⱼᵏ | W] ≤ (t/A)·wᵏ·k!·logᵏ(2t)` for a single constant
//! `w`. The testable consequence: the normalised moment
//!
//! `w_k := ( E[|c̄ⱼ|ᵏ] / (k!·(t/A)) )^{1/k} / log(2t)`
//!
//! must be (approximately) constant in `k` *and* in `t`. We estimate
//! moments for k = 1..6 at two values of `t` and report the `w_k` table;
//! analogous tables cover node visits (Cor. 15) and equalizations
//! (Cor. 16, whose bound has no `t/A` prefactor).

use crate::report::{Effort, ExperimentReport};
use antdensity_core::recollision;
use antdensity_graphs::{Topology, Torus2d};
use antdensity_stats::table::{format_sig, Table};
use antdensity_walks::parallel;

fn factorial(k: u32) -> f64 {
    (1..=k as u64).map(|i| i as f64).product::<f64>().max(1.0)
}

/// Runs E5.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e5",
        "Lemma 11 / Corollaries 15-16: k-th moment bounds for collision, visit and equalization counts",
    );
    let side = effort.size(16, 32);
    let torus = Torus2d::new(side);
    let a = torus.num_nodes();
    let trials = effort.trials(30_000, 300_000);
    let max_k = 6u32;
    let threads = parallel::default_threads();
    let ts = [a / 4, a];

    // --- pairwise collision counts (Lemma 11) ---
    let mut pair_table = Table::new("lemma11_pair_moments", &["t", "k", "E|c_bar|^k", "w_k"]);
    let mut w_values: Vec<f64> = Vec::new();
    for &t in &ts {
        let cm = recollision::pair_count_moments(&torus, t, max_k, trials, seed ^ t, threads);
        let log2t = (2.0 * t as f64).ln();
        for k in 1..=max_k {
            let m = cm.abs_moment(k);
            let w_k = (m / (factorial(k) * t as f64 / a as f64)).powf(1.0 / k as f64) / log2t;
            if k >= 2 {
                w_values.push(w_k);
            }
            pair_table.row_owned(vec![
                t.to_string(),
                k.to_string(),
                format_sig(m, 5),
                format_sig(w_k, 4),
            ]);
        }
    }
    pair_table.note("paper: w_k must be bounded by a constant w for all k and t");
    report.push_table(pair_table);
    let w_min = w_values.iter().cloned().fold(f64::INFINITY, f64::min);
    let w_max = w_values.iter().cloned().fold(0.0, f64::max);
    report.finding(format!(
        "Lemma 11: fitted w_k stable in [{:.3}, {:.3}] across k = 2..6 and t in {{A/4, A}} (ratio {:.2})",
        w_min,
        w_max,
        w_max / w_min
    ));

    // --- visit counts (Corollary 15) ---
    let t_vis = ts[1];
    let cm_vis =
        recollision::visit_count_moments(&torus, 0, t_vis, max_k, trials, seed ^ 0x515, threads);
    let mut visit_table = Table::new(
        "corollary15_visit_moments",
        &["k", "E|c_bar|^k", "bound_w1"],
    );
    let log2t = (2.0 * t_vis as f64).ln();
    let mut vis_ok = true;
    for k in 1..=max_k {
        let m = cm_vis.abs_moment(k);
        // Cor. 15 bound shape with w = 1: (t/A) k! log^{k-1}(2t)
        let shape = (t_vis as f64 / a as f64) * factorial(k) * log2t.powi(k as i32 - 1);
        vis_ok &= m <= shape * 16.0; // generous constant slack
        visit_table.row_owned(vec![k.to_string(), format_sig(m, 5), format_sig(shape, 5)]);
    }
    visit_table.note("paper: moments <= (t/A) w^k k! log^{k-1}(2t) for fixed w");
    report.push_table(visit_table);
    report.finding(format!(
        "Corollary 15 (visits): all k <= 6 moments below the bound shape with constant <= 16: {}",
        if vis_ok { "yes" } else { "NO" }
    ));

    // --- equalizations (Corollary 16) ---
    let cm_eq =
        recollision::equalization_moments(&torus, 0, t_vis, max_k, trials, seed ^ 0xE16, threads);
    let mut eq_table = Table::new(
        "corollary16_equalization_moments",
        &["k", "E|c_bar|^k", "bound_w1"],
    );
    let mut eq_ok = true;
    for k in 1..=max_k {
        let m = cm_eq.abs_moment(k);
        // Cor. 16 bound shape with w = 1: k! log^k(2t)
        let shape = factorial(k) * log2t.powi(k as i32);
        eq_ok &= m <= shape; // w = 1 is already generous here
        eq_table.row_owned(vec![k.to_string(), format_sig(m, 5), format_sig(shape, 5)]);
    }
    eq_table.note("paper: moments <= w^k k! log^k(2t) for fixed w");
    report.push_table(eq_table);
    report.finding(format!(
        "Corollary 16 (equalizations): all k <= 6 moments below k! log^k(2t) at w = 1: {}",
        if eq_ok { "yes" } else { "NO" }
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_moment_bounds_hold() {
        let r = run(Effort::Quick, 7);
        assert_eq!(r.tables.len(), 3);
        assert!(r.findings[1].ends_with("yes"), "{}", r.findings[1]);
        assert!(r.findings[2].ends_with("yes"), "{}", r.findings[2]);
    }

    #[test]
    fn factorial_small() {
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(4), 24.0);
    }
}
