//! E4 — Corollary 10: the equalization (return-to-origin) probability on
//! the torus is `Θ(1/(m+1)) + O(1/A)` for even `m` and exactly 0 for odd
//! `m`.
//!
//! The Θ makes this stronger than E3: we verify a two-sided band, i.e.
//! `P(m)·(m+1)` stays inside a fixed `[c_lo, c_hi]` window across the
//! whole power-law regime.

use crate::report::{Effort, ExperimentReport};
use antdensity_core::recollision;
use antdensity_graphs::{Topology, Torus2d};
use antdensity_stats::regression::LogLogFit;
use antdensity_stats::table::{format_sig, Table};

/// Runs E4.
pub fn run(effort: Effort, _seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e4",
        "Corollary 10: equalization probability Theta(1/(m+1)) at even lags, 0 at odd lags",
    );
    let side = effort.size(32, 64);
    let torus = Torus2d::new(side);
    let a = torus.num_nodes() as f64;
    let t_max = effort.size(512, 2048);
    let series = recollision::exact_return_curve(&torus, 0, t_max);

    // odd lags must vanish exactly
    let odd_max = (1..=t_max as usize)
        .step_by(2)
        .map(|m| series[m])
        .fold(0.0, f64::max);

    let mut table = Table::new(
        "equalization_torus",
        &["m", "P_return", "P_times_m_plus_1", "within_theta_band"],
    );
    let mut normalized: Vec<f64> = Vec::new();
    let mut fit_m = Vec::new();
    let mut fit_p = Vec::new();
    for k in 1..=11u32 {
        let m = 1u64 << k; // even lags
        if m > t_max {
            break;
        }
        let p = series[m as usize];
        let norm = p * (m as f64 + 1.0);
        if p - 1.0 / a > 5.0 / a {
            normalized.push(norm);
            fit_m.push(m as f64 + 1.0);
            fit_p.push(p - 1.0 / a);
        }
        table.row_owned(vec![
            m.to_string(),
            format_sig(p, 6),
            format_sig(norm, 4),
            "-".to_string(),
        ]);
    }
    let lo = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = normalized.iter().cloned().fold(0.0, f64::max);
    table.note("paper: P*(m+1) must sit in a fixed [c_lo, c_hi] band (the Theta)");
    report.push_table(table);

    let fit = LogLogFit::fit(&fit_m, &fit_p);
    report.finding(format!(
        "even-lag slope of P(m) - 1/A: {:.3} (paper predicts -1), R^2 = {:.4}",
        fit.exponent, fit.r_squared
    ));
    report.finding(format!(
        "Theta band: P(m)*(m+1) in [{:.3}, {:.3}] — ratio hi/lo = {:.2} (bounded, as Theta requires)",
        lo,
        hi,
        hi / lo
    ));
    report.finding(format!(
        "odd-lag return probability: max = {:.1e} (paper: exactly 0 — bipartite torus)",
        odd_max
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_verifies_theta_and_parity() {
        let r = run(Effort::Quick, 0);
        // odd lags vanish
        assert!(r.findings[2].contains("0.0e0") || r.findings[2].contains("max = 0"));
        // the Theta band is genuinely bounded
        let band_line = &r.findings[1];
        let ratio: f64 = band_line
            .split("ratio hi/lo = ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(ratio < 4.0, "Theta band ratio {ratio} too wide");
    }
}
