//! E12 — Theorem 27 + Section 5.1.5: network-size estimation.
//!
//! Part A (Theorem 27): Algorithm 2, planned by Theorem 27 and boosted by
//! the median trick, recovers `|V|` within `(1±ε)` on expander,
//! preferential-attachment and small-world graphs.
//!
//! Part B (Section 5.1.5): on 3-dimensional tori, total link queries for
//! a fixed accuracy scale like `|V|^{(k+1)/2k} = |V|^{2/3}` for the
//! paper's algorithm versus `Θ(|V|^{2/k+1/2}) = |V|^{7/6}` for the
//! KLSC14 single-round baseline — the headline win of the application
//! section. We reproduce both exponents by sweeping the torus size with
//! burn-in charged to both methods.

use crate::report::{Effort, ExperimentReport};
use antdensity_graphs::{generators, spectral, AdjGraph, Topology, TorusKd};
use antdensity_netsize::algorithm2::{Algorithm2, StartMode};
use antdensity_netsize::katzir::Katzir;
use antdensity_netsize::{burnin, median, planner};
use antdensity_stats::regression::LogLogFit;
use antdensity_stats::table::{format_sig, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Approximates the graph's re-collision sum `B(t)` by evolving the exact
/// self-collision series from a handful of stationary starts.
fn measured_b(graph: &AdjGraph, t: u64, starts: &[u64]) -> f64 {
    starts
        .iter()
        .map(|&s| {
            antdensity_core::recollision::exact_recollision_curve(graph, s, t)
                .iter()
                .sum::<f64>()
        })
        .fold(0.0, f64::max)
}

/// Runs E12.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e12",
        "Theorem 27 + Section 5.1.5: size estimation accuracy and the |V|^(2/3) vs |V|^(7/6) query exponents",
    );

    // ---------- Part A: accuracy on diverse graphs ----------
    let v = effort.size(400, 1000);
    let (eps, delta) = (0.3, 0.2);
    let mut acc = Table::new(
        "netsize_accuracy",
        &[
            "graph",
            "V",
            "planned_n",
            "planned_t",
            "estimate",
            "rel_err",
            "within_eps",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let graphs: Vec<(&str, AdjGraph)> = vec![
        (
            "regular8",
            generators::random_regular(v, 8, 500, &mut rng).expect("regular"),
        ),
        (
            "ba_m3",
            generators::barabasi_albert(v, 3, &mut rng).expect("ba"),
        ),
        (
            "ws_k6_b0.2",
            generators::watts_strogatz(v, 6, 0.2, &mut rng).expect("ws"),
        ),
    ];
    let mut all_within = true;
    for (name, g) in &graphs {
        let t = 64u64;
        let b = measured_b(g, t, &[0, v / 3, 2 * v / 3]);
        let plan = planner::plan_for_rounds(t, b, g.num_edges(), g.num_nodes(), eps, delta, 0, 1.0);
        let reps = median::repetitions_for(delta).min(11);
        let boosted = median::median_boosted(
            Algorithm2::new(plan.walks, plan.rounds),
            g,
            g.avg_degree(),
            StartMode::Stationary,
            reps,
            seed ^ g.num_edges(),
        );
        let rel = (boosted.estimate - v as f64).abs() / v as f64;
        let ok = rel <= eps;
        all_within &= ok;
        acc.row_owned(vec![
            name.to_string(),
            v.to_string(),
            plan.walks.to_string(),
            plan.rounds.to_string(),
            format_sig(boosted.estimate, 1),
            format_sig(rel, 3),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    acc.note("paper: Theorem 27's (n, t) yields a (1 +- eps) estimate whp (median-boosted)");
    report.push_table(acc);
    report.finding(format!(
        "Theorem 27 planning achieves (1 +- {eps}) size estimates on all three graph families: {}",
        if all_within { "yes" } else { "NO" }
    ));

    // ---------- Part B: 3-d torus query exponents ----------
    let sides: Vec<u64> = match effort {
        Effort::Quick => vec![5, 7, 9],
        Effort::Full => vec![5, 7, 9, 11, 13],
    };
    let mut qtable = Table::new(
        "torus3d_query_scaling",
        &[
            "V",
            "burnin_M",
            "ours_n",
            "ours_t",
            "ours_queries",
            "ours_err",
            "katzir_n",
            "katzir_queries",
            "katzir_err",
        ],
    );
    let mut vs = Vec::new();
    let mut ours_q = Vec::new();
    let mut katzir_q = Vec::new();
    for &side in &sides {
        let torus = TorusKd::new(3, side);
        let g = AdjGraph::from_topology(&torus).expect("odd-side 3-torus");
        let vol = g.num_nodes();
        let lambda = {
            let mut r = SmallRng::seed_from_u64(seed ^ side);
            spectral::walk_matrix_lambda(&g, 6000, &mut r).lambda
        };
        let m = burnin::recommended_burnin(&g, 0.1, Some(lambda), 0.5).max(4);
        // ours: t = Theta(M) (the paper's Section 5.1.5 choice).
        let t = m;
        let b = measured_b(&g, t.min(256), &[0]);
        let plan = planner::plan_for_rounds(t, b, g.num_edges(), vol, eps, delta, m, 1.0);
        let ours = median::median_boosted(
            Algorithm2::new(plan.walks, t),
            &g,
            g.avg_degree(),
            StartMode::SeedWithBurnin {
                seed_vertex: 0,
                steps: m,
            },
            5,
            seed ^ side ^ 0x0115,
        );
        let ours_queries = ours.queries.total();
        let ours_err = (ours.estimate - vol as f64).abs() / vol as f64;
        // Katzir: many walks, one counting round, burn-in each.
        let nk = Katzir::required_walks(&g, eps, delta, 1.0).max(2);
        let kat = median::median_boosted(
            Algorithm2::new(nk, 1),
            &g,
            g.avg_degree(),
            StartMode::SeedWithBurnin {
                seed_vertex: 0,
                steps: m,
            },
            5,
            seed ^ side ^ 0x0AA7,
        );
        let kat_queries = kat.queries.total();
        let kat_err = (kat.estimate - vol as f64).abs() / vol as f64;
        vs.push(vol as f64);
        ours_q.push(ours_queries as f64);
        katzir_q.push(kat_queries as f64);
        qtable.row_owned(vec![
            vol.to_string(),
            m.to_string(),
            plan.walks.to_string(),
            t.to_string(),
            ours_queries.to_string(),
            format_sig(ours_err, 3),
            nk.to_string(),
            kat_queries.to_string(),
            format_sig(kat_err, 3),
        ]);
    }
    qtable.note("paper (Section 5.1.5, k=3): ours ~ |V|^{2/3} queries, KLSC14 ~ |V|^{7/6}");
    report.push_table(qtable);

    let ours_fit = LogLogFit::fit(&vs, &ours_q);
    let kat_fit = LogLogFit::fit(&vs, &katzir_q);
    report.finding(format!(
        "query exponent vs |V|: ours {:.3} (paper ~0.67 + log factors), KLSC14 {:.3} (paper ~1.17) — ours scales strictly better: {}",
        ours_fit.exponent,
        kat_fit.exponent,
        if ours_fit.exponent < kat_fit.exponent { "yes" } else { "NO" }
    ));
    let last = vs.len() - 1;
    report.finding(format!(
        "at |V| = {}: ours used {} queries vs KLSC14 {} ({}x saving)",
        vs[last] as u64,
        ours_q[last] as u64,
        katzir_q[last] as u64,
        format_sig(katzir_q[last] / ours_q[last], 2),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_ours_beats_katzir_scaling() {
        let r = run(Effort::Quick, 31);
        assert!(
            r.findings[1].ends_with("yes"),
            "scaling comparison failed: {}",
            r.findings[1]
        );
    }
}
