//! E3 — Lemma 4 / Lemma 9: the torus re-collision probability is
//! `O(1/(m+1) + 1/A)`.
//!
//! Exact check: evolve the walk distribution from the collision node; the
//! re-collision probability at lag `m` is `Σ_v p_m(v)²` and the
//! single-walk point-probability bound of Lemma 9 is `max_v p_m(v)`.
//! We fit the log–log slope of `P(m) − 1/A` (expect −1), verify the
//! Lemma 9 envelope with one constant across all lags, and cross-check a
//! Monte-Carlo run of the simulation engine against the exact curve.
//! The path-conditioned form of Lemma 4 is bounded by `max_v p_m(v)`
//! uniformly over conditioning paths, so verifying Lemma 9 verifies it
//! for *every* path.

use crate::report::{Effort, ExperimentReport};
use antdensity_core::recollision;
use antdensity_graphs::{Topology, Torus2d};
use antdensity_stats::regression::LogLogFit;
use antdensity_stats::table::{format_sig, Table};

/// Runs E3.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e3",
        "Lemma 4 / Lemma 9: torus re-collision probability O(1/(m+1) + 1/A)",
    );
    let side = effort.size(32, 64);
    let torus = Torus2d::new(side);
    let a = torus.num_nodes() as f64;
    let t_max = effort.size(512, 2048);
    let start = torus.node(side / 2, side / 2);

    let exact = recollision::exact_recollision_curve(&torus, start, t_max);
    let maxp = recollision::exact_max_prob_curve(&torus, start, t_max);
    let mc_lags = effort.size(64, 128);
    let mc_trials = effort.trials(20_000, 100_000);
    let mc = recollision::mc_recollision_curve(
        &torus,
        start,
        mc_lags,
        mc_trials,
        seed,
        antdensity_walks::parallel::default_threads(),
    );

    let mut table = Table::new(
        "recollision_torus",
        &[
            "m",
            "P_exact",
            "P_minus_1_over_A",
            "envelope",
            "ratio",
            "maxprob",
            "P_mc",
        ],
    );
    let lags: Vec<u64> = (0..=11)
        .map(|k| 1u64 << k)
        .filter(|&m| m <= t_max)
        .collect();
    for &m in &lags {
        let p = exact[m as usize];
        let excess = (p - 1.0 / a).max(0.0);
        let env = 1.0 / (m as f64 + 1.0) + 1.0 / a;
        let mc_cell = if m <= mc_lags {
            format_sig(mc[m as usize], 5)
        } else {
            "-".to_string()
        };
        table.row_owned(vec![
            m.to_string(),
            format_sig(p, 6),
            format_sig(excess, 6),
            format_sig(env, 6),
            format_sig(p / env, 3),
            format_sig(maxp[m as usize], 6),
            mc_cell,
        ]);
    }
    table.note("paper: ratio = P/envelope bounded by a constant for all m (Lemma 4)");
    report.push_table(table);

    // Slope fit over the power-law regime (before the 1/A floor bites):
    // keep lags where excess > 5/A.
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for m in 2..=t_max {
        let excess = exact[m as usize] - 1.0 / a;
        if excess > 5.0 / a {
            xs.push(m as f64 + 1.0);
            ys.push(excess);
        }
    }
    let fit = LogLogFit::fit(&xs, &ys);
    report.finding(format!(
        "log-log slope of P(m) - 1/A over m in [2, {}]: {:.3} (paper predicts -1), R^2 = {:.4}",
        xs.last().map(|x| *x as u64).unwrap_or(0),
        fit.exponent,
        fit.r_squared
    ));

    // Envelope constant (Lemma 4): max over lags of P/envelope.
    let c = lags
        .iter()
        .map(|&m| exact[m as usize] / (1.0 / (m as f64 + 1.0) + 1.0 / a))
        .fold(0.0, f64::max);
    report.finding(format!(
        "Lemma 4 envelope constant: P(m) <= {:.2} * (1/(m+1) + 1/A) for all checked lags",
        c
    ));

    // Lemma 9 (conditional form): max_v p_m(v) under the same envelope.
    let c9 = lags
        .iter()
        .map(|&m| maxp[m as usize] / (1.0 / (m as f64 + 1.0) + 1.0 / a))
        .fold(0.0, f64::max);
    report.finding(format!(
        "Lemma 9 (uniform over conditioning paths): max_v p_m(v) <= {:.2} * (1/(m+1) + 1/A)",
        c9
    ));

    // MC vs exact agreement.
    let max_dev = (0..=mc_lags as usize)
        .map(|m| (mc[m] - exact[m]).abs())
        .fold(0.0, f64::max);
    report.finding(format!(
        "Monte-Carlo engine vs exact distribution: max deviation {:.4} over lags 0..={} ({} trials)",
        max_dev, mc_lags, mc_trials
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_finds_inverse_m_decay() {
        let r = run(Effort::Quick, 5);
        // slope finding must be close to -1
        let slope_line = &r.findings[0];
        assert!(slope_line.contains("paper predicts -1"), "{slope_line}");
        // extract the fitted slope from the line
        let slope: f64 = slope_line
            .split(':')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((slope + 1.0).abs() < 0.2, "slope {slope} should be ~ -1");
    }
}
