//! E8 — Section 4.2: the ring's poor local mixing.
//!
//! Lemma 20: re-collision probability `O(1/√(m+1) + 1/A)` — log–log
//! slope −1/2 (vs −1 on the 2-d torus). Theorem 21: accuracy only
//! `ε = O(√(1/(√t·d·δ)))`, i.e. the error decays like `t^{-1/4}` — half
//! the torus' rate. Both shapes are verified here.

use super::util;
use crate::report::{Effort, ExperimentReport};
use antdensity_core::recollision;
use antdensity_graphs::Ring;
use antdensity_stats::regression::LogLogFit;
use antdensity_stats::table::{format_sig, Table};

/// Runs E8.
pub fn run(effort: Effort, seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e8",
        "Lemma 20 / Theorem 21: ring re-collision ~ m^{-1/2}; error converges only as t^{-1/4}",
    );
    // --- re-collision shape (exact) ---
    let a_exact = effort.size(2048, 8192);
    let ring = Ring::new(a_exact);
    let t_max = effort.size(512, 2048);
    let exact = recollision::exact_recollision_curve(&ring, 0, t_max);
    let mut rec_table = Table::new(
        "ring_recollision",
        &["m", "P_exact", "envelope_sqrt", "ratio"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for k in 1..=11u32 {
        let m = 1u64 << k;
        if m > t_max {
            break;
        }
        let p = exact[m as usize];
        let env = 1.0 / ((m as f64 + 1.0).sqrt()) + 1.0 / a_exact as f64;
        rec_table.row_owned(vec![
            m.to_string(),
            format_sig(p, 6),
            format_sig(env, 6),
            format_sig(p / env, 3),
        ]);
    }
    for m in 2..=t_max {
        let p = exact[m as usize] - 1.0 / a_exact as f64;
        if p > 5.0 / a_exact as f64 {
            xs.push(m as f64 + 1.0);
            ys.push(p);
        }
    }
    let rec_fit = LogLogFit::fit(&xs, &ys);
    rec_table.note("paper: ratio bounded (Lemma 20); slope -1/2 vs torus' -1");
    report.push_table(rec_table);
    report.finding(format!(
        "ring re-collision slope: {:.3} (paper predicts -0.5), R^2 = {:.4}",
        rec_fit.exponent, rec_fit.r_squared
    ));

    // --- estimation error decay (Theorem 21) ---
    let a_sim = effort.size(2048, 8192);
    let ring_sim = Ring::new(a_sim);
    let d = 0.05;
    let n_agents = ((d * a_sim as f64).round() as usize).max(2) + 1;
    let runs = effort.trials(4, 12);
    let mut est_table = Table::new(
        "ring_accuracy",
        &["t", "err_median", "err_q90", "thm21_bound_c1", "ratio"],
    );
    let mut ft = Vec::new();
    let mut fq = Vec::new();
    let t_hi = effort.size(1 << 11, 1 << 13);
    for t in util::pow2_sweep(64, t_hi) {
        let qs = util::algorithm1_error_quantiles(
            &ring_sim,
            n_agents,
            t,
            runs,
            seed ^ (t << 4),
            &[0.5, 0.9],
        );
        let bound = antdensity_stats::bounds::theorem21_epsilon(t, d, 0.1, 1.0);
        ft.push(t as f64);
        fq.push(qs[1].max(1e-12));
        est_table.row_owned(vec![
            t.to_string(),
            format_sig(qs[0], 4),
            format_sig(qs[1], 4),
            format_sig(bound, 4),
            format_sig(qs[1] / bound, 3),
        ]);
    }
    let est_fit = LogLogFit::fit(&ft, &fq);
    est_table.note("paper: error ~ t^{-1/4} — half the torus' convergence rate");
    report.push_table(est_table);
    report.finding(format!(
        "ring error exponent vs t: {:.3} (paper predicts ~ -0.25, vs ~ -0.5 on the torus), R^2 = {:.4}",
        est_fit.exponent, est_fit.r_squared
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_half_power_recollision() {
        let r = run(Effort::Quick, 17);
        let slope: f64 = r.findings[0]
            .split(':')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((slope + 0.5).abs() < 0.1, "recollision slope {slope}");
    }

    #[test]
    fn quick_run_error_decays_slower_than_torus() {
        let r = run(Effort::Quick, 17);
        let slope: f64 = r.findings[1]
            .split(':')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // ring exponent should be clearly shallower than -0.45
        assert!(slope > -0.45, "ring exponent {slope} too steep");
        assert!(slope < -0.05, "ring exponent {slope} should still decay");
    }
}
