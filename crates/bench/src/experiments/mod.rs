//! The experiment registry: one module per paper claim (see crate docs).

pub mod e01_theorem1_torus;
pub mod e02_unbiased;
pub mod e03_recollision_torus;
pub mod e04_equalization;
pub mod e05_moments;
pub mod e06_complete_vs_torus;
pub mod e07_algorithm4;
pub mod e08_ring;
pub mod e09_torus_kd;
pub mod e10_expander;
pub mod e11_hypercube;
pub mod e12_netsize;
pub mod e13_degree;
pub mod e14_burnin;
pub mod e15_frequency_noise;
pub mod e16_local_density;
pub mod e17_avoidance_singlewalk;
pub(crate) mod util;

use crate::report::{Effort, ExperimentReport};

/// A registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentDef {
    /// Stable id, e.g. `"e3"`.
    pub id: &'static str,
    /// Short description (paper reference).
    pub summary: &'static str,
    /// Entry point.
    pub run: fn(Effort, u64) -> ExperimentReport,
}

/// All experiments, in paper order.
pub fn all() -> Vec<ExperimentDef> {
    vec![
        ExperimentDef {
            id: "e1",
            summary: "Theorem 1: random-walk density estimation accuracy on the 2-d torus",
            run: e01_theorem1_torus::run,
        },
        ExperimentDef {
            id: "e2",
            summary: "Lemma 2 / Corollary 3: encounter rate is unbiased on every topology",
            run: e02_unbiased::run,
        },
        ExperimentDef {
            id: "e3",
            summary: "Lemma 4 / Lemma 9: torus re-collision probability O(1/(m+1) + 1/A)",
            run: e03_recollision_torus::run,
        },
        ExperimentDef {
            id: "e4",
            summary: "Corollary 10: equalization probability Theta(1/(m+1)), zero at odd lags",
            run: e04_equalization::run,
        },
        ExperimentDef {
            id: "e5",
            summary: "Lemma 11 / Corollaries 15-16: collision-count moment bounds",
            run: e05_moments::run,
        },
        ExperimentDef {
            id: "e6",
            summary: "Section 1.1: torus vs complete graph - the log(2t) accuracy gap",
            run: e06_complete_vs_torus::run,
        },
        ExperimentDef {
            id: "e7",
            summary: "Theorem 32: Algorithm 4 (independent sampling) accuracy and mod-t correction",
            run: e07_algorithm4::run,
        },
        ExperimentDef {
            id: "e8",
            summary: "Lemma 20 / Theorem 21: ring re-collision 1/sqrt(m) and t^(-1/4) convergence",
            run: e08_ring::run,
        },
        ExperimentDef {
            id: "e9",
            summary: "Lemma 22: k-dimensional tori (k>=3) match independent sampling",
            run: e09_torus_kd::run,
        },
        ExperimentDef {
            id: "e10",
            summary: "Lemma 23/24: regular expanders - lambda^m re-collision decay",
            run: e10_expander::run,
        },
        ExperimentDef {
            id: "e11",
            summary: "Lemma 25/26: hypercube re-collision (9/10)^(m-1) + 1/sqrt(A)",
            run: e11_hypercube::run,
        },
        ExperimentDef {
            id: "e12",
            summary: "Theorem 27 + Section 5.1.5: network size estimation, query cost vs KLSC14",
            run: e12_netsize::run,
        },
        ExperimentDef {
            id: "e13",
            summary: "Theorem 31: average-degree estimation by inverse-degree sampling",
            run: e13_degree::run,
        },
        ExperimentDef {
            id: "e14",
            summary: "Section 5.1.4: burn-in TV decay and its effect on size estimates",
            run: e14_burnin::run,
        },
        ExperimentDef {
            id: "e15",
            summary: "Section 5.2 + 6.1: property frequency, noisy sensing, biased walks",
            run: e15_frequency_noise::run,
        },
        ExperimentDef {
            id: "e16",
            summary:
                "Extension (2.1.1/6.1): clustered placement - local density estimation emerges",
            run: e16_local_density::run,
        },
        ExperimentDef {
            id: "e17",
            summary: "Extension (6.1/6.3.3): collision avoidance; single-walk size estimation",
            run: e17_avoidance_singlewalk::run,
        },
    ]
}

/// Looks up an experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<ExperimentDef> {
    let wanted = id.to_ascii_lowercase();
    all().into_iter().find(|e| e.id == wanted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_seventeen_entries_with_unique_ids() {
        let defs = all();
        assert_eq!(defs.len(), 17);
        let mut ids: Vec<&str> = defs.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 17);
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("E3").is_some());
        assert!(find("e17").is_some());
        assert!(find("e18").is_none());
    }
}
