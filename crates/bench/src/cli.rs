//! The typed CLI core: argv → per-subcommand request structs → run.
//!
//! `repro`'s surface used to be one flat argv scanner feeding a bag of
//! optionals; every subcommand now parses into its own request struct
//! ([`SweepRequest`], [`BenchRequest`], [`ServeRequest`], …) so the
//! binary is a thin `parse` → dispatch pipeline and tests can exercise
//! parsing without spawning processes.
//!
//! The sweep path is deliberately two-layered: [`SweepRequest`] holds
//! the *invocation* concerns (paths, checkpointing, transport) and
//! converts via [`SweepRequest::to_job`] into the transport-agnostic
//! [`SweepJob`] — the same validated type a `repro serve` submit
//! deserializes to, so argv jobs and wire jobs share one entry API and
//! one error vocabulary.
//!
//! [`ExitCode`] is the process's entire exit-status contract in one
//! exported enum, consumed by the binary and by the contract tests —
//! no magic integers at call sites.

use crate::report::Effort;
use antdensity_sweep::SweepJob;
use std::fmt;
use std::path::PathBuf;

/// The `repro` exit-status contract. The numeric values are stable
/// API — CI scripts and the contract tests match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCode {
    /// Complete, gates passed.
    Ok = 0,
    /// IO / lock / setup failure, or a perf-gate regression.
    Failure = 1,
    /// Usage error: bad argv, bad spec, bad fault plan.
    Usage = 2,
    /// Partial sweep: budget hit, checkpoint resumable.
    Partial = 3,
    /// Distributed result mismatch (byte-unequal duplicate shard).
    Mismatch = 4,
}

impl ExitCode {
    /// The process exit status.
    pub fn code(self) -> i32 {
        self as i32
    }

    /// Terminates the process with this status.
    pub fn exit(self) -> ! {
        std::process::exit(self.code())
    }

    /// Prints `reason` to stderr and exits with this status — the
    /// one-liner for terminal failure paths.
    pub fn fail(self, reason: &str) -> ! {
        eprintln!("{reason}");
        self.exit()
    }
}

/// A structured argv rejection: what was wrong, in one line. The
/// binary prints it (plus the usage text) and exits [`ExitCode::Usage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `repro list` — print the experiment table.
    List,
    /// `repro all | e3 e8 …` — run experiments.
    Experiments(ExperimentsRequest),
    /// `repro bench [--compare …]`.
    Bench(BenchRequest),
    /// `repro sweep SPEC …`.
    Sweep(SweepRequest),
    /// `repro sweep-worker …` — the distributed worker half.
    SweepWorker(SweepWorkerRequest),
    /// `repro check-metrics FILE`.
    CheckMetrics(CheckMetricsRequest),
    /// `repro serve …` — the estimation daemon.
    Serve(ServeRequest),
    /// `repro serve-bench …` — the daemon load generator.
    ServeBench(ServeBenchRequest),
    /// `repro serve-submit ADDR SPEC …` — a one-shot protocol client.
    ServeSubmit(ServeSubmitRequest),
}

/// `repro all` / `repro e3 e8 --full --seed N --out DIR`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentsRequest {
    /// Experiment ids, in argv order (`all` expands to every id).
    pub ids: Vec<String>,
    /// Grid size.
    pub effort: Effort,
    /// Master seed.
    pub seed: u64,
    /// Output directory.
    pub out: PathBuf,
}

/// `repro bench [--group NAME] [--compare [BASE]] [--tolerance F]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRequest {
    /// Measurement effort.
    pub effort: Effort,
    /// Output directory for `BENCH_engine.json`.
    pub out: PathBuf,
    /// Baseline to gate against, if any.
    pub compare: Option<PathBuf>,
    /// Allowed fractional regression.
    pub tolerance: f64,
    /// Run only this benchmark family (one of [`crate::perf::GROUPS`]);
    /// `None` runs the whole suite.
    pub group: Option<String>,
    /// `--list-groups`: print the known group names and exit — run
    /// nothing.
    pub list_groups: bool,
}

/// `repro sweep SPEC …` — invocation-side concerns around a
/// [`SweepJob`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// The spec file.
    pub spec_path: PathBuf,
    /// Quick (CI smoke) grid.
    pub quick: bool,
    /// `--no-fuse`: one simulation per cell (bit-identity cross-check).
    pub no_fuse: bool,
    /// `--seed N`: override the spec's master seed — identical to
    /// editing the spec's `seed =` line, and the CLI twin of a serve
    /// submit's `seed` field.
    pub seed_override: Option<u64>,
    /// Worker threads for shard fan-out.
    pub workers: Option<usize>,
    /// Output directory.
    pub out: PathBuf,
    /// Resume from `DIR/<name>.ckpt`.
    pub resume: bool,
    /// Stop after K newly executed shards.
    pub max_shards: Option<usize>,
    /// Skip the checkpoint file.
    pub no_checkpoint: bool,
    /// Print the plan, run nothing.
    pub dry_run: bool,
    /// `Some(None)` = `--metrics` to the default path; `Some(Some(p))`
    /// = explicit file.
    pub metrics: Option<Option<PathBuf>>,
    /// Chrome-trace output file.
    pub trace: Option<PathBuf>,
    /// Live progress line per wave.
    pub progress: bool,
    /// Lease shards to worker processes.
    pub serve_shards: bool,
    /// Child workers over pipes (implies `serve_shards`).
    pub workers_cmd: Option<usize>,
    /// Accept TCP workers (implies `serve_shards`).
    pub listen: Option<String>,
    /// Deterministic fault-injection plan.
    pub fault: Option<String>,
    /// `--cache DIR` — shard result cache directory (`off` / absent
    /// disables). Shared with spawned dist workers and across
    /// processes.
    pub cache: Option<PathBuf>,
    /// `--cache-verify`: recompute cache hits anyway and byte-compare;
    /// any mismatch fails the run.
    pub cache_verify: bool,
    /// `--cache-cap BYTES`: LRU-evict down to this size after the run.
    pub cache_cap: Option<u64>,
}

impl SweepRequest {
    /// The transport-agnostic job this invocation means, given the
    /// spec file's text — the exact struct a serve submit builds, so
    /// the two front ends cannot drift.
    pub fn to_job(&self, spec_text: impl Into<String>) -> SweepJob {
        SweepJob {
            spec_text: spec_text.into(),
            quick: self.quick,
            fuse: !self.no_fuse,
            seed_override: self.seed_override,
        }
    }
}

/// How a `sweep-worker` reaches its coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMode {
    /// Frames over stdin/stdout (spawned child).
    Stdio,
    /// Dial a `--listen` coordinator.
    Connect(String),
}

/// `repro sweep-worker [--stdio | --connect ADDR] [--cache DIR]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepWorkerRequest {
    /// Transport back to the coordinator.
    pub mode: WorkerMode,
    /// Worker-local shard result cache directory (`off` / absent
    /// disables). A coordinator running with `--cache` forwards its
    /// directory to spawned children automatically.
    pub cache: Option<PathBuf>,
}

/// `repro check-metrics FILE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckMetricsRequest {
    /// The metrics JSON to validate.
    pub path: PathBuf,
}

/// `repro serve [--listen ADDR | --stdio] [admission knobs…]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// TCP bind address (default `127.0.0.1:4710`); `None` with
    /// `stdio` set means a single stdin/stdout session.
    pub listen: Option<String>,
    /// Serve one session over stdin/stdout instead of TCP.
    pub stdio: bool,
    /// Queue slots before submits are rejected.
    pub max_queue: usize,
    /// Concurrent executor threads.
    pub executors: usize,
    /// Worker threads each job asks the shared pool for.
    pub job_workers: usize,
    /// Run jobs on the distributed runtime with N child workers.
    pub dist_workers: Option<usize>,
    /// Shard result cache directory shared by all executors (`off` /
    /// absent disables).
    pub cache: Option<PathBuf>,
}

/// `repro serve-bench [--full] [--clients N] [--jobs N]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeBenchRequest {
    /// Full shape (64×32 jobs) instead of quick (16×16).
    pub full: bool,
    /// Override the client count.
    pub clients: Option<usize>,
    /// Override the jobs-per-client count.
    pub jobs: Option<usize>,
}

/// `repro serve-submit ADDR SPEC [--quick] [--seed N] [--out DIR]
/// [--metrics FILE]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSubmitRequest {
    /// Daemon address, e.g. `127.0.0.1:4710`.
    pub addr: String,
    /// Sweep spec file to submit.
    pub spec_path: PathBuf,
    /// Quick grid.
    pub quick: bool,
    /// Seed override for the job.
    pub seed: Option<u64>,
    /// Where the streamed `SWEEP_<name>.{json,csv}` land.
    pub out: PathBuf,
    /// Also fetch a daemon metrics snapshot into this file.
    pub metrics: Option<PathBuf>,
}

/// Parses one argv (without the program name) into a [`Command`].
/// The first argument names the subcommand; experiment ids (`all`,
/// `e1`…) are themselves subcommand names.
///
/// # Errors
///
/// A one-line [`UsageError`] naming the first offending token.
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let Some(first) = args.first() else {
        return Err(UsageError("no command given".to_string()));
    };
    match first.as_str() {
        "list" => {
            expect_no_more("list", &args[1..])?;
            Ok(Command::List)
        }
        "bench" => parse_bench(&args[1..]),
        "sweep" => parse_sweep(&args[1..]),
        "sweep-worker" => parse_sweep_worker(&args[1..]),
        "check-metrics" => parse_check_metrics(&args[1..]),
        "serve" => parse_serve(&args[1..]),
        "serve-bench" => parse_serve_bench(&args[1..]),
        "serve-submit" => parse_serve_submit(&args[1..]),
        tok if tok == "all" || tok.starts_with('e') || tok.starts_with('E') => {
            parse_experiments(args)
        }
        other => Err(UsageError(format!("unknown command `{other}`"))),
    }
}

fn expect_no_more(cmd: &str, rest: &[String]) -> Result<(), UsageError> {
    match rest.first() {
        None => Ok(()),
        Some(tok) => Err(UsageError(format!("`{cmd}` takes no `{tok}`"))),
    }
}

/// Pulls the operand for `flag` out of `args[*i + 1]`, advancing.
fn operand(args: &[String], i: &mut usize, flag: &str) -> Result<String, UsageError> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| UsageError(format!("`{flag}` needs a value")))
}

fn num<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> Result<T, UsageError> {
    let raw = operand(args, i, flag)?;
    raw.parse()
        .map_err(|_| UsageError(format!("`{flag}` got unparseable value `{raw}`")))
}

/// `--cache DIR|off` — the literal `off` means "no cache", same as
/// omitting the flag, so scripts can override an inherited `--cache`.
fn cache_operand(args: &[String], i: &mut usize) -> Result<Option<PathBuf>, UsageError> {
    let raw = operand(args, i, "--cache")?;
    Ok((raw != "off").then(|| PathBuf::from(raw)))
}

fn parse_experiments(args: &[String]) -> Result<Command, UsageError> {
    let mut req = ExperimentsRequest {
        ids: Vec::new(),
        effort: Effort::Quick,
        seed: 20_160_725,
        out: PathBuf::from("results"),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => req.effort = Effort::Quick,
            "--full" => req.effort = Effort::Full,
            "--seed" => req.seed = num(args, &mut i, "--seed")?,
            "--out" => req.out = PathBuf::from(operand(args, &mut i, "--out")?),
            "all" => {
                req.ids = crate::experiments::all()
                    .iter()
                    .map(|e| e.id.to_string())
                    .collect();
            }
            tok if tok.starts_with('e') || tok.starts_with('E') => {
                req.ids.push(tok.to_string());
            }
            other => return Err(UsageError(format!("unknown experiment token `{other}`"))),
        }
        i += 1;
    }
    Ok(Command::Experiments(req))
}

fn parse_bench(args: &[String]) -> Result<Command, UsageError> {
    let mut req = BenchRequest {
        effort: Effort::Quick,
        out: PathBuf::from("results"),
        compare: None,
        tolerance: 0.25,
        group: None,
        list_groups: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => req.effort = Effort::Quick,
            "--full" => req.effort = Effort::Full,
            "--out" => req.out = PathBuf::from(operand(args, &mut i, "--out")?),
            "--group" => {
                let g = operand(args, &mut i, "--group")?;
                if !crate::perf::GROUPS.contains(&g.as_str()) {
                    return Err(UsageError(format!(
                        "`--group` got unknown group `{g}` (known: {}; \
                         see `bench --list-groups`)",
                        crate::perf::GROUPS.join(", ")
                    )));
                }
                req.group = Some(g);
            }
            "--list-groups" => req.list_groups = true,
            "--compare" => {
                // optional operand; defaults to the committed baseline
                if let Some(next) = args.get(i + 1).filter(|n| !n.starts_with("--")) {
                    req.compare = Some(PathBuf::from(next));
                    i += 1;
                } else {
                    req.compare = Some(PathBuf::from("BENCH_baseline.json"));
                }
            }
            "--tolerance" => {
                let t: f64 = num(args, &mut i, "--tolerance")?;
                if !(0.0..1.0).contains(&t) {
                    return Err(UsageError(format!(
                        "`--tolerance` must be in [0, 1), got {t}"
                    )));
                }
                req.tolerance = t;
            }
            other => return Err(UsageError(format!("`bench` got unknown flag `{other}`"))),
        }
        i += 1;
    }
    Ok(Command::Bench(req))
}

fn parse_sweep(args: &[String]) -> Result<Command, UsageError> {
    let mut spec_path = None;
    let mut req = SweepRequest {
        spec_path: PathBuf::new(),
        quick: true,
        no_fuse: false,
        seed_override: None,
        workers: None,
        out: PathBuf::from("results"),
        resume: false,
        max_shards: None,
        no_checkpoint: false,
        dry_run: false,
        metrics: None,
        trace: None,
        progress: false,
        serve_shards: false,
        workers_cmd: None,
        listen: None,
        fault: None,
        cache: None,
        cache_verify: false,
        cache_cap: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => req.quick = true,
            "--full" => req.quick = false,
            "--no-fuse" => req.no_fuse = true,
            "--seed" => req.seed_override = Some(num(args, &mut i, "--seed")?),
            "--workers" => {
                let w: usize = num(args, &mut i, "--workers")?;
                if w == 0 {
                    return Err(UsageError("`--workers` must be positive".to_string()));
                }
                req.workers = Some(w);
            }
            "--out" => req.out = PathBuf::from(operand(args, &mut i, "--out")?),
            "--resume" => req.resume = true,
            "--max-shards" => req.max_shards = Some(num(args, &mut i, "--max-shards")?),
            "--no-checkpoint" => req.no_checkpoint = true,
            "--dry-run" => req.dry_run = true,
            "--metrics" => {
                if let Some(next) = args.get(i + 1).filter(|n| !n.starts_with("--")) {
                    req.metrics = Some(Some(PathBuf::from(next)));
                    i += 1;
                } else {
                    req.metrics = Some(None);
                }
            }
            "--trace" => req.trace = Some(PathBuf::from(operand(args, &mut i, "--trace")?)),
            "--progress" => req.progress = true,
            "--serve-shards" => req.serve_shards = true,
            "--workers-cmd" => {
                let w: usize = num(args, &mut i, "--workers-cmd")?;
                if w == 0 {
                    return Err(UsageError("`--workers-cmd` must be positive".to_string()));
                }
                req.workers_cmd = Some(w);
                req.serve_shards = true;
            }
            "--listen" => {
                req.listen = Some(operand(args, &mut i, "--listen")?);
                req.serve_shards = true;
            }
            "--fault" => req.fault = Some(operand(args, &mut i, "--fault")?),
            "--cache" => req.cache = cache_operand(args, &mut i)?,
            "--cache-verify" => req.cache_verify = true,
            "--cache-cap" => {
                let cap: u64 = num(args, &mut i, "--cache-cap")?;
                if cap == 0 {
                    return Err(UsageError(
                        "`--cache-cap` must be positive (use `--cache off` to disable)".to_string(),
                    ));
                }
                req.cache_cap = Some(cap);
            }
            tok if !tok.starts_with("--") && spec_path.is_none() => {
                spec_path = Some(PathBuf::from(tok));
            }
            other => return Err(UsageError(format!("`sweep` got unknown token `{other}`"))),
        }
        i += 1;
    }
    req.spec_path =
        spec_path.ok_or_else(|| UsageError("`sweep` needs a spec file path".to_string()))?;
    Ok(Command::Sweep(req))
}

fn parse_sweep_worker(args: &[String]) -> Result<Command, UsageError> {
    let mut mode = WorkerMode::Stdio;
    let mut cache = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stdio" => mode = WorkerMode::Stdio,
            "--connect" => {
                mode =
                    WorkerMode::Connect(args.get(i + 1).cloned().ok_or_else(|| {
                        UsageError("`--connect` needs an ADDR operand".to_string())
                    })?);
                i += 1;
            }
            "--cache" => cache = cache_operand(args, &mut i)?,
            other => {
                return Err(UsageError(format!(
                    "unknown sweep-worker option `{other}` \
                     (want --stdio, --connect ADDR, or --cache DIR)"
                )))
            }
        }
        i += 1;
    }
    Ok(Command::SweepWorker(SweepWorkerRequest { mode, cache }))
}

fn parse_check_metrics(args: &[String]) -> Result<Command, UsageError> {
    let path = args
        .first()
        .filter(|p| !p.starts_with("--"))
        .ok_or_else(|| UsageError("`check-metrics` needs a metrics JSON file path".to_string()))?;
    expect_no_more("check-metrics", &args[1..])?;
    Ok(Command::CheckMetrics(CheckMetricsRequest {
        path: PathBuf::from(path),
    }))
}

fn parse_serve(args: &[String]) -> Result<Command, UsageError> {
    let mut req = ServeRequest {
        listen: None,
        stdio: false,
        max_queue: 64,
        executors: 2,
        job_workers: 0,
        dist_workers: None,
        cache: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => req.listen = Some(operand(args, &mut i, "--listen")?),
            "--stdio" => req.stdio = true,
            "--max-queue" => req.max_queue = num(args, &mut i, "--max-queue")?,
            "--executors" => {
                let e: usize = num(args, &mut i, "--executors")?;
                if e == 0 {
                    return Err(UsageError("`--executors` must be positive".to_string()));
                }
                req.executors = e;
            }
            "--workers" => req.job_workers = num(args, &mut i, "--workers")?,
            "--dist" => {
                let w: usize = num(args, &mut i, "--dist")?;
                if w == 0 {
                    return Err(UsageError("`--dist` must be positive".to_string()));
                }
                req.dist_workers = Some(w);
            }
            "--cache" => req.cache = cache_operand(args, &mut i)?,
            other => return Err(UsageError(format!("`serve` got unknown flag `{other}`"))),
        }
        i += 1;
    }
    if req.stdio && req.listen.is_some() {
        return Err(UsageError(
            "`serve` takes `--stdio` or `--listen ADDR`, not both".to_string(),
        ));
    }
    Ok(Command::Serve(req))
}

fn parse_serve_bench(args: &[String]) -> Result<Command, UsageError> {
    let mut req = ServeBenchRequest {
        full: false,
        clients: None,
        jobs: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => req.full = false,
            "--full" => req.full = true,
            "--clients" => req.clients = Some(num(args, &mut i, "--clients")?),
            "--jobs" => req.jobs = Some(num(args, &mut i, "--jobs")?),
            other => {
                return Err(UsageError(format!(
                    "`serve-bench` got unknown flag `{other}`"
                )))
            }
        }
        i += 1;
    }
    Ok(Command::ServeBench(req))
}

fn parse_serve_submit(args: &[String]) -> Result<Command, UsageError> {
    let mut positionals = Vec::new();
    let mut quick = false;
    let mut seed = None;
    let mut out = PathBuf::from("results");
    let mut metrics = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--seed" => seed = Some(num(args, &mut i, "--seed")?),
            "--out" => out = PathBuf::from(operand(args, &mut i, "--out")?),
            "--metrics" => metrics = Some(PathBuf::from(operand(args, &mut i, "--metrics")?)),
            tok if !tok.starts_with("--") => positionals.push(tok.to_string()),
            other => {
                return Err(UsageError(format!(
                    "`serve-submit` got unknown flag `{other}`"
                )))
            }
        }
        i += 1;
    }
    let [addr, spec] = positionals.as_slice() else {
        return Err(UsageError(
            "`serve-submit` needs ADDR and SPEC operands".to_string(),
        ));
    };
    Ok(Command::ServeSubmit(ServeSubmitRequest {
        addr: addr.clone(),
        spec_path: PathBuf::from(spec),
        quick,
        seed,
        out,
        metrics,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn exit_codes_are_the_documented_contract() {
        assert_eq!(ExitCode::Ok.code(), 0);
        assert_eq!(ExitCode::Failure.code(), 1);
        assert_eq!(ExitCode::Usage.code(), 2);
        assert_eq!(ExitCode::Partial.code(), 3);
        assert_eq!(ExitCode::Mismatch.code(), 4);
    }

    #[test]
    fn sweep_parses_into_a_typed_request() {
        let cmd = parse(&argv(
            "sweep specs/smoke.sweep --full --seed 9 --workers 4 --out o \
             --max-shards 3 --no-fuse --metrics m.json --serve-shards",
        ))
        .unwrap();
        let Command::Sweep(req) = cmd else {
            panic!("not sweep")
        };
        assert_eq!(req.spec_path, PathBuf::from("specs/smoke.sweep"));
        assert!(!req.quick);
        assert!(req.no_fuse);
        assert_eq!(req.seed_override, Some(9));
        assert_eq!(req.workers, Some(4));
        assert_eq!(req.max_shards, Some(3));
        assert_eq!(req.metrics, Some(Some(PathBuf::from("m.json"))));
        assert!(req.serve_shards);
        assert_eq!(req.cache, None);
        assert!(!req.cache_verify);
        // the job it means is the serve submit's job
        let job = req.to_job("name = x\n");
        assert_eq!(
            job,
            SweepJob {
                spec_text: "name = x\n".to_string(),
                quick: false,
                fuse: false,
                seed_override: Some(9),
            }
        );
    }

    #[test]
    fn sweep_usage_errors_are_structured() {
        assert!(parse(&argv("sweep")).is_err());
        assert!(parse(&argv("sweep a.sweep --workers 0")).is_err());
        assert!(parse(&argv("sweep a.sweep --workers-cmd 0")).is_err());
        assert!(parse(&argv("sweep a.sweep b.sweep")).is_err());
        assert!(parse(&argv("sweep a.sweep --bogus")).is_err());
        let err = parse(&argv("sweep a.sweep --max-shards lots")).unwrap_err();
        assert!(err.0.contains("--max-shards"), "{err}");
        assert!(parse(&argv("sweep a.sweep --cache")).is_err());
        assert!(parse(&argv("sweep a.sweep --cache d --cache-cap 0")).is_err());
    }

    #[test]
    fn cache_flags_parse_on_sweep_worker_and_serve() {
        let Command::Sweep(req) = parse(&argv(
            "sweep a.sweep --cache /tmp/cas --cache-verify --cache-cap 1024",
        ))
        .unwrap() else {
            panic!("not sweep")
        };
        assert_eq!(req.cache, Some(PathBuf::from("/tmp/cas")));
        assert!(req.cache_verify);
        assert_eq!(req.cache_cap, Some(1024));
        // `off` is the explicit disable, same as omitting the flag
        let Command::Sweep(req) = parse(&argv("sweep a.sweep --cache off")).unwrap() else {
            panic!("not sweep")
        };
        assert_eq!(req.cache, None);

        assert_eq!(
            parse(&argv("sweep-worker --stdio --cache /tmp/cas")).unwrap(),
            Command::SweepWorker(SweepWorkerRequest {
                mode: WorkerMode::Stdio,
                cache: Some(PathBuf::from("/tmp/cas")),
            })
        );
        assert_eq!(
            parse(&argv("sweep-worker --connect 1.2.3.4:5 --cache off")).unwrap(),
            Command::SweepWorker(SweepWorkerRequest {
                mode: WorkerMode::Connect("1.2.3.4:5".to_string()),
                cache: None,
            })
        );

        let Command::Serve(req) = parse(&argv("serve --stdio --cache /tmp/cas")).unwrap() else {
            panic!("not serve")
        };
        assert_eq!(req.cache, Some(PathBuf::from("/tmp/cas")));
    }

    #[test]
    fn serve_and_clients_parse() {
        let cmd = parse(&argv(
            "serve --listen 127.0.0.1:4710 --max-queue 8 --executors 3 --dist 2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeRequest {
                listen: Some("127.0.0.1:4710".to_string()),
                stdio: false,
                max_queue: 8,
                executors: 3,
                job_workers: 0,
                dist_workers: Some(2),
                cache: None,
            })
        );
        assert!(parse(&argv("serve --stdio --listen x")).is_err());
        assert!(parse(&argv("serve --executors 0")).is_err());

        let cmd = parse(&argv(
            "serve-submit 127.0.0.1:4710 specs/smoke.sweep --quick --seed 7 --out d --metrics m",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::ServeSubmit(ServeSubmitRequest {
                addr: "127.0.0.1:4710".to_string(),
                spec_path: PathBuf::from("specs/smoke.sweep"),
                quick: true,
                seed: Some(7),
                out: PathBuf::from("d"),
                metrics: Some(PathBuf::from("m")),
            })
        );
        assert!(parse(&argv("serve-submit onlyaddr")).is_err());

        let cmd = parse(&argv("serve-bench --full --clients 4 --jobs 2")).unwrap();
        assert_eq!(
            cmd,
            Command::ServeBench(ServeBenchRequest {
                full: true,
                clients: Some(4),
                jobs: Some(2),
            })
        );
    }

    #[test]
    fn experiments_bench_and_misc_parse() {
        let Command::Experiments(req) = parse(&argv("e3 e8 --full --seed 5")).unwrap() else {
            panic!()
        };
        assert_eq!(req.ids, vec!["e3", "e8"]);
        assert_eq!(req.effort, Effort::Full);
        assert_eq!(req.seed, 5);

        let Command::Experiments(req) = parse(&argv("all")).unwrap() else {
            panic!()
        };
        assert!(!req.ids.is_empty());

        let Command::Bench(req) = parse(&argv("bench --compare --tolerance 0.1")).unwrap() else {
            panic!()
        };
        assert_eq!(req.compare, Some(PathBuf::from("BENCH_baseline.json")));
        assert!((req.tolerance - 0.1).abs() < 1e-12);
        assert_eq!(req.group, None);
        assert!(parse(&argv("bench --tolerance 2.0")).is_err());

        let Command::Bench(req) = parse(&argv("bench --group mega_scale")).unwrap() else {
            panic!()
        };
        assert_eq!(req.group.as_deref(), Some("mega_scale"));
        let err = parse(&argv("bench --group nonsense")).unwrap_err();
        assert!(err.0.contains("unknown group `nonsense`"), "{err}");
        assert!(err.0.contains("rng_batch"), "{err}");
        assert!(err.0.contains("--list-groups"), "{err}");
        assert!(parse(&argv("bench --group")).is_err());

        let Command::Bench(req) = parse(&argv("bench --list-groups")).unwrap() else {
            panic!()
        };
        assert!(req.list_groups);

        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert!(parse(&argv("list extra")).is_err());
        assert_eq!(
            parse(&argv("sweep-worker --connect 1.2.3.4:5")).unwrap(),
            Command::SweepWorker(SweepWorkerRequest {
                mode: WorkerMode::Connect("1.2.3.4:5".to_string()),
                cache: None,
            })
        );
        assert!(parse(&argv("check-metrics")).is_err());
        assert!(parse(&argv("--definitely-not-a-flag")).is_err());
        assert!(parse(&[]).is_err());
    }
}
