//! Experiment harness: regenerates every quantitative claim of
//! *Ant-Inspired Density Estimation via Random Walks* (Musco, Su, Lynch).
//!
//! The paper is a theory paper — its "results" are theorems. Each
//! experiment module here turns one theorem/lemma family into a table
//! whose *shape* (decay exponents, ratios, crossovers, coverage
//! probabilities) must match the paper's prediction; `EXPERIMENTS.md`
//! records paper-vs-measured for each.
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Theorem 1: torus accuracy `ε ≈ √(log(1/δ)/td)·log 2t` |
//! | E2 | Lemma 2 / Cor. 3: unbiasedness on every topology |
//! | E3 | Lemma 4 / Lemma 9: torus re-collision `O(1/(m+1) + 1/A)` |
//! | E4 | Cor. 10: equalization `Θ(1/(m+1))`, 0 at odd lags |
//! | E5 | Lemma 11 / Cor. 15 / Cor. 16: collision-count moments |
//! | E6 | §1.1: torus vs complete graph — a `log 2t` gap |
//! | E7 | Theorem 32: Algorithm 4 accuracy and `c mod t` correction |
//! | E8 | Lemma 20 / Thm 21: ring `1/√m` re-collision, `t^{-1/4}` error |
//! | E9 | Lemma 22: k-dim tori match independent sampling (k ≥ 3) |
//! | E10 | Lemma 23/24: expander `λ^m` re-collision |
//! | E11 | Lemma 25/26: hypercube `(9/10)^{m-1} + 1/√A` |
//! | E12 | Thm 27 + §5.1.5: network size, query exponents vs KLSC14 |
//! | E13 | Thm 31: average-degree estimation |
//! | E14 | §5.1.4: burn-in TV decay and estimate bias |
//! | E15 | §5.2 + §6.1: frequency estimation, noise, biased walks |
//! | E16 | extension (§2.1.1/§6.1): clustered placement, local density |
//! | E17 | extension (§6.1/§6.3.3): avoidance/flee behaviours; single-walk sizing |
//!
//! Run everything with `cargo run -p antdensity-bench --bin repro --release -- all`.
//!
//! `repro bench` times the engine's stepping paths and writes the
//! machine-readable `BENCH_engine.json` ([`perf`]), the perf trajectory
//! CI tracks from PR to PR; `repro bench --compare` gates the result
//! against the committed `BENCH_baseline.json` (median-of-ratios, 25%
//! tolerance — [`perf::compare`]).
//!
//! `repro sweep SPEC` runs a declarative parameter-grid sweep
//! (`antdensity-sweep`): committed specs under `specs/` replace
//! hand-written experiment binaries for grid-shaped studies, with
//! checkpoint/resume and bit-identical aggregates.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cli;
pub mod experiments;
pub mod perf;
pub mod report;

pub use perf::{BenchComparison, CompareRow, EngineBenchReport, EngineBenchResult};
pub use report::{Effort, ExperimentReport};
