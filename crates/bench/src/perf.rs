//! Machine-readable engine throughput benchmarks: `BENCH_engine.json`.
//!
//! The criterion benches (`benches/engine.rs`) are for humans at a
//! terminal; this module is the tracked perf trajectory. `repro bench`
//! times the engine's stepping paths — the monomorphized sequential
//! kernel, the worker-pool parallel path across worker counts, and the
//! per-round-spawn baseline the pool replaced — and writes one JSON file
//! that CI uploads as an artifact, so every PR's throughput is
//! comparable to the last.
//!
//! The JSON schema (documented in README.md):
//!
//! ```json
//! {
//!   "bench": "engine",
//!   "mode": "quick",
//!   "topology": "torus2d_512",
//!   "samples": 5,
//!   "results": [
//!     {
//!       "group": "parallel_scaling",
//!       "impl": "pool",
//!       "agents": 16384,
//!       "workers": 4,
//!       "effective_workers": 4,
//!       "ns_per_agent_step": 14.21,
//!       "msteps_per_sec": 70.37
//!     }
//!   ]
//! }
//! ```
//!
//! All figures are medians over `samples` timed batches. `workers` is
//! the *requested* worker count; `effective_workers` is what the
//! implementation actually ran after its own caps (the spawn baseline
//! caps at the host's core count, the pool path at the schedule-chunk
//! supply) — compare rows with matching effective parallelism. Timings
//! move with the host, but the `pool` / `spawn_baseline` ratio on one
//! host is the number the worker-pool work is judged by.

use crate::report::Effort;
use antdensity_engine::sampling::{
    fill_uniform_indices, fill_uniform_indices_lanes, lane_rngs, RNG_LANES,
};
use antdensity_engine::step::step_slice_pure_batched;
use antdensity_engine::{
    CountsEngine, DenseOccupancy, Engine, EngineConfig, WorkerPool, STREAM_BLOCK,
};
use antdensity_graphs::{generators, CsrGraph, Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use antdensity_stats::table::Table;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One timed configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBenchResult {
    /// Benchmark family (`sequential` or `parallel_scaling`).
    pub group: &'static str,
    /// Implementation under test (`mono`, `pool`, `spawn_baseline`).
    pub implementation: &'static str,
    /// Population size.
    pub agents: usize,
    /// Requested worker count (1 for the sequential group).
    pub workers: usize,
    /// Worker count the implementation actually used after its caps.
    pub effective_workers: usize,
    /// Median wall-clock per agent-step, nanoseconds.
    pub ns_per_agent_step: f64,
    /// Throughput in millions of agent-steps per second.
    pub msteps_per_sec: f64,
}

/// The whole `BENCH_engine.json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBenchReport {
    /// `quick` or `full`.
    pub mode: &'static str,
    /// Median samples per configuration.
    pub samples: usize,
    /// All timed configurations.
    pub results: Vec<EngineBenchResult>,
}

/// Times `rounds` invocations of `round`, `samples` times, and returns
/// the median nanoseconds per invocation.
fn median_ns_per_round<F: FnMut()>(mut round: F, rounds: u64, samples: usize) -> f64 {
    // warm-up: one batch
    for _ in 0..rounds {
        round();
    }
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..rounds {
                round();
            }
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64 / rounds as f64
}

/// Rounds per timed batch: aim for a fixed number of agent-steps so
/// every configuration gets comparable measurement mass.
fn rounds_for(agents: usize, effort: Effort) -> u64 {
    let target_steps = effort.trials(2_000_000, 8_000_000);
    (target_steps / agents as u64).clamp(4, 4096)
}

const SIDE: u64 = 512;
const SAMPLES: usize = 5;

fn result(
    group: &'static str,
    implementation: &'static str,
    agents: usize,
    workers: usize,
    effective_workers: usize,
    ns_per_round: f64,
) -> EngineBenchResult {
    let ns_per_agent_step = ns_per_round / agents as f64;
    EngineBenchResult {
        group,
        implementation,
        agents,
        workers,
        effective_workers,
        ns_per_agent_step,
        msteps_per_sec: 1e3 / ns_per_agent_step,
    }
}

/// Every benchmark family `repro bench` can run. `--group NAME`
/// restricts a run to one entry; the JSON written then carries only
/// that family, and a `--compare` gate evaluates just its rows (the
/// baseline's other families are simply not matched).
pub const GROUPS: &[&str] = &[
    "sequential",
    "parallel_scaling",
    "csr_stepping",
    "observer_fusion",
    "telemetry_overhead",
    "dist_sweep",
    "serve_bench",
    "mega_scale",
    "rng_batch",
    "cache",
];

/// Runs the engine benchmark suite. `Quick` times 1k/16k agents (the CI
/// smoke configuration); `Full` adds 256k agents and more steps per
/// sample.
pub fn run_engine_bench(effort: Effort) -> EngineBenchReport {
    run_engine_bench_group(effort, None).expect("no group filter to reject")
}

/// [`run_engine_bench`] restricted to one benchmark family from
/// [`GROUPS`] (`None` runs everything) — the `repro bench --group`
/// entry point, so a single family can be re-measured without paying
/// for the whole suite.
///
/// # Errors
///
/// Returns a message naming the known groups if `group` is not one of
/// them.
pub fn run_engine_bench_group(
    effort: Effort,
    group: Option<&str>,
) -> Result<EngineBenchReport, String> {
    if let Some(g) = group {
        if !GROUPS.contains(&g) {
            return Err(format!(
                "unknown bench group `{g}` (known: {})",
                GROUPS.join(", ")
            ));
        }
    }
    let want = |name: &str| group.is_none_or(|g| g == name);
    let agent_grid: &[usize] = match effort {
        Effort::Quick => &[1024, 16_384],
        Effort::Full => &[1024, 16_384, 262_144],
    };
    let mut results = Vec::new();

    for &agents in agent_grid {
        let rounds = rounds_for(agents, effort);

        if want("sequential") {
            // Sequential legacy-order path (monomorphized + batched
            // kernel).
            let mut engine = Engine::new(Torus2d::new(SIDE), agents);
            let mut rng = SmallRng::seed_from_u64(1);
            engine.place_uniform(&mut rng);
            let ns = median_ns_per_round(|| engine.step_round(&mut rng), rounds, SAMPLES);
            results.push(result("sequential", "mono", agents, 1, 1, ns));
        }

        for workers in [1usize, 2, 4, 8] {
            if !want("parallel_scaling") {
                break;
            }
            // Persistent-pool path. An explicit pool pins the worker
            // cap regardless of the host's core count, and
            // STREAM_BLOCK-sized chunks with min_chunks_per_worker: 1
            // keep the chunk supply from collapsing the worker count at
            // small populations. Residual caps still apply (e.g. 1024
            // agents = 4 chunks can feed at most 4 workers), so the
            // worker count that actually ran is recorded alongside the
            // requested one.
            let mut engine = Engine::new(Torus2d::new(SIDE), agents)
                .with_seed_sequence(SeedSequence::new(7))
                .with_threads(workers)
                .with_worker_pool(Arc::new(WorkerPool::new(workers)))
                .with_config(EngineConfig {
                    schedule_chunk: STREAM_BLOCK,
                    min_chunks_per_worker: 1,
                    // Measure raw pool scaling even at 1k agents (the
                    // default threshold would collapse those rows to the
                    // inline path and hide the hand-off cost the
                    // baseline tracks).
                    inline_step_threshold: 0,
                    blocked_round_threshold: usize::MAX,
                });
            let mut rng = SmallRng::seed_from_u64(2);
            engine.place_uniform(&mut rng);
            let effective = engine.parallel_workers();
            let ns = median_ns_per_round(|| engine.step_round_parallel(), rounds, SAMPLES);
            results.push(result(
                "parallel_scaling",
                "pool",
                agents,
                workers,
                effective,
                ns,
            ));

            // The pre-pool implementation: per-round thread::scope
            // spawns, dyn-erased draw chain, per-round parallelism
            // probe — verbatim what shipped before the worker pool
            // (including its own caps: it never exceeds the host's core
            // count, hence the recorded effective worker count).
            let mut engine = Engine::new(Torus2d::new(SIDE), agents)
                .with_seed_sequence(SeedSequence::new(7))
                .with_threads(workers);
            let mut rng = SmallRng::seed_from_u64(2);
            engine.place_uniform(&mut rng);
            let effective = engine.spawn_workers();
            let ns = median_ns_per_round(|| engine.step_round_parallel_spawn(), rounds, SAMPLES);
            results.push(result(
                "parallel_scaling",
                "spawn_baseline",
                agents,
                workers,
                effective,
                ns,
            ));
        }
    }

    if want("csr_stepping") {
        bench_csr_stepping(effort, agent_grid, &mut results);
    }
    if want("observer_fusion") {
        bench_observer_fusion(effort, &mut results);
    }
    if want("telemetry_overhead") {
        bench_telemetry_overhead(effort, agent_grid, &mut results);
    }
    if want("dist_sweep") {
        bench_dist_sweep(effort, &mut results);
    }
    if want("serve_bench") {
        bench_serve(effort, &mut results);
    }
    if want("mega_scale") {
        bench_mega_scale(effort, &mut results);
    }
    if want("rng_batch") {
        bench_rng_batch(effort, &mut results);
    }
    if want("cache") {
        bench_cache(effort, &mut results);
    }

    Ok(EngineBenchReport {
        mode: match effort {
            Effort::Quick => "quick",
            Effort::Full => "full",
        },
        samples: SAMPLES,
        results,
    })
}

/// Side of the mega-scale bench torus: `64² = 4096` nodes keeps the
/// whole count vector cache-resident while populations go to millions,
/// so the mean occupancy sits in the hundreds — the regime the
/// count-based representation exists for.
const MEGA_SIDE: u64 = 64;

/// The mega-scale stepping group: the per-agent engine against the
/// count-based [`CountsEngine`] on the identical pure-walk workload.
/// Throughput is counted in **delivered** agent-steps — one counts
/// round advances every one of the `agents` walkers — so the two rows
/// compare directly even though the counts row touches O(nodes) state
/// instead of O(agents). The paths agree distributionally, not
/// bitwise; `engine/tests/counts_equivalence.rs` pins that contract.
fn bench_mega_scale(effort: Effort, results: &mut Vec<EngineBenchResult>) {
    let agent_grid: &[usize] = match effort {
        Effort::Quick => &[1 << 20],
        Effort::Full => &[1 << 20, 1 << 22],
    };
    for &agents in agent_grid {
        // Few rounds per batch: the agent-level row at 2^20+ agents is
        // the slow side and bounds the suite's wall clock.
        let rounds = 4;

        let mut engine = Engine::new(Torus2d::new(MEGA_SIDE), agents);
        let mut rng = SmallRng::seed_from_u64(9);
        engine.place_uniform(&mut rng);
        let ns = median_ns_per_round(|| engine.step_round(&mut rng), rounds, SAMPLES);
        results.push(result("mega_scale", "agent_level", agents, 1, 1, ns));

        let mut engine = CountsEngine::new(Torus2d::new(MEGA_SIDE), agents as u64)
            .with_seed_sequence(SeedSequence::new(9));
        engine.place_uniform(&SeedSequence::new(10));
        let ns = median_ns_per_round(|| engine.step_round(), rounds, SAMPLES);
        results.push(result("mega_scale", "counts", agents, 1, 1, ns));
    }
}

/// Slots per fill in the `rng_batch` group — a few streaming blocks'
/// worth, large enough that per-call setup vanishes.
const RNG_BATCH_LEN: usize = 1 << 16;

/// The batched-RNG group: filling a buffer of degree-6 neighbor
/// indices four ways. `scalar_draws` is the agent-level kernel's
/// per-draw sampler (`gen_range` per slot, zone recomputed every
/// call); `seq_fill` drains one generator through the batched fill
/// with the Lemire zone hoisted out of the loop; `lane_fill`
/// additionally interleaves [`RNG_LANES`] deterministic lane
/// generators so consecutive slots never wait on one xoshiro state
/// chain; `bulk_u64` is the raw word fill (`SmallRng::fill_u64`) with
/// no index mapping at all — the upper bound the samplers chase.
///
/// Degree 6 on purpose: a non-power-of-two span (the random-regular
/// CSR workload) exercises the Lemire rejection path, where per-draw
/// setup dominates the scalar sampler. Power-of-two spans collapse
/// every variant to a single mask per word and all four rows sit at
/// the raw-generation bound. `agents` is the buffer length and
/// ns/step is ns per filled slot.
fn bench_rng_batch(effort: Effort, results: &mut Vec<EngineBenchResult>) {
    let rounds = rounds_for(RNG_BATCH_LEN, effort);
    let span = 6u64;
    let mut buf = vec![0u32; RNG_BATCH_LEN];

    let mut rng = SmallRng::seed_from_u64(11);
    let ns = median_ns_per_round(
        || {
            for slot in buf.iter_mut() {
                *slot = rng.gen_range(0..span) as u32;
            }
            std::hint::black_box(&mut buf);
        },
        rounds,
        SAMPLES,
    );
    results.push(result("rng_batch", "scalar_draws", RNG_BATCH_LEN, 1, 1, ns));

    let mut rng = SmallRng::seed_from_u64(11);
    let ns = median_ns_per_round(
        || {
            fill_uniform_indices(span, &mut buf, &mut rng);
            std::hint::black_box(&mut buf);
        },
        rounds,
        SAMPLES,
    );
    results.push(result("rng_batch", "seq_fill", RNG_BATCH_LEN, 1, 1, ns));

    let mut lanes = lane_rngs(&SeedSequence::new(11), 0);
    debug_assert_eq!(lanes.len(), RNG_LANES);
    let ns = median_ns_per_round(
        || {
            fill_uniform_indices_lanes(span, &mut buf, &mut lanes);
            std::hint::black_box(&mut buf);
        },
        rounds,
        SAMPLES,
    );
    results.push(result("rng_batch", "lane_fill", RNG_BATCH_LEN, 1, 1, ns));

    let mut words = vec![0u64; RNG_BATCH_LEN];
    let mut rng = SmallRng::seed_from_u64(12);
    let ns = median_ns_per_round(
        || {
            rng.fill_u64(&mut words);
            std::hint::black_box(&mut words);
        },
        rounds,
        SAMPLES,
    );
    results.push(result("rng_batch", "bulk_u64", RNG_BATCH_LEN, 1, 1, ns));
}

/// Node count of the random-regular CSR bench graph. Modest on purpose:
/// the graph is built once per invocation (Steger–Wormald pairing) and
/// the group measures *stepping*, not generation.
const CSR_RR_NODES: u64 = 65_536;
/// Degree of the random-regular CSR bench graph (non-power-of-two-free
/// on purpose: 8 exercises the mask path of the batched sampler).
const CSR_RR_DEGREE: usize = 8;

/// The pluggable-backend stepping group: the CSR rebuild of the bench
/// torus against the native torus (identical batched kernel and RNG
/// stream; the native path applies moves with branchless wrap
/// arithmetic, the CSR path with an offset load plus a target gather),
/// and a random `8`-regular CSR graph — the "bring your own graph"
/// workload with no structured fast path at all. Sequential stepping:
/// the group isolates the per-agent topology cost, not scheduling.
fn bench_csr_stepping(effort: Effort, agent_grid: &[usize], results: &mut Vec<EngineBenchResult>) {
    let csr_torus = CsrGraph::from_topology(&Torus2d::new(SIDE));
    let mut build_rng = SmallRng::seed_from_u64(42);
    let random_regular = CsrGraph::from_adj(
        &generators::random_regular(CSR_RR_NODES, CSR_RR_DEGREE, 1000, &mut build_rng)
            .expect("bench graph parameters are valid"),
    );
    for &agents in agent_grid {
        let rounds = rounds_for(agents, effort);

        let mut engine = Engine::new(Torus2d::new(SIDE), agents);
        let mut rng = SmallRng::seed_from_u64(3);
        engine.place_uniform(&mut rng);
        let ns = median_ns_per_round(|| engine.step_round(&mut rng), rounds, SAMPLES);
        results.push(result("csr_stepping", "torus_native", agents, 1, 1, ns));

        let mut engine = Engine::new(csr_torus.clone(), agents);
        let mut rng = SmallRng::seed_from_u64(3);
        engine.place_uniform(&mut rng);
        let ns = median_ns_per_round(|| engine.step_round(&mut rng), rounds, SAMPLES);
        results.push(result("csr_stepping", "torus_csr", agents, 1, 1, ns));

        let mut engine = Engine::new(random_regular.clone(), agents);
        let mut rng = SmallRng::seed_from_u64(3);
        engine.place_uniform(&mut rng);
        let ns = median_ns_per_round(|| engine.step_round(&mut rng), rounds, SAMPLES);
        results.push(result(
            "csr_stepping",
            "random_regular_csr",
            agents,
            1,
            1,
            ns,
        ));
    }
}

/// The multi-estimator single-pass group: one fused
/// [`Scenario::run_streamed`] pass (Algorithm 1 + quorum + relative
/// frequency taps, each on a 4-checkpoint rounds schedule) against the
/// twelve dedicated `Scenario::run` invocations it replaces. Both
/// implementations deliver the identical set of outcomes, so throughput
/// is counted in **delivered** agent-steps — the rounds the unfused
/// path must simulate — making the fused rows' higher Msteps/s exactly
/// the observer-pipeline win.
fn bench_observer_fusion(effort: Effort, results: &mut Vec<EngineBenchResult>) {
    use antdensity_engine::{EstimatorSpec, ObserverTap, Scenario, Schedule, TopologySpec};

    let agent_grid: &[usize] = match effort {
        Effort::Quick => &[1024],
        Effort::Full => &[1024, 4096],
    };
    let checkpoints: [u64; 4] = [16, 32, 64, 128];
    for &agents in agent_grid {
        let topology = TopologySpec::Torus2d { side: 256 };
        let estimators = [
            EstimatorSpec::Algorithm1,
            EstimatorSpec::Quorum { threshold: 0.1 },
            EstimatorSpec::RelativeFrequency {
                property_agents: agents / 4,
            },
        ];
        let delivered_steps: u64 =
            agents as u64 * checkpoints.iter().sum::<u64>() * estimators.len() as u64;
        let base = Scenario::new(topology, agents, *checkpoints.last().expect("non-empty"));
        let taps: Vec<ObserverTap> = estimators
            .iter()
            .map(|e| ObserverTap {
                estimator: e.clone(),
                schedule: Schedule::new(checkpoints.to_vec()).expect("static schedule"),
            })
            .collect();

        let mut seed = 0u64;
        let fused_ns = median_ns_per_round(
            || {
                seed += 1;
                std::hint::black_box(base.run_streamed(seed, &taps));
            },
            1,
            SAMPLES,
        );
        let mut seed = 0u64;
        let unfused_ns = median_ns_per_round(
            || {
                seed += 1;
                for estimator in &estimators {
                    for &rounds in &checkpoints {
                        let scenario = Scenario::new(topology, agents, rounds)
                            .with_estimator(estimator.clone());
                        std::hint::black_box(scenario.run(seed));
                    }
                }
            },
            1,
            SAMPLES,
        );
        for (implementation, ns) in [("fused", fused_ns), ("unfused", unfused_ns)] {
            let ns_per_delivered_step = ns / delivered_steps as f64;
            results.push(EngineBenchResult {
                group: "observer_fusion",
                implementation,
                agents,
                workers: 1,
                effective_workers: 1,
                ns_per_agent_step: ns_per_delivered_step,
                msteps_per_sec: 1e3 / ns_per_delivered_step,
            });
        }
    }
}

/// The telemetry cost-model group, proving the `antdensity-telemetry`
/// budget empirically:
///
/// * `untouched` — a hand-rolled replica of the single-worker
///   [`Engine::step_round_parallel`] round (same per-round
///   [`SeedSequence::subsequence`] derivation, same per-`STREAM_BLOCK`
///   stream split, same batched kernel, same occupancy rebuild) built
///   directly on the public kernel with **no** telemetry call sites at
///   all. Using [`Engine::step_round`] here would conflate the gate
///   cost with the mono kernel's different RNG regime (one continuous
///   stream versus one derived stream per block per round), a path
///   difference that predates telemetry;
/// * `disabled` — the instrumented [`Engine::step_round_parallel`] at
///   one worker with the global flag off: the per-round cost is exactly
///   one relaxed atomic load, so this row must sit within noise of
///   `untouched`;
/// * `enabled` — the same path with counters, spans, and the draw/apply
///   sub-phase clocks live (trace capture off), bounding what
///   `repro sweep` pays for always-on collection.
///
/// Single worker on purpose: scheduling noise would swamp the
/// few-nanosecond effect being measured.
fn bench_telemetry_overhead(
    effort: Effort,
    agent_grid: &[usize],
    results: &mut Vec<EngineBenchResult>,
) {
    let was_enabled = antdensity_telemetry::enabled();
    for &agents in agent_grid {
        let rounds = rounds_for(agents, effort);

        let topo = Torus2d::new(SIDE);
        let span = topo
            .regular_degree()
            .map(|d| d as u64)
            .expect("the 2-d torus is regular");
        let mut positions = vec![0u32; agents];
        let mut occ = DenseOccupancy::new(topo.num_nodes());
        let mut rng = SmallRng::seed_from_u64(5);
        for p in positions.iter_mut() {
            *p = topo.uniform_node(&mut rng) as u32;
        }
        occ.rebuild(&positions);
        let seeds = SeedSequence::new(7);
        let mut round = 0u64;
        let ns = median_ns_per_round(
            || {
                let round_seq = seeds.subsequence(round);
                for (j, block) in positions.chunks_mut(STREAM_BLOCK).enumerate() {
                    let mut rng = round_seq.rng(j as u64);
                    step_slice_pure_batched(&topo, span, block, &mut rng);
                }
                occ.rebuild(&positions);
                round += 1;
            },
            rounds,
            SAMPLES,
        );
        results.push(result("telemetry_overhead", "untouched", agents, 1, 1, ns));

        for (implementation, on) in [("disabled", false), ("enabled", true)] {
            antdensity_telemetry::set_enabled(on);
            let mut engine = Engine::new(Torus2d::new(SIDE), agents)
                .with_seed_sequence(SeedSequence::new(7))
                .with_threads(1);
            let mut rng = SmallRng::seed_from_u64(5);
            engine.place_uniform(&mut rng);
            let ns = median_ns_per_round(|| engine.step_round_parallel(), rounds, SAMPLES);
            antdensity_telemetry::set_enabled(false);
            results.push(result(
                "telemetry_overhead",
                implementation,
                agents,
                1,
                1,
                ns,
            ));
        }
    }
    antdensity_telemetry::set_enabled(was_enabled);
}

/// The distributed-sweep coordination group: one tiny four-cell sweep
/// executed three ways — the in-process shard runner (`inproc`), the
/// virtual-clock coordinator/worker simulator at four workers
/// (`dist_sim`), and the same simulator under a seeded fault plan
/// (`dist_sim_faulty`: one scripted worker kill plus one dropped
/// result, forcing a respawn and a lease re-issue). All three produce
/// byte-identical aggregates — `tests/dist_determinism.rs` pins that —
/// so the rows isolate what lease bookkeeping, blob serialisation, and
/// fault recovery cost on top of the shard compute itself. Throughput
/// is counted in delivered agent-steps (`Σ cells agents × rounds ×
/// trials`), the same work under every implementation.
fn bench_dist_sweep(effort: Effort, results: &mut Vec<EngineBenchResult>) {
    use antdensity_sweep::dist::{DistOptions, FaultPlan};
    use antdensity_sweep::{run_sweep, run_sweep_distributed, SweepOptions, SweepSpec};

    const DIST_WORKERS: usize = 4;
    let trials = effort.trials(2, 6);
    let spec_text = format!(
        "name = bench_dist\nseed = 3\ntrials = {trials}\n\
         topology = torus2d:8, complete:64\ndensity = 0.1, 0.25\n\
         rounds = 8\nestimator = alg1\n"
    );
    let spec = SweepSpec::parse(&spec_text).expect("bench spec is valid");
    let resolved = spec.resolve(false).expect("bench spec resolves");
    let delivered_steps: u64 = resolved
        .cells
        .iter()
        .map(|c| c.num_agents as u64 * c.rounds)
        .sum::<u64>()
        * resolved.trials;
    let agents: usize = resolved.cells.iter().map(|c| c.num_agents).sum();
    let opts = SweepOptions {
        workers: DIST_WORKERS,
        ..SweepOptions::default()
    };

    let mut push = |implementation: &'static str, ns: f64| {
        let ns_per_delivered_step = ns / delivered_steps as f64;
        results.push(EngineBenchResult {
            group: "dist_sweep",
            implementation,
            agents,
            workers: DIST_WORKERS,
            effective_workers: DIST_WORKERS,
            ns_per_agent_step: ns_per_delivered_step,
            msteps_per_sec: 1e3 / ns_per_delivered_step,
        });
    };

    let ns = median_ns_per_round(
        || {
            std::hint::black_box(run_sweep(&spec, &opts).expect("bench sweep runs"));
        },
        1,
        SAMPLES,
    );
    push("inproc", ns);

    let faulty = FaultPlan::parse("kill:lease2,drop:result@1").expect("bench fault plan parses");
    for (implementation, plan) in [("dist_sim", FaultPlan::none()), ("dist_sim_faulty", faulty)] {
        let dopts = DistOptions::sim(DIST_WORKERS, plan);
        let ns = median_ns_per_round(
            || {
                std::hint::black_box(
                    run_sweep_distributed(&spec, &opts, &dopts)
                        .expect("bench distributed sweep runs"),
                );
            },
            1,
            SAMPLES,
        );
        push(implementation, ns);
    }
}

/// The service-layer group: the same batch of small sweep jobs executed
/// two ways — `direct` runs each job's sweep sequentially in process
/// (the `repro sweep` path, no daemon anywhere), `served` pushes the
/// whole batch through a fresh `repro serve` daemon over real TCP with
/// four concurrent clients. Job bytes are identical either way (the
/// serve determinism suite pins that), so the pair isolates what
/// admission, queueing, event streaming, and socket framing cost per
/// delivered agent-step on top of the sweep compute itself.
fn bench_serve(effort: Effort, results: &mut Vec<EngineBenchResult>) {
    use antdensity_serve::{Client, ServeConfig, Server, Submit};
    use antdensity_sweep::{run_sweep, SweepJob, SweepOptions};

    const CLIENTS: usize = 4;
    let jobs_per_client = effort.trials(2, 6) as usize;
    let trials = effort.trials(1, 2);
    let spec_text = format!(
        "name = bench_serve\nseed = 5\ntrials = {trials}\n\
         topology = complete:64\ndensity = 0.25\n\
         rounds = 8, 16\nestimator = alg1\n"
    );
    let job_for = |client: usize, j: usize| {
        let mut job = SweepJob::new(spec_text.clone());
        job.seed_override = Some(3000 + (client * jobs_per_client + j) as u64);
        job
    };
    let validated = job_for(0, 0).validate().expect("bench serve spec is valid");
    let per_job_steps: u64 = validated
        .resolved
        .cells
        .iter()
        .map(|c| c.num_agents as u64 * c.rounds)
        .sum::<u64>()
        * validated.resolved.trials;
    let total_jobs = CLIENTS * jobs_per_client;
    let delivered_steps = per_job_steps * total_jobs as u64;
    let agents: usize = validated.resolved.cells.iter().map(|c| c.num_agents).sum();

    let mut push = |implementation: &'static str, ns: f64| {
        let ns_per_delivered_step = ns / delivered_steps as f64;
        results.push(EngineBenchResult {
            group: "serve_bench",
            implementation,
            agents,
            workers: CLIENTS,
            effective_workers: CLIENTS,
            ns_per_agent_step: ns_per_delivered_step,
            msteps_per_sec: 1e3 / ns_per_delivered_step,
        });
    };

    let opts = SweepOptions::default();
    let ns = median_ns_per_round(
        || {
            for c in 0..CLIENTS {
                for j in 0..jobs_per_client {
                    let v = job_for(c, j).validate().expect("job validates");
                    std::hint::black_box(run_sweep(&v.spec, &opts).expect("bench sweep runs"));
                }
            }
        },
        1,
        SAMPLES,
    );
    push("direct", ns);

    let ns = median_ns_per_round(
        || {
            let server = Server::bind(
                "127.0.0.1:0",
                ServeConfig {
                    executors: 2,
                    max_queue: total_jobs + CLIENTS,
                    ..ServeConfig::default()
                },
            )
            .expect("bench daemon binds");
            let addr = server.local_addr().to_string();
            std::thread::scope(|scope| {
                for c in 0..CLIENTS {
                    let addr = addr.clone();
                    let job_for = &job_for;
                    scope.spawn(move || {
                        let mut client = Client::connect(&addr).expect("bench client connects");
                        let batch = (0..jobs_per_client)
                            .map(|j| Submit {
                                job: job_for(c, j),
                                label: None,
                            })
                            .collect();
                        let results = client.run_batch(batch).expect("bench batch runs");
                        for res in &results {
                            assert_eq!(res.state, "done", "{}", res.reason);
                        }
                        std::hint::black_box(results);
                    });
                }
            });
            server.shutdown();
            server.wait();
        },
        1,
        SAMPLES,
    );
    push("served", ns);
}

/// The result-cache group: one small sweep (the `dist_sweep` shape)
/// executed three ways — `nocache` (the plain in-process runner),
/// `cold` (a fresh empty cache per invocation: every shard simulates,
/// then publishes its blob), and `warm` (a pre-populated cache: every
/// shard is served from disk and simulation is skipped entirely).
/// Reports are byte-identical across all three rows — the cache
/// robustness suite pins that — so the figures isolate what publishing
/// costs cold and what a warm rerun saves. Throughput is counted in
/// **delivered** agent-steps; the warm row's Msteps/s measures
/// delivered (not simulated) work per second, so it being far above
/// the others is the point, not an artifact.
fn bench_cache(effort: Effort, results: &mut Vec<EngineBenchResult>) {
    use antdensity_sweep::{run_sweep, ShardCache, SweepOptions, SweepSpec};

    const WORKERS: usize = 4;
    let trials = effort.trials(2, 6);
    // Heavy enough per shard that simulating dwarfs the blob
    // read+parse a warm hit pays; a trivial spec would measure cache
    // I/O overhead instead of the work the cache saves.
    let spec_text = format!(
        "name = bench_cache\nseed = 3\ntrials = {trials}\n\
         topology = torus2d:32, complete:256\ndensity = 0.1, 0.25\n\
         rounds = 64\nestimator = alg1\n"
    );
    let spec = SweepSpec::parse(&spec_text).expect("bench spec is valid");
    let resolved = spec.resolve(false).expect("bench spec resolves");
    let delivered_steps: u64 = resolved
        .cells
        .iter()
        .map(|c| c.num_agents as u64 * c.rounds)
        .sum::<u64>()
        * resolved.trials;
    let agents: usize = resolved.cells.iter().map(|c| c.num_agents).sum();

    let mut push = |implementation: &'static str, ns: f64| {
        let ns_per_delivered_step = ns / delivered_steps as f64;
        results.push(EngineBenchResult {
            group: "cache",
            implementation,
            agents,
            workers: WORKERS,
            effective_workers: WORKERS,
            ns_per_agent_step: ns_per_delivered_step,
            msteps_per_sec: 1e3 / ns_per_delivered_step,
        });
    };

    let opts = SweepOptions {
        workers: WORKERS,
        ..SweepOptions::default()
    };
    let ns = median_ns_per_round(
        || {
            std::hint::black_box(run_sweep(&spec, &opts).expect("bench sweep runs"));
        },
        1,
        SAMPLES,
    );
    push("nocache", ns);

    let root = std::env::temp_dir().join(format!("antdensity_cache_bench_{}", std::process::id()));

    // Cold: a fresh empty store every invocation, so each timed sample
    // simulates everything and pays the publish cost.
    let mut invocation = 0u32;
    let ns = median_ns_per_round(
        || {
            invocation += 1;
            let dir = root.join(format!("cold{invocation}"));
            let cache = ShardCache::open(&dir).expect("bench cache opens");
            let opts = SweepOptions {
                workers: WORKERS,
                cache: Some(Arc::new(cache)),
                ..SweepOptions::default()
            };
            std::hint::black_box(run_sweep(&spec, &opts).expect("bench sweep runs"));
            std::fs::remove_dir_all(&dir).ok();
        },
        1,
        SAMPLES,
    );
    push("cold", ns);

    // Warm: one shared store. The warm-up invocation inside
    // `median_ns_per_round` populates it, so every timed sample is
    // served entirely from disk.
    let cache = Arc::new(ShardCache::open(&root.join("warm")).expect("bench cache opens"));
    let opts = SweepOptions {
        workers: WORKERS,
        cache: Some(Arc::clone(&cache)),
        ..SweepOptions::default()
    };
    let ns = median_ns_per_round(
        || {
            std::hint::black_box(run_sweep(&spec, &opts).expect("bench sweep runs"));
        },
        1,
        SAMPLES,
    );
    push("warm", ns);
    assert!(
        cache.stats().hits > 0,
        "warm cache bench rows must be served from the store"
    );
    std::fs::remove_dir_all(&root).ok();
}

impl EngineBenchReport {
    /// Serializes to the documented JSON schema (no external deps — the
    /// workspace is offline, so the writer is hand-rolled).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"engine\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"topology\": \"torus2d_{SIDE}\",\n"));
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"impl\": \"{}\", \"agents\": {}, \
                 \"workers\": {}, \"effective_workers\": {}, \
                 \"ns_per_agent_step\": {:.3}, \
                 \"msteps_per_sec\": {:.3}}}{}\n",
                r.group,
                r.implementation,
                r.agents,
                r.workers,
                r.effective_workers,
                r.ns_per_agent_step,
                r.msteps_per_sec,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `dir/BENCH_engine.json` and returns its path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("BENCH_engine.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Human-readable summary table plus the headline pool-vs-spawn
    /// speedups.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "engine throughput",
            &[
                "group", "impl", "agents", "workers", "eff", "ns/step", "Msteps/s",
            ],
        );
        for r in &self.results {
            t.row_owned(vec![
                r.group.to_string(),
                r.implementation.to_string(),
                r.agents.to_string(),
                r.workers.to_string(),
                r.effective_workers.to_string(),
                format!("{:.2}", r.ns_per_agent_step),
                format!("{:.2}", r.msteps_per_sec),
            ]);
        }
        let mut out = t.render();
        for s in self.pool_speedups() {
            out.push_str(&format!(
                "  => pool vs per-round-spawn at {} agents, {} workers requested \
                 (pool ran {}, spawn ran {}): {:.2}x\n",
                s.agents, s.workers, s.pool_effective, s.spawn_effective, s.ratio
            ));
        }
        for (agents, ratio) in self.fusion_speedups() {
            out.push_str(&format!(
                "  => fused observer pass vs dedicated per-(estimator, rounds) runs \
                 at {agents} agents: {ratio:.2}x\n"
            ));
        }
        for (agents, ratio) in self.csr_torus_ratios() {
            out.push_str(&format!(
                "  => CSR torus vs native torus at {agents} agents: {ratio:.2}x \
                 native throughput\n"
            ));
        }
        for t in self.telemetry_overheads() {
            out.push_str(&format!(
                "  => telemetry at {} agents: disabled {:.1}% / enabled {:.1}% \
                 overhead vs the untouched kernel\n",
                t.agents,
                (t.disabled_ratio - 1.0) * 100.0,
                (t.enabled_ratio - 1.0) * 100.0,
            ));
        }
        for (implementation, ratio) in self.dist_sweep_ratios() {
            out.push_str(&format!(
                "  => distributed sweep ({implementation}) vs in-process shard \
                 runner: {ratio:.2}x throughput\n"
            ));
        }
        for (agents, ratio) in self.mega_scale_speedups() {
            out.push_str(&format!(
                "  => count-based stepping vs agent-level at {agents} agents: \
                 {ratio:.2}x delivered agent-steps/s\n"
            ));
        }
        if let Some(ratio) = self.rng_batch_speedup() {
            out.push_str(&format!(
                "  => batched lane fill vs per-draw scalar sampling (span 6): \
                 {ratio:.2}x\n"
            ));
        }
        if let Some(ratio) = self.cache_speedup() {
            out.push_str(&format!(
                "  => warm result cache vs no cache: {ratio:.2}x delivered \
                 agent-steps/s\n"
            ));
        }
        out
    }

    /// Counts-over-agent-level delivered-throughput ratios of the
    /// `mega_scale` group, by population — the headline the
    /// occupancy-count representation is judged by.
    pub fn mega_scale_speedups(&self) -> Vec<(usize, f64)> {
        let of = |imp: &str, agents: usize| {
            self.results
                .iter()
                .find(|r| r.group == "mega_scale" && r.implementation == imp && r.agents == agents)
        };
        self.results
            .iter()
            .filter(|r| r.group == "mega_scale" && r.implementation == "counts")
            .filter_map(|c| {
                of("agent_level", c.agents).map(|a| (c.agents, c.msteps_per_sec / a.msteps_per_sec))
            })
            .collect()
    }

    /// Warm-cache over no-cache delivered-throughput ratio of the
    /// `cache` group — the headline a warm rerun is judged by (every
    /// shard served from disk versus every shard simulated).
    pub fn cache_speedup(&self) -> Option<f64> {
        let of = |imp: &str| {
            self.results
                .iter()
                .find(|r| r.group == "cache" && r.implementation == imp)
        };
        Some(of("warm")?.msteps_per_sec / of("nocache")?.msteps_per_sec)
    }

    /// Lane-fill throughput of the `rng_batch` group relative to the
    /// agent-level kernel's per-draw scalar sampler (above 1 = the
    /// batched lanes beat per-call `gen_range`).
    pub fn rng_batch_speedup(&self) -> Option<f64> {
        let of = |imp: &str| {
            self.results
                .iter()
                .find(|r| r.group == "rng_batch" && r.implementation == imp)
        };
        Some(of("lane_fill")?.msteps_per_sec / of("scalar_draws")?.msteps_per_sec)
    }

    /// Coordinator/simulator throughput relative to the in-process
    /// shard runner for the `dist_sweep` group (1.0 = the coordination
    /// layer is free; the faulty row additionally absorbs one respawn
    /// and one lease re-issue).
    pub fn dist_sweep_ratios(&self) -> Vec<(&'static str, f64)> {
        let inproc = self
            .results
            .iter()
            .find(|r| r.group == "dist_sweep" && r.implementation == "inproc");
        let Some(inproc) = inproc else {
            return Vec::new();
        };
        self.results
            .iter()
            .filter(|r| r.group == "dist_sweep" && r.implementation != "inproc")
            .map(|r| (r.implementation, r.msteps_per_sec / inproc.msteps_per_sec))
            .collect()
    }

    /// Telemetry cost relative to the untouched sequential kernel, by
    /// agent count: `disabled_ratio`/`enabled_ratio` are
    /// time-per-agent-step ratios against the `untouched` row (1.0 =
    /// free; the disabled row's budget is "within noise").
    pub fn telemetry_overheads(&self) -> Vec<TelemetryOverhead> {
        let of = |imp: &str, agents: usize| {
            self.results.iter().find(|r| {
                r.group == "telemetry_overhead" && r.implementation == imp && r.agents == agents
            })
        };
        self.results
            .iter()
            .filter(|r| r.group == "telemetry_overhead" && r.implementation == "untouched")
            .filter_map(|u| {
                let disabled = of("disabled", u.agents)?;
                let enabled = of("enabled", u.agents)?;
                Some(TelemetryOverhead {
                    agents: u.agents,
                    disabled_ratio: disabled.ns_per_agent_step / u.ns_per_agent_step,
                    enabled_ratio: enabled.ns_per_agent_step / u.ns_per_agent_step,
                })
            })
            .collect()
    }

    /// CSR-rebuild-over-native throughput ratios of the `csr_stepping`
    /// group by agent count (1.0 = the gather-based CSR kernel keeps up
    /// with the branchless native torus arithmetic).
    pub fn csr_torus_ratios(&self) -> Vec<(usize, f64)> {
        self.results
            .iter()
            .filter(|r| r.group == "csr_stepping" && r.implementation == "torus_csr")
            .filter_map(|c| {
                self.results
                    .iter()
                    .find(|r| {
                        r.group == "csr_stepping"
                            && r.implementation == "torus_native"
                            && r.agents == c.agents
                    })
                    .map(|n| (c.agents, c.msteps_per_sec / n.msteps_per_sec))
            })
            .collect()
    }

    /// Fused-over-unfused delivered-throughput ratios of the
    /// `observer_fusion` group, by agent count.
    pub fn fusion_speedups(&self) -> Vec<(usize, f64)> {
        let of = |imp: &str, agents: usize| {
            self.results.iter().find(|r| {
                r.group == "observer_fusion" && r.implementation == imp && r.agents == agents
            })
        };
        self.results
            .iter()
            .filter(|r| r.group == "observer_fusion" && r.implementation == "fused")
            .filter_map(|f| {
                of("unfused", f.agents)
                    .map(|u| (f.agents, u.ns_per_agent_step / f.ns_per_agent_step))
            })
            .collect()
    }

    /// Pool-over-spawn throughput ratios, paired by *requested*
    /// configuration (same agents, same `with_threads` value): the
    /// end-to-end answer to "what changed for this config when the pool
    /// replaced per-round spawns" — kernel gains included. The two
    /// implementations cap workers differently, so each pair carries
    /// both effective counts; compare like-for-like parallelism by
    /// matching those, not the requested figure.
    pub fn pool_speedups(&self) -> Vec<PoolSpeedup> {
        let mut out = Vec::new();
        for pool in self.results.iter().filter(|r| r.implementation == "pool") {
            if let Some(spawn) = self.results.iter().find(|r| {
                r.implementation == "spawn_baseline"
                    && r.agents == pool.agents
                    && r.workers == pool.workers
            }) {
                out.push(PoolSpeedup {
                    agents: pool.agents,
                    workers: pool.workers,
                    pool_effective: pool.effective_workers,
                    spawn_effective: spawn.effective_workers,
                    ratio: spawn.ns_per_agent_step / pool.ns_per_agent_step,
                });
            }
        }
        out
    }
}

/// Parses a `BENCH_engine.json` file written by
/// [`EngineBenchReport::to_json`] (one result object per line — the
/// schema this module owns, so a hand-rolled reader suffices offline).
///
/// # Errors
///
/// Returns a message for missing top-level fields or malformed result
/// lines.
pub fn parse_json(text: &str) -> Result<EngineBenchReport, String> {
    fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\": \"");
        let start = line.find(&tag)? + tag.len();
        let end = line[start..].find('"')? + start;
        Some(&line[start..end])
    }
    fn num_field(line: &str, key: &str) -> Option<f64> {
        let tag = format!("\"{key}\": ");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
    // Interned &'static labels keep the parsed report type-identical to
    // a freshly measured one.
    fn intern(s: &str) -> Result<&'static str, String> {
        for known in [
            "sequential",
            "parallel_scaling",
            "observer_fusion",
            "csr_stepping",
            "mono",
            "pool",
            "spawn_baseline",
            "fused",
            "unfused",
            "torus_native",
            "torus_csr",
            "random_regular_csr",
            "telemetry_overhead",
            "untouched",
            "disabled",
            "enabled",
            "dist_sweep",
            "inproc",
            "dist_sim",
            "dist_sim_faulty",
            "serve_bench",
            "direct",
            "served",
            "mega_scale",
            "agent_level",
            "counts",
            "rng_batch",
            "scalar_draws",
            "seq_fill",
            "lane_fill",
            "bulk_u64",
            "cache",
            "nocache",
            "cold",
            "warm",
        ] {
            if s == known {
                return Ok(known);
            }
        }
        Err(format!("unknown group/impl label `{s}`"))
    }

    let mode = match str_field(text, "mode") {
        Some("quick") => "quick",
        Some("full") => "full",
        other => return Err(format!("missing or unknown mode {other:?}")),
    };
    let samples = num_field(text, "samples").ok_or("missing samples field")? as usize;
    let mut results = Vec::new();
    for line in text.lines().filter(|l| l.contains("\"group\":")) {
        let parse = || -> Option<EngineBenchResult> {
            Some(EngineBenchResult {
                group: intern(str_field(line, "group")?).ok()?,
                implementation: intern(str_field(line, "impl")?).ok()?,
                agents: num_field(line, "agents")? as usize,
                workers: num_field(line, "workers")? as usize,
                effective_workers: num_field(line, "effective_workers")? as usize,
                ns_per_agent_step: num_field(line, "ns_per_agent_step")?,
                msteps_per_sec: num_field(line, "msteps_per_sec")?,
            })
        };
        results.push(parse().ok_or_else(|| format!("malformed result line: {line}"))?);
    }
    if results.is_empty() {
        return Err("no result entries found".into());
    }
    Ok(EngineBenchReport {
        mode,
        samples,
        results,
    })
}

/// One matched configuration in a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Benchmark family.
    pub group: &'static str,
    /// Implementation under test.
    pub implementation: &'static str,
    /// Population size.
    pub agents: usize,
    /// Requested workers.
    pub workers: usize,
    /// Baseline throughput (Msteps/s, median over samples).
    pub baseline_msteps: f64,
    /// Current throughput.
    pub current_msteps: f64,
    /// `current / baseline` (above 1 = faster than baseline).
    pub ratio: f64,
}

/// The CI perf-regression gate: current run vs a committed baseline.
///
/// Configs are matched on `(group, impl, agents, workers)`. The gate
/// statistic is the **median** of the per-config throughput ratios —
/// per-config figures are already medians over timed batches, and the
/// median-of-ratios ignores a few noisy outlier configs (CI neighbours,
/// cache state) while still catching a real slowdown, which drags most
/// configs down together.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// Matched configurations.
    pub rows: Vec<CompareRow>,
    /// Current-run configs absent from the baseline (ignored by the gate).
    pub unmatched: usize,
    /// Median of the per-config ratios.
    pub median_ratio: f64,
    /// Allowed fractional regression (0.25 = fail below 0.75×).
    pub tolerance: f64,
}

impl BenchComparison {
    /// Whether the gate fails: the median config lost more than
    /// `tolerance` of its baseline throughput.
    pub fn regressed(&self) -> bool {
        self.median_ratio < 1.0 - self.tolerance
    }

    /// Comparison table plus the gate verdict.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "perf vs baseline",
            &["group", "impl", "agents", "workers", "base", "now", "ratio"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.group.to_string(),
                r.implementation.to_string(),
                r.agents.to_string(),
                r.workers.to_string(),
                format!("{:.2}", r.baseline_msteps),
                format!("{:.2}", r.current_msteps),
                format!("{:.3}", r.ratio),
            ]);
        }
        t.note("base/now in Msteps/s (medians); ratio = now/base, higher is faster");
        let mut out = t.render();
        out.push_str(&format!(
            "  => median throughput ratio {:.3} over {} matched configs \
             ({} unmatched), gate at {:.2}: {}\n",
            self.median_ratio,
            self.rows.len(),
            self.unmatched,
            1.0 - self.tolerance,
            if self.regressed() { "REGRESSED" } else { "ok" }
        ));
        out.push_str(
            "  => note: baselines are host-specific; a uniform shift across every \
             config usually means a different machine, not a regression\n",
        );
        out
    }
}

/// Compares `current` against `baseline` with the given fractional
/// tolerance.
///
/// # Errors
///
/// Returns an error if no configuration matches between the two
/// reports (nothing to gate on).
pub fn compare(
    current: &EngineBenchReport,
    baseline: &EngineBenchReport,
    tolerance: f64,
) -> Result<BenchComparison, String> {
    let mut rows = Vec::new();
    let mut unmatched = 0usize;
    for cur in &current.results {
        match baseline.results.iter().find(|b| {
            b.group == cur.group
                && b.implementation == cur.implementation
                && b.agents == cur.agents
                && b.workers == cur.workers
        }) {
            Some(base) => rows.push(CompareRow {
                group: cur.group,
                implementation: cur.implementation,
                agents: cur.agents,
                workers: cur.workers,
                baseline_msteps: base.msteps_per_sec,
                current_msteps: cur.msteps_per_sec,
                ratio: cur.msteps_per_sec / base.msteps_per_sec,
            }),
            None => unmatched += 1,
        }
    }
    if rows.is_empty() {
        return Err(format!(
            "no configurations match the baseline (baseline mode `{}`, current `{}`)",
            baseline.mode, current.mode
        ));
    }
    let ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
    Ok(BenchComparison {
        median_ratio: antdensity_stats::quantile::median(&ratios),
        rows,
        unmatched,
        tolerance,
    })
}

/// Telemetry cost at one population size, relative to the untouched
/// sequential kernel (time ratios; 1.0 = free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryOverhead {
    /// Population size.
    pub agents: usize,
    /// Instrumented path with the flag off vs `untouched` — the
    /// one-relaxed-load budget; must sit within noise of 1.0.
    pub disabled_ratio: f64,
    /// Instrumented path with counters and spans live vs `untouched`.
    pub enabled_ratio: f64,
}

/// One pool-vs-spawn comparison at a requested configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSpeedup {
    /// Population size.
    pub agents: usize,
    /// Requested worker count (identical for both implementations).
    pub workers: usize,
    /// Workers the pool path actually ran.
    pub pool_effective: usize,
    /// Workers the spawn baseline actually ran (capped at core count).
    pub spawn_effective: usize,
    /// Spawn-baseline time over pool time (higher = pool faster).
    pub ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> EngineBenchReport {
        EngineBenchReport {
            mode: "quick",
            samples: 5,
            results: vec![
                EngineBenchResult {
                    group: "parallel_scaling",
                    implementation: "pool",
                    agents: 1024,
                    workers: 2,
                    effective_workers: 2,
                    ns_per_agent_step: 10.0,
                    msteps_per_sec: 100.0,
                },
                EngineBenchResult {
                    group: "parallel_scaling",
                    implementation: "spawn_baseline",
                    agents: 1024,
                    workers: 2,
                    effective_workers: 1,
                    ns_per_agent_step: 25.0,
                    msteps_per_sec: 40.0,
                },
            ],
        }
    }

    #[test]
    fn fusion_speedups_pair_fused_with_unfused() {
        let mut r = tiny_report();
        r.results.push(EngineBenchResult {
            group: "observer_fusion",
            implementation: "fused",
            agents: 1024,
            workers: 1,
            effective_workers: 1,
            ns_per_agent_step: 2.0,
            msteps_per_sec: 500.0,
        });
        r.results.push(EngineBenchResult {
            group: "observer_fusion",
            implementation: "unfused",
            agents: 1024,
            workers: 1,
            effective_workers: 1,
            ns_per_agent_step: 9.0,
            msteps_per_sec: 111.1,
        });
        let speedups = r.fusion_speedups();
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].0, 1024);
        assert!((speedups[0].1 - 4.5).abs() < 1e-9);
        assert!(r.render().contains("fused observer pass"));
        // fusion labels survive the JSON round trip
        let parsed = parse_json(&r.to_json()).unwrap();
        assert!(parsed
            .results
            .iter()
            .any(|x| x.group == "observer_fusion" && x.implementation == "unfused"));
    }

    #[test]
    fn csr_ratios_pair_rebuild_with_native() {
        let mut r = tiny_report();
        for (implementation, msteps) in [
            ("torus_native", 100.0f64),
            ("torus_csr", 80.0),
            ("random_regular_csr", 50.0),
        ] {
            r.results.push(EngineBenchResult {
                group: "csr_stepping",
                implementation,
                agents: 1024,
                workers: 1,
                effective_workers: 1,
                ns_per_agent_step: 1e3 / msteps,
                msteps_per_sec: msteps,
            });
        }
        let ratios = r.csr_torus_ratios();
        assert_eq!(ratios.len(), 1);
        assert_eq!(ratios[0].0, 1024);
        assert!((ratios[0].1 - 0.8).abs() < 1e-9);
        assert!(r.render().contains("CSR torus vs native torus"));
        // labels survive the JSON round trip
        let parsed = parse_json(&r.to_json()).unwrap();
        assert!(parsed
            .results
            .iter()
            .any(|x| x.group == "csr_stepping" && x.implementation == "random_regular_csr"));
    }

    #[test]
    fn telemetry_overheads_pair_all_three_rows() {
        let mut r = tiny_report();
        for (implementation, ns) in [
            ("untouched", 10.0f64),
            ("disabled", 10.1),
            ("enabled", 11.0),
        ] {
            r.results.push(EngineBenchResult {
                group: "telemetry_overhead",
                implementation,
                agents: 1024,
                workers: 1,
                effective_workers: 1,
                ns_per_agent_step: ns,
                msteps_per_sec: 1e3 / ns,
            });
        }
        let overheads = r.telemetry_overheads();
        assert_eq!(overheads.len(), 1);
        let t = overheads[0];
        assert_eq!(t.agents, 1024);
        assert!((t.disabled_ratio - 1.01).abs() < 1e-9);
        assert!((t.enabled_ratio - 1.1).abs() < 1e-9);
        assert!(r.render().contains("overhead vs the untouched kernel"));
        // the new labels survive the JSON round trip (baseline gating)
        let parsed = parse_json(&r.to_json()).unwrap();
        assert!(parsed
            .results
            .iter()
            .any(|x| x.group == "telemetry_overhead" && x.implementation == "disabled"));
    }

    #[test]
    fn dist_sweep_ratios_pair_sim_rows_with_inproc() {
        let mut r = tiny_report();
        for (implementation, msteps) in [
            ("inproc", 100.0f64),
            ("dist_sim", 95.0),
            ("dist_sim_faulty", 80.0),
        ] {
            r.results.push(EngineBenchResult {
                group: "dist_sweep",
                implementation,
                agents: 4096,
                workers: 4,
                effective_workers: 4,
                ns_per_agent_step: 1e3 / msteps,
                msteps_per_sec: msteps,
            });
        }
        let ratios = r.dist_sweep_ratios();
        assert_eq!(ratios.len(), 2);
        assert_eq!(ratios[0].0, "dist_sim");
        assert!((ratios[0].1 - 0.95).abs() < 1e-9);
        assert_eq!(ratios[1].0, "dist_sim_faulty");
        assert!((ratios[1].1 - 0.8).abs() < 1e-9);
        assert!(r.render().contains("distributed sweep (dist_sim_faulty)"));
        // the dist labels survive the JSON round trip (baseline gating)
        let parsed = parse_json(&r.to_json()).unwrap();
        assert!(parsed
            .results
            .iter()
            .any(|x| x.group == "dist_sweep" && x.implementation == "dist_sim_faulty"));
    }

    #[test]
    fn mega_scale_speedups_pair_counts_with_agent_level() {
        let mut r = tiny_report();
        for (implementation, msteps) in [("agent_level", 100.0f64), ("counts", 900.0)] {
            r.results.push(EngineBenchResult {
                group: "mega_scale",
                implementation,
                agents: 1 << 20,
                workers: 1,
                effective_workers: 1,
                ns_per_agent_step: 1e3 / msteps,
                msteps_per_sec: msteps,
            });
        }
        let speedups = r.mega_scale_speedups();
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].0, 1 << 20);
        assert!((speedups[0].1 - 9.0).abs() < 1e-9);
        assert!(r.render().contains("count-based stepping vs agent-level"));
        // the mega-scale labels survive the JSON round trip
        let parsed = parse_json(&r.to_json()).unwrap();
        assert!(parsed
            .results
            .iter()
            .any(|x| x.group == "mega_scale" && x.implementation == "counts"));
    }

    #[test]
    fn rng_batch_speedup_pairs_lane_with_sequential_fill() {
        let mut r = tiny_report();
        assert_eq!(r.rng_batch_speedup(), None);
        for (implementation, msteps) in [
            ("scalar_draws", 500.0f64),
            ("seq_fill", 650.0),
            ("lane_fill", 700.0),
            ("bulk_u64", 1200.0),
        ] {
            r.results.push(EngineBenchResult {
                group: "rng_batch",
                implementation,
                agents: 1 << 16,
                workers: 1,
                effective_workers: 1,
                ns_per_agent_step: 1e3 / msteps,
                msteps_per_sec: msteps,
            });
        }
        let speedup = r.rng_batch_speedup().unwrap();
        assert!((speedup - 1.4).abs() < 1e-9);
        assert!(r.render().contains("batched lane fill vs per-draw scalar"));
        let parsed = parse_json(&r.to_json()).unwrap();
        assert!(parsed
            .results
            .iter()
            .any(|x| x.group == "rng_batch" && x.implementation == "bulk_u64"));
    }

    #[test]
    fn cache_speedup_pairs_warm_with_nocache() {
        let mut r = tiny_report();
        assert_eq!(r.cache_speedup(), None);
        for (implementation, msteps) in [("nocache", 100.0f64), ("cold", 90.0), ("warm", 900.0)] {
            r.results.push(EngineBenchResult {
                group: "cache",
                implementation,
                agents: 4096,
                workers: 4,
                effective_workers: 4,
                ns_per_agent_step: 1e3 / msteps,
                msteps_per_sec: msteps,
            });
        }
        let speedup = r.cache_speedup().unwrap();
        assert!((speedup - 9.0).abs() < 1e-9);
        assert!(r.render().contains("warm result cache vs no cache"));
        // the cache labels survive the JSON round trip (baseline gating)
        let parsed = parse_json(&r.to_json()).unwrap();
        assert!(parsed
            .results
            .iter()
            .any(|x| x.group == "cache" && x.implementation == "warm"));
    }

    #[test]
    fn group_filter_runs_one_family_and_rejects_unknown_names() {
        let err = run_engine_bench_group(Effort::Quick, Some("bogus")).unwrap_err();
        assert!(err.contains("unknown bench group `bogus`"), "{err}");
        assert!(err.contains("rng_batch"), "{err}");

        // the cheapest real family: three fills over a 64k buffer
        let report = run_engine_bench_group(Effort::Quick, Some("rng_batch")).unwrap();
        assert!(report.results.iter().all(|r| r.group == "rng_batch"));
        let impls: Vec<&str> = report.results.iter().map(|r| r.implementation).collect();
        assert_eq!(impls, ["scalar_draws", "seq_fill", "lane_fill", "bulk_u64"]);
        assert!(report.rng_batch_speedup().is_some());
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = tiny_report().to_json();
        assert!(json.contains("\"bench\": \"engine\""));
        assert!(json.contains("\"impl\": \"spawn_baseline\""));
        assert!(json.contains("\"ns_per_agent_step\": 10.000"));
        // no trailing comma before the closing bracket
        assert!(!json.contains(",\n  ]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn speedup_pairs_pool_with_matching_spawn() {
        let speedups = tiny_report().pool_speedups();
        assert_eq!(speedups.len(), 1);
        let s = speedups[0];
        assert_eq!((s.agents, s.workers), (1024, 2));
        assert_eq!((s.pool_effective, s.spawn_effective), (2, 1));
        assert!((s.ratio - 2.5).abs() < 1e-9);
    }

    #[test]
    fn render_headline_shows_effective_counts() {
        let text = tiny_report().render();
        assert!(text.contains("pool vs per-round-spawn"));
        assert!(text.contains("pool ran 2, spawn ran 1"));
        assert!(text.contains("2.50x"));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let report = tiny_report();
        let parsed = parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed.mode, report.mode);
        assert_eq!(parsed.samples, report.samples);
        assert_eq!(parsed.results.len(), report.results.len());
        for (a, b) in parsed.results.iter().zip(&report.results) {
            assert_eq!(a.group, b.group);
            assert_eq!(a.implementation, b.implementation);
            assert_eq!(
                (a.agents, a.workers, a.effective_workers),
                (b.agents, b.workers, b.effective_workers)
            );
            assert!((a.msteps_per_sec - b.msteps_per_sec).abs() < 1e-3);
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{}").is_err());
        assert!(parse_json("not json at all").is_err());
        let broken = tiny_report()
            .to_json()
            .replace("\"agents\": 1024", "\"agents\": oops");
        assert!(parse_json(&broken).is_err());
    }

    fn scaled_report(factor: f64) -> EngineBenchReport {
        let mut r = tiny_report();
        for res in &mut r.results {
            res.msteps_per_sec *= factor;
            res.ns_per_agent_step /= factor;
        }
        r
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let base = tiny_report();
        let same = compare(&base, &base, 0.25).unwrap();
        assert!((same.median_ratio - 1.0).abs() < 1e-12);
        assert!(!same.regressed());

        let slightly_slower = compare(&scaled_report(0.85), &base, 0.25).unwrap();
        assert!(
            !slightly_slower.regressed(),
            "15% loss is inside the 25% gate"
        );

        let much_slower = compare(&scaled_report(0.5), &base, 0.25).unwrap();
        assert!(much_slower.regressed());
        assert!((much_slower.median_ratio - 0.5).abs() < 1e-9);
        let text = much_slower.render();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("median throughput ratio 0.500"));
    }

    #[test]
    fn gate_uses_median_not_worst_case() {
        // one outlier config tanks, the rest hold: the gate stays green
        let base = EngineBenchReport {
            mode: "quick",
            samples: 5,
            results: (0..5)
                .map(|i| EngineBenchResult {
                    group: "parallel_scaling",
                    implementation: "pool",
                    agents: 1024 << i,
                    workers: 2,
                    effective_workers: 2,
                    ns_per_agent_step: 10.0,
                    msteps_per_sec: 100.0,
                })
                .collect(),
        };
        let mut current = base.clone();
        current.results[0].msteps_per_sec *= 0.1;
        let cmp = compare(&current, &base, 0.25).unwrap();
        assert_eq!(cmp.rows.len(), 5);
        assert!(!cmp.regressed(), "median ratio {}", cmp.median_ratio);
    }

    #[test]
    fn compare_requires_overlap() {
        let base = tiny_report();
        let mut foreign = tiny_report();
        for r in &mut foreign.results {
            r.agents += 1;
        }
        assert!(compare(&foreign, &base, 0.25).is_err());
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join(format!("antdensity_perf_{}", std::process::id()));
        let path = tiny_report().write_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_engine.json"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"results\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
