//! The `repro` exit-code contract, exercised through the real binary
//! (`CARGO_BIN_EXE_repro`) with real child worker processes. The
//! expected codes come from the same [`ExitCode`] enum the binary
//! exits through, so the contract cannot drift from the source:
//!
//! | code | meaning                                          |
//! |------|--------------------------------------------------|
//! | 0    | complete run (distributed output byte-identical) |
//! | 1    | IO / lock / setup failure                        |
//! | 2    | usage error                                      |
//! | 3    | partial sweep (budget hit, checkpoint resumable) |
//! | 4    | distributed result mismatch (byzantine abort)    |
//!
//! Every failure path must also emit one structured, machine-greppable
//! `repro-sweep: status=…` line on stderr.

use antdensity_bench::cli::ExitCode;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const SPEC: &str = "
name = cli_exit
seed = 11
trials = 2
quick_trials = 1

topology  = torus2d:8, complete:64
density   = 0.1, 0.25
rounds    = 8
estimator = alg1, quorum:0.05
";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("antdensity_cli_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_spec(dir: &Path) -> PathBuf {
    let path = dir.join("cli_exit.sweep");
    std::fs::write(&path, SPEC).unwrap();
    path
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn distributed_run_exits_zero_with_byte_identical_artifacts() {
    let dir = tmp_dir("ok");
    let spec = write_spec(&dir);
    let (inproc, dist) = (dir.join("inproc"), dir.join("dist"));

    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        inproc.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    // Distributed, 4 real child workers, one scripted worker kill.
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        dist.to_str().unwrap(),
        "--serve-shards",
        "--workers-cmd",
        "4",
        "--fault",
        "kill:lease2",
        "--metrics",
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    for name in ["SWEEP_cli_exit.json", "SWEEP_cli_exit.csv"] {
        let a = std::fs::read(inproc.join(name)).unwrap();
        let b = std::fs::read(dist.join(name)).unwrap();
        assert_eq!(a, b, "{name} must be byte-identical");
    }

    // The metrics artifact is v3 with a dist section (and no cache —
    // the run had no --cache), and check-metrics agrees (exit 0).
    let metrics = dist.join("METRICS_cli_exit.json");
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("\"schema\": \"antdensity-metrics v3\""));
    assert!(text.contains("\"dist\": {"));
    assert!(text.contains("\"sweep.dist.leases\":"));
    assert!(text.contains("\"cache\": null"));
    let out = repro(&["check-metrics", metrics.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("schema=v3"), "{stdout}");
    assert!(stdout.contains("dist=yes"), "{stdout}");
    assert!(stdout.contains("cache=no"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_distributed_run_exits_three_with_structured_stderr() {
    let dir = tmp_dir("partial");
    let spec = write_spec(&dir);
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        dir.to_str().unwrap(),
        "--serve-shards",
        "--workers-cmd",
        "2",
        "--max-shards",
        "1",
    ]);
    assert_eq!(
        out.status.code(),
        Some(ExitCode::Partial.code()),
        "{}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(err.contains("repro-sweep: status=partial"), "{err}");
    assert!(err.contains("reason=max-shards-budget"), "{err}");
    assert!(err.contains("resume="), "{err}");
    assert!(
        dir.join("cli_exit.ckpt").exists(),
        "checkpoint must survive"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn byzantine_result_mismatch_exits_four() {
    let dir = tmp_dir("mismatch");
    let spec = write_spec(&dir);
    // dup:RESULT@1 re-delivers the first result; lie:RESULT@2 tampers
    // the copy into a valid-but-different blob. The coordinator must
    // abort with exit 4 and a structured mismatch report.
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        dir.to_str().unwrap(),
        "--serve-shards",
        "--workers-cmd",
        "2",
        "--fault",
        "dup:RESULT@1,lie:RESULT@2",
    ]);
    assert_eq!(
        out.status.code(),
        Some(ExitCode::Mismatch.code()),
        "{}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(
        err.contains("repro-sweep: status=error reason=result-mismatch"),
        "{err}"
    );
    assert!(err.contains("shard="), "{err}");
    assert!(err.contains("first_diff_at="), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn locked_checkpoint_exits_one_with_structured_stderr() {
    let dir = tmp_dir("locked");
    let spec = write_spec(&dir);
    // Hold the lock from this (live) process so the child coordinator
    // cannot steal it.
    let lock = dir.join("cli_exit.ckpt.lock");
    std::fs::write(&lock, format!("{}\n", std::process::id())).unwrap();
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        dir.to_str().unwrap(),
        "--serve-shards",
        "--workers-cmd",
        "2",
    ]);
    assert_eq!(
        out.status.code(),
        Some(ExitCode::Failure.code()),
        "{}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    assert!(err.contains("reason=checkpoint-locked"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_two() {
    let out = repro(&["sweep"]);
    assert_eq!(out.status.code(), Some(ExitCode::Usage.code()));
    let out = repro(&["sweep", "nonexistent.sweep", "--workers-cmd", "0"]);
    assert_eq!(out.status.code(), Some(ExitCode::Usage.code()));
    let out = repro(&["--definitely-not-a-flag"]);
    assert_eq!(out.status.code(), Some(ExitCode::Usage.code()));
}

/// The service front end, end to end through the real binary: start a
/// daemon on an ephemeral port, have two concurrent `serve-submit`
/// clients stream the same spec, and require the delivered report
/// files to be byte-identical to the sequential `repro sweep` run —
/// the same check the CI `serve-smoke` job performs with `cmp`.
#[test]
fn serve_submit_round_trip_matches_cli_bytes() {
    use std::io::BufRead;

    let dir = tmp_dir("serve");
    let spec = write_spec(&dir);
    let cli_out = dir.join("cli");
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        cli_out.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--listen", "127.0.0.1:0", "--executors", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut ready = String::new();
    std::io::BufReader::new(daemon.stdout.take().unwrap())
        .read_line(&mut ready)
        .unwrap();
    assert!(
        ready.starts_with("repro-serve: status=listening addr="),
        "{ready}"
    );
    let addr = ready
        .split("addr=")
        .nth(1)
        .and_then(|r| r.split_whitespace().next())
        .unwrap()
        .to_string();

    let clients: Vec<_> = (0..2)
        .map(|c| {
            let out_dir = dir.join(format!("client{c}"));
            let metrics = dir.join(format!("serve_metrics{c}.json"));
            let child = Command::new(env!("CARGO_BIN_EXE_repro"))
                .args([
                    "serve-submit",
                    &addr,
                    spec.to_str().unwrap(),
                    "--quick",
                    "--out",
                    out_dir.to_str().unwrap(),
                    "--metrics",
                    metrics.to_str().unwrap(),
                ])
                .output();
            (out_dir, metrics, child)
        })
        .collect();
    for (out_dir, metrics, child) in clients {
        let out = child.expect("spawn serve-submit");
        assert!(out.status.success(), "{}", stderr_of(&out));
        for name in ["SWEEP_cli_exit.json", "SWEEP_cli_exit.csv"] {
            let served = std::fs::read(out_dir.join(name)).unwrap();
            let direct = std::fs::read(cli_out.join(name)).unwrap();
            assert_eq!(served, direct, "{name} must be byte-identical");
        }
        let snapshot = std::fs::read_to_string(&metrics).unwrap();
        assert!(snapshot.contains("\"queue_depth\""), "{snapshot}");
        assert!(snapshot.contains("serve.jobs_completed"), "{snapshot}");
    }

    daemon.kill().unwrap();
    daemon.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_usage_errors_exit_two() {
    // --stdio and --listen are mutually exclusive.
    let out = repro(&["serve", "--stdio", "--listen", "127.0.0.1:0"]);
    assert_eq!(out.status.code(), Some(ExitCode::Usage.code()));
    // serve-submit requires ADDR and SPEC operands.
    let out = repro(&["serve-submit", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(ExitCode::Usage.code()));
    // An unreachable daemon is an IO failure, not a usage error.
    let out = repro(&["serve-submit", "127.0.0.1:1", "nonexistent.sweep"]);
    assert_eq!(out.status.code(), Some(ExitCode::Failure.code()));
}

#[test]
fn bad_fault_plan_exits_two() {
    let dir = tmp_dir("badplan");
    let spec = write_spec(&dir);
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--serve-shards",
        "--fault",
        "explode:everything",
    ]);
    assert_eq!(
        out.status.code(),
        Some(ExitCode::Usage.code()),
        "{}",
        stderr_of(&out)
    );
    assert!(
        stderr_of(&out).contains("--fault plan"),
        "{}",
        stderr_of(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
