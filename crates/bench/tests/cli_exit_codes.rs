//! The `repro sweep` exit-code contract, exercised through the real
//! binary (`CARGO_BIN_EXE_repro`) with real child worker processes:
//!
//! | code | meaning                                          |
//! |------|--------------------------------------------------|
//! | 0    | complete run (distributed output byte-identical) |
//! | 1    | IO / lock / setup failure                        |
//! | 2    | usage error                                      |
//! | 3    | partial sweep (budget hit, checkpoint resumable) |
//! | 4    | distributed result mismatch (byzantine abort)    |
//!
//! Every failure path must also emit one structured, machine-greppable
//! `repro-sweep: status=…` line on stderr.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const SPEC: &str = "
name = cli_exit
seed = 11
trials = 2
quick_trials = 1

topology  = torus2d:8, complete:64
density   = 0.1, 0.25
rounds    = 8
estimator = alg1, quorum:0.05
";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("antdensity_cli_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_spec(dir: &Path) -> PathBuf {
    let path = dir.join("cli_exit.sweep");
    std::fs::write(&path, SPEC).unwrap();
    path
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn distributed_run_exits_zero_with_byte_identical_artifacts() {
    let dir = tmp_dir("ok");
    let spec = write_spec(&dir);
    let (inproc, dist) = (dir.join("inproc"), dir.join("dist"));

    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        inproc.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    // Distributed, 4 real child workers, one scripted worker kill.
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        dist.to_str().unwrap(),
        "--serve-shards",
        "--workers-cmd",
        "4",
        "--fault",
        "kill:lease2",
        "--metrics",
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    for name in ["SWEEP_cli_exit.json", "SWEEP_cli_exit.csv"] {
        let a = std::fs::read(inproc.join(name)).unwrap();
        let b = std::fs::read(dist.join(name)).unwrap();
        assert_eq!(a, b, "{name} must be byte-identical");
    }

    // The metrics artifact is v2 with a dist section, and check-metrics
    // agrees (exit 0).
    let metrics = dist.join("METRICS_cli_exit.json");
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("\"schema\": \"antdensity-metrics v2\""));
    assert!(text.contains("\"dist\": {"));
    assert!(text.contains("\"sweep.dist.leases\":"));
    let out = repro(&["check-metrics", metrics.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("schema=v2"), "{stdout}");
    assert!(stdout.contains("dist=yes"), "{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_distributed_run_exits_three_with_structured_stderr() {
    let dir = tmp_dir("partial");
    let spec = write_spec(&dir);
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        dir.to_str().unwrap(),
        "--serve-shards",
        "--workers-cmd",
        "2",
        "--max-shards",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("repro-sweep: status=partial"), "{err}");
    assert!(err.contains("reason=max-shards-budget"), "{err}");
    assert!(err.contains("resume="), "{err}");
    assert!(
        dir.join("cli_exit.ckpt").exists(),
        "checkpoint must survive"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn byzantine_result_mismatch_exits_four() {
    let dir = tmp_dir("mismatch");
    let spec = write_spec(&dir);
    // dup:RESULT@1 re-delivers the first result; lie:RESULT@2 tampers
    // the copy into a valid-but-different blob. The coordinator must
    // abort with exit 4 and a structured mismatch report.
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        dir.to_str().unwrap(),
        "--serve-shards",
        "--workers-cmd",
        "2",
        "--fault",
        "dup:RESULT@1,lie:RESULT@2",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("repro-sweep: status=error reason=result-mismatch"),
        "{err}"
    );
    assert!(err.contains("shard="), "{err}");
    assert!(err.contains("first_diff_at="), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn locked_checkpoint_exits_one_with_structured_stderr() {
    let dir = tmp_dir("locked");
    let spec = write_spec(&dir);
    // Hold the lock from this (live) process so the child coordinator
    // cannot steal it.
    let lock = dir.join("cli_exit.ckpt.lock");
    std::fs::write(&lock, format!("{}\n", std::process::id())).unwrap();
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--out",
        dir.to_str().unwrap(),
        "--serve-shards",
        "--workers-cmd",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("reason=checkpoint-locked"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_two() {
    let out = repro(&["sweep"]);
    assert_eq!(out.status.code(), Some(2));
    let out = repro(&["sweep", "nonexistent.sweep", "--workers-cmd", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let out = repro(&["--definitely-not-a-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_fault_plan_exits_two() {
    let dir = tmp_dir("badplan");
    let spec = write_spec(&dir);
    let out = repro(&[
        "sweep",
        spec.to_str().unwrap(),
        "--quick",
        "--serve-shards",
        "--fault",
        "explode:everything",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("--fault plan"),
        "{}",
        stderr_of(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
