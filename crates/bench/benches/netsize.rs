//! Network-size estimation costs (E12/E13/E14): Algorithm 2 vs the
//! KLSC14 baseline, degree estimation, and burn-in machinery.

use antdensity_graphs::generators;
use antdensity_netsize::algorithm2::{Algorithm2, StartMode};
use antdensity_netsize::katzir::Katzir;
use antdensity_netsize::{burnin, degree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_algorithm2(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let mut rng = SmallRng::seed_from_u64(1);
    let g = generators::random_regular(2048, 8, 500, &mut rng).expect("regular graph");
    for (n, t) in [(64usize, 256u64), (256, 64), (1024, 16)] {
        group.bench_with_input(
            BenchmarkId::new("regular2048", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                let alg = Algorithm2::new(n, t);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    alg.run(&g, 8.0, StartMode::Stationary, seed)
                });
            },
        );
    }
    group.bench_function("katzir_n2048", |b| {
        let k = Katzir::new(2048);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            k.run(&g, 8.0, StartMode::Stationary, seed)
        });
    });
    group.finish();
}

fn bench_degree_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("degree_estimation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut rng = SmallRng::seed_from_u64(2);
    let g = generators::barabasi_albert(2048, 3, &mut rng).expect("ba graph");
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("ba2048", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                degree::estimate_avg_degree(&g, n, seed)
            });
        });
    }
    group.finish();
}

fn bench_burnin(c: &mut Criterion) {
    let mut group = c.benchmark_group("burnin");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let mut rng = SmallRng::seed_from_u64(3);
    let g = generators::watts_strogatz(1024, 4, 0.1, &mut rng).expect("ws graph");
    group.bench_function("burn_in_128walks_256steps", |b| {
        let mut r = SmallRng::seed_from_u64(4);
        b.iter(|| burnin::burn_in(&g, 0, 256, 128, &mut r));
    });
    group.bench_function("tv_profile_256", |b| {
        b.iter(|| burnin::tv_profile(&g, 0, 256));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm2,
    bench_degree_estimation,
    bench_burnin
);
criterion_main!(benches);
