//! Topology primitive costs: per-step neighbor sampling, graph
//! generation, and spectral estimation — the substrate every experiment
//! stands on.

use antdensity_graphs::{
    generators, spectral, CompleteGraph, Hypercube, Ring, Topology, Torus2d, TorusKd,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_random_neighbor(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_neighbor");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let steps = 10_000u64;
    group.throughput(Throughput::Elements(steps));

    fn walk<T: Topology>(topo: &T, steps: u64, rng: &mut SmallRng) -> u64 {
        let mut v = 0;
        for _ in 0..steps {
            v = topo.random_neighbor(v, rng);
        }
        v
    }

    group.bench_function(BenchmarkId::new("torus2d", 1024), |b| {
        let t = Torus2d::new(1024);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| walk(&t, steps, &mut rng));
    });
    group.bench_function(BenchmarkId::new("torus4d", 16), |b| {
        let t = TorusKd::new(4, 16);
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| walk(&t, steps, &mut rng));
    });
    group.bench_function(BenchmarkId::new("ring", 1 << 20), |b| {
        let r = Ring::new(1 << 20);
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| walk(&r, steps, &mut rng));
    });
    group.bench_function(BenchmarkId::new("hypercube", 20), |b| {
        let h = Hypercube::new(20);
        let mut rng = SmallRng::seed_from_u64(4);
        b.iter(|| walk(&h, steps, &mut rng));
    });
    group.bench_function(BenchmarkId::new("complete", 1 << 20), |b| {
        let g = CompleteGraph::new(1 << 20);
        let mut rng = SmallRng::seed_from_u64(5);
        b.iter(|| walk(&g, steps, &mut rng));
    });
    group.bench_function(BenchmarkId::new("adjgraph_regular8", 4096), |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::random_regular(4096, 8, 500, &mut rng).expect("regular");
        let mut rng = SmallRng::seed_from_u64(7);
        b.iter(|| walk(&g, steps, &mut rng));
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generators");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("random_regular_4096_d8", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            generators::random_regular(4096, 8, 500, &mut rng).expect("regular")
        });
    });
    group.bench_function("barabasi_albert_4096_m3", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            generators::barabasi_albert(4096, 3, &mut rng).expect("ba")
        });
    });
    group.bench_function("watts_strogatz_4096_k6", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            generators::watts_strogatz(4096, 6, 0.1, &mut rng).expect("ws")
        });
    });
    group.finish();
}

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_lambda");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let mut rng = SmallRng::seed_from_u64(8);
    let g = generators::random_regular(1024, 8, 500, &mut rng).expect("regular");
    group.bench_function("power_iteration_1024", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut r = SmallRng::seed_from_u64(seed);
            spectral::walk_matrix_lambda(&g, 1000, &mut r)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_random_neighbor,
    bench_generators,
    bench_spectral
);
criterion_main!(benches);
