//! Application-layer costs (E15 + Section 6.3): swarm frequency
//! estimation, sensor-network token sampling, coverage and dispersion.

use antdensity_graphs::Torus2d;
use antdensity_swarm::coverage::{coverage_curve, DispersionSim};
use antdensity_swarm::robot::SwarmConfig;
use antdensity_swarm::sensor::{iid_mean_estimate, token_mean_estimate, SensorField};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_swarm(c: &mut Criterion) {
    let mut group = c.benchmark_group("swarm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("two_group_frequency_256r", |b| {
        let cfg = SwarmConfig::new(32, 96, 256).with_groups(&[24, 24]);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            cfg.run(seed)
        });
    });
    group.bench_function("dispersion_200r", |b| {
        let sim = DispersionSim::new(32, 96, 8, 0.5);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sim.run_clustered(200, seed)
        });
    });
    group.bench_function("coverage_curve_200r", |b| {
        let topo = Torus2d::new(64);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            coverage_curve(&topo, 32, 200, seed)
        });
    });
    group.finish();
}

fn bench_sensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensor_sampling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let mut rng = SmallRng::seed_from_u64(1);
    let field = SensorField::bernoulli(Torus2d::new(64), 0.2, &mut rng);
    group.bench_function("token_4096_hops", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            token_mean_estimate(&field, 0, 4096, seed)
        });
    });
    group.bench_function("iid_4096_samples", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            iid_mean_estimate(&field, 4096, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_swarm, bench_sensor);
criterion_main!(benches);
