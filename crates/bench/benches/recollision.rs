//! Re-collision machinery costs: exact distribution evolution per
//! topology (E3/E4/E8/E9/E10/E11) and Monte-Carlo moment estimation (E5).

use antdensity_core::recollision;
use antdensity_graphs::{dist, Hypercube, Ring, Torus2d, TorusKd};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_exact_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_distribution_evolution");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let steps = 128u64;
    group.throughput(Throughput::Elements(steps));
    group.bench_function(BenchmarkId::new("torus2d", 64), |b| {
        let t = Torus2d::new(64);
        b.iter(|| dist::recollision_series(&t, 0, steps));
    });
    group.bench_function(BenchmarkId::new("ring", 4096), |b| {
        let r = Ring::new(4096);
        b.iter(|| dist::recollision_series(&r, 0, steps));
    });
    group.bench_function(BenchmarkId::new("torus3d", 16), |b| {
        let t = TorusKd::new(3, 16);
        b.iter(|| dist::recollision_series(&t, 0, steps));
    });
    group.bench_function(BenchmarkId::new("hypercube", 12), |b| {
        let h = Hypercube::new(12);
        b.iter(|| dist::recollision_series(&h, 0, steps));
    });
    group.finish();
}

fn bench_mc_recollision(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_recollision");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let torus = Torus2d::new(64);
    for trials in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(trials));
        group.bench_with_input(BenchmarkId::new("torus64_t64", trials), &trials, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                recollision::mc_recollision_curve(&torus, 0, 64, n, seed, 4)
            });
        });
    }
    group.finish();
}

fn bench_moments(c: &mut Criterion) {
    let mut group = c.benchmark_group("moment_estimation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let torus = Torus2d::new(32);
    group.bench_function("pair_count_moments_10k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            recollision::pair_count_moments(&torus, 256, 6, 10_000, seed, 4)
        });
    });
    group.bench_function("equalization_moments_10k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            recollision::equalization_moments(&torus, 0, 256, 6, 10_000, seed, 4)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_evolution,
    bench_mc_recollision,
    bench_moments
);
criterion_main!(benches);
