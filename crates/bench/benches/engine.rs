//! Engine throughput: the synchronous arena (the paper's model) across
//! topologies and population sizes. Supports every experiment; the cost
//! model here is what makes the E1/E6/E7 sweeps feasible.

use antdensity_graphs::{CompleteGraph, Hypercube, Ring, Torus2d};
use antdensity_walks::arena::SyncArena;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_arena_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_step_round");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let agents = 1024usize;
    group.throughput(Throughput::Elements(agents as u64));

    group.bench_function(BenchmarkId::new("torus2d", 256), |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut arena = SyncArena::new(Torus2d::new(256), agents);
        arena.place_uniform(&mut rng);
        b.iter(|| arena.step_round(&mut rng));
    });
    group.bench_function(BenchmarkId::new("ring", 65536), |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut arena = SyncArena::new(Ring::new(65536), agents);
        arena.place_uniform(&mut rng);
        b.iter(|| arena.step_round(&mut rng));
    });
    group.bench_function(BenchmarkId::new("hypercube", 16), |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut arena = SyncArena::new(Hypercube::new(16), agents);
        arena.place_uniform(&mut rng);
        b.iter(|| arena.step_round(&mut rng));
    });
    group.bench_function(BenchmarkId::new("complete", 65536), |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut arena = SyncArena::new(CompleteGraph::new(65536), agents);
        arena.place_uniform(&mut rng);
        b.iter(|| arena.step_round(&mut rng));
    });
    group.finish();
}

fn bench_arena_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_agent_scaling");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for agents in [64usize, 512, 4096] {
        group.throughput(Throughput::Elements(agents as u64));
        group.bench_with_input(
            BenchmarkId::new("torus2d_256", agents),
            &agents,
            |b, &n| {
                let mut rng = SmallRng::seed_from_u64(5);
                let mut arena = SyncArena::new(Torus2d::new(256), n);
                arena.place_uniform(&mut rng);
                b.iter(|| arena.step_round(&mut rng));
            },
        );
    }
    group.finish();
}

fn bench_count_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_count");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let agents = 1024usize;
    group.throughput(Throughput::Elements(agents as u64));
    group.bench_function("count_all_agents", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut arena = SyncArena::new(Torus2d::new(128), agents);
        arena.place_uniform(&mut rng);
        arena.step_round(&mut rng);
        b.iter(|| {
            let mut total = 0u64;
            for a in 0..agents {
                total += arena.count(a) as u64;
            }
            total
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arena_round,
    bench_arena_scaling,
    bench_count_queries
);
criterion_main!(benches);
