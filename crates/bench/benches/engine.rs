//! Engine throughput: the synchronous arena (the paper's model) across
//! topologies and population sizes. Supports every experiment; the cost
//! model here is what makes the E1/E6/E7 sweeps feasible.
//!
//! `engine_vs_arena` pits the pre-engine implementation (per-round
//! `HashMap` occupancy rebuilds, kept here as a baseline replica) against
//! the dense touched-list engine that `SyncArena` now delegates to, at
//! 1024 and 4096 agents.

use antdensity_engine::{Engine, EngineConfig, Scenario, TopologySpec, WorkerPool, STREAM_BLOCK};
use antdensity_graphs::{CompleteGraph, Hypercube, NodeId, Ring, Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::arena::SyncArena;
use antdensity_walks::movement::MovementModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// `cargo bench -p antdensity-bench --bench engine -- --quick` trims the
/// matrix and the measurement budget — the CI smoke configuration.
fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Measurement budget, shrunk under `--quick`.
fn measurement() -> Duration {
    if quick() {
        Duration::from_millis(250)
    } else {
        Duration::from_secs(2)
    }
}

/// The pre-engine `SyncArena` hot loop: HashMap occupancy rebuilt from
/// scratch every round. Baseline for `engine_vs_arena`.
struct HashMapArena<T: Topology> {
    topo: T,
    positions: Vec<NodeId>,
    movement: Vec<MovementModel>,
    occupancy: HashMap<NodeId, u32>,
}

impl<T: Topology> HashMapArena<T> {
    fn new(topo: T, num_agents: usize, rng: &mut dyn RngCore) -> Self {
        let positions = (0..num_agents).map(|_| topo.uniform_node(rng)).collect();
        let mut arena = Self {
            topo,
            positions,
            movement: vec![MovementModel::Pure; num_agents],
            occupancy: HashMap::new(),
        };
        arena.rebuild_occupancy();
        arena
    }

    fn step_round(&mut self, rng: &mut dyn RngCore) {
        for (pos, model) in self.positions.iter_mut().zip(&self.movement) {
            *pos = model.step(&self.topo, *pos, rng);
        }
        self.rebuild_occupancy();
    }

    fn rebuild_occupancy(&mut self) {
        self.occupancy.clear();
        for &p in &self.positions {
            *self.occupancy.entry(p).or_insert(0) += 1;
        }
    }

    fn count(&self, agent: usize) -> u32 {
        self.occupancy[&self.positions[agent]] - 1
    }
}

fn bench_arena_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_step_round");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(measurement());
    let agents = 1024usize;
    group.throughput(Throughput::Elements(agents as u64));

    group.bench_function(BenchmarkId::new("torus2d", 256), |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut arena = SyncArena::new(Torus2d::new(256), agents);
        arena.place_uniform(&mut rng);
        b.iter(|| arena.step_round(&mut rng));
    });
    group.bench_function(BenchmarkId::new("ring", 65536), |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut arena = SyncArena::new(Ring::new(65536), agents);
        arena.place_uniform(&mut rng);
        b.iter(|| arena.step_round(&mut rng));
    });
    group.bench_function(BenchmarkId::new("hypercube", 16), |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut arena = SyncArena::new(Hypercube::new(16), agents);
        arena.place_uniform(&mut rng);
        b.iter(|| arena.step_round(&mut rng));
    });
    group.bench_function(BenchmarkId::new("complete", 65536), |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut arena = SyncArena::new(CompleteGraph::new(65536), agents);
        arena.place_uniform(&mut rng);
        b.iter(|| arena.step_round(&mut rng));
    });
    group.finish();
}

fn bench_arena_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_agent_scaling");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(measurement());
    for agents in [64usize, 512, 4096] {
        group.throughput(Throughput::Elements(agents as u64));
        group.bench_with_input(BenchmarkId::new("torus2d_256", agents), &agents, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(5);
            let mut arena = SyncArena::new(Torus2d::new(256), n);
            arena.place_uniform(&mut rng);
            b.iter(|| arena.step_round(&mut rng));
        });
    }
    group.finish();
}

fn bench_count_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_count");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(measurement());
    let agents = 1024usize;
    group.throughput(Throughput::Elements(agents as u64));
    group.bench_function("count_all_agents", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut arena = SyncArena::new(Torus2d::new(128), agents);
        arena.place_uniform(&mut rng);
        arena.step_round(&mut rng);
        b.iter(|| {
            let mut total = 0u64;
            for a in 0..agents {
                total += arena.count(a) as u64;
            }
            total
        });
    });
    group.finish();
}

/// The headline comparison: per-round HashMap rebuilds (old) vs dense
/// touched-list occupancy (new), stepping + a full count sweep per round,
/// at 1024 and 4096 agents on a 256×256 torus.
fn bench_engine_vs_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_arena");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(measurement());
    for agents in [1024usize, 4096] {
        group.throughput(Throughput::Elements(agents as u64));
        group.bench_with_input(
            BenchmarkId::new("hashmap_arena", agents),
            &agents,
            |b, &n| {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut arena = HashMapArena::new(Torus2d::new(256), n, &mut rng);
                b.iter(|| {
                    arena.step_round(&mut rng);
                    (0..n).map(|a| arena.count(a) as u64).sum::<u64>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dense_engine", agents),
            &agents,
            |b, &n| {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut engine = Engine::new(Torus2d::new(256), n);
                engine.place_uniform(&mut rng);
                b.iter(|| {
                    engine.step_round(&mut rng);
                    (0..n).map(|a| engine.count(a) as u64).sum::<u64>()
                });
            },
        );
        // The chunked deterministic mode, requesting 4 workers. Actual
        // spawning engages only when the engine's caps allow (>= 4 chunks
        // per worker AND multiple cores); at these sizes — and on any
        // single-core box — this measures the chunked-stream path run
        // inline, i.e. the per-(round, chunk) RNG-derivation overhead the
        // determinism contract costs, not parallel speedup.
        group.bench_with_input(
            BenchmarkId::new("dense_engine_chunked_mode", agents),
            &agents,
            |b, &n| {
                let mut rng = SmallRng::seed_from_u64(7);
                let mut engine = Engine::new(Torus2d::new(256), n)
                    .with_seed_sequence(SeedSequence::new(7))
                    .with_threads(4);
                engine.place_uniform(&mut rng);
                b.iter(|| {
                    engine.step_round_parallel();
                    (0..n).map(|a| engine.count(a) as u64).sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

/// The worker-pool scaling matrix: persistent-pool parallel stepping
/// (`pool`) against the pre-pool per-round-spawn implementation
/// (`spawn`), at 1/2/4/8 workers × 1k/16k/256k agents on a 512×512
/// torus. Both paths produce bit-identical positions (property-tested in
/// `crates/engine/tests/determinism.rs`); only the wall clock differs.
/// `repro bench` emits the same matrix as machine-readable
/// `BENCH_engine.json`.
fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(measurement());
    let agent_grid: &[usize] = if quick() {
        &[1024, 16_384]
    } else {
        &[1024, 16_384, 262_144]
    };
    for &agents in agent_grid {
        group.throughput(Throughput::Elements(agents as u64));
        for workers in [1usize, 2, 4, 8] {
            group.bench_function(BenchmarkId::new(format!("pool_{workers}w"), agents), |b| {
                let mut engine = Engine::new(Torus2d::new(512), agents)
                    .with_seed_sequence(SeedSequence::new(7))
                    .with_threads(workers)
                    .with_worker_pool(Arc::new(WorkerPool::new(workers)))
                    .with_config(EngineConfig {
                        schedule_chunk: STREAM_BLOCK,
                        min_chunks_per_worker: 1,
                        inline_step_threshold: 0,
                        blocked_round_threshold: usize::MAX,
                    });
                let mut rng = SmallRng::seed_from_u64(2);
                engine.place_uniform(&mut rng);
                b.iter(|| engine.step_round_parallel());
            });
            group.bench_function(BenchmarkId::new(format!("spawn_{workers}w"), agents), |b| {
                let mut engine = Engine::new(Torus2d::new(512), agents)
                    .with_seed_sequence(SeedSequence::new(7))
                    .with_threads(workers);
                let mut rng = SmallRng::seed_from_u64(2);
                engine.place_uniform(&mut rng);
                b.iter(|| engine.step_round_parallel_spawn());
            });
        }
    }
    group.finish();
}

/// End-to-end scenario throughput: a whole Algorithm 1 run through the
/// spec layer (placement + rounds + estimates), in agent-rounds/s.
fn bench_scenario_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_run");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(measurement());
    let agents = 512usize;
    let rounds = 64u64;
    group.throughput(Throughput::Elements(agents as u64 * rounds));
    group.bench_function(BenchmarkId::new("algorithm1_torus64", agents), |b| {
        let spec = Scenario::new(TopologySpec::Torus2d { side: 64 }, agents, rounds);
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            spec.run(seed)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arena_round,
    bench_arena_scaling,
    bench_count_queries,
    bench_engine_vs_arena,
    bench_parallel_scaling,
    bench_scenario_run
);
criterion_main!(benches);
