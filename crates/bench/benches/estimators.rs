//! Estimator runtimes: Algorithm 1 (E1/E6), Algorithm 4 (E7), the i.i.d.
//! baseline, quorum sensing, and frequency estimation (E15) at matched
//! parameters.

use antdensity_core::algorithm1::Algorithm1;
use antdensity_core::algorithm4::Algorithm4;
use antdensity_core::baseline::IidBaseline;
use antdensity_core::frequency::FrequencyEstimation;
use antdensity_core::quorum::QuorumSensor;
use antdensity_graphs::{CompleteGraph, Torus2d};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let torus = Torus2d::new(64); // A = 4096
    let complete = CompleteGraph::new(4096);
    for t in [64u64, 256] {
        group.bench_with_input(BenchmarkId::new("torus64_d0.05", t), &t, |b, &t| {
            let alg = Algorithm1::new(206, t);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                alg.run(&torus, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("complete4096_d0.05", t), &t, |b, &t| {
            let alg = Algorithm1::new(206, t);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                alg.run(&complete, seed)
            });
        });
    }
    group.finish();
}

fn bench_algorithm4_and_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm4_vs_baseline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let torus = Torus2d::new(512);
    group.bench_function("algorithm4_t256", |b| {
        let alg = Algorithm4::new(2048, 256);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            alg.run(&torus, seed)
        });
    });
    group.bench_function("iid_baseline_t256", |b| {
        let base = IidBaseline::new(2047, 512 * 512, 256);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            base.run(2048, seed)
        });
    });
    group.finish();
}

fn bench_applications(c: &mut Criterion) {
    let mut group = c.benchmark_group("applications");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let torus = Torus2d::new(32);
    group.bench_function("frequency_estimation", |b| {
        let cfg = FrequencyEstimation::new(103, 32, 256);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            cfg.run(&torus, seed)
        });
    });
    group.bench_function("quorum_sensor", |b| {
        let complete = CompleteGraph::new(512);
        let sensor = QuorumSensor::new(0.1, 0.1, 1024);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sensor.run(&complete, 64, seed)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_algorithm4_and_baseline,
    bench_applications
);
criterion_main!(benches);
