//! Property-based tests for the simulation engine.

use antdensity_graphs::{NodeId, Ring, Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::arena::SyncArena;
use antdensity_walks::movement::MovementModel;
use antdensity_walks::parallel::run_trials;
use antdensity_walks::trajectory::Trajectory;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn occupancy_conserved_over_rounds(
        side in 2u64..10,
        agents in 1usize..40,
        rounds in 0u64..20,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arena = SyncArena::new(Torus2d::new(side), agents);
        arena.place_uniform(&mut rng);
        for _ in 0..rounds {
            arena.step_round(&mut rng);
        }
        let total: u32 = (0..arena.topology().num_nodes())
            .map(|v| arena.occupancy(v))
            .sum();
        prop_assert_eq!(total as usize, agents);
    }

    #[test]
    fn count_equals_manual_recount(
        side in 2u64..8,
        agents in 2usize..30,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arena = SyncArena::new(Torus2d::new(side), agents);
        arena.place_uniform(&mut rng);
        arena.step_round(&mut rng);
        for a in 0..agents {
            let manual = (0..agents)
                .filter(|&b| b != a && arena.position(b) == arena.position(a))
                .count();
            prop_assert_eq!(arena.count(a) as usize, manual);
        }
    }

    #[test]
    fn group_counts_partition_total(
        seed in any::<u64>(),
        agents in 4usize..24,
    ) {
        // Every agent in exactly one of two groups: group counts must sum
        // to the total count.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arena = SyncArena::new(Torus2d::new(4), agents);
        for a in 0..agents {
            arena.assign_group(a, a % 2);
        }
        arena.place_uniform(&mut rng);
        arena.step_round(&mut rng);
        for a in 0..agents {
            let total = arena.count(a);
            let g0 = arena.count_in_group(a, 0);
            let g1 = arena.count_in_group(a, 1);
            prop_assert_eq!(total, g0 + g1);
        }
    }

    #[test]
    fn trajectory_hops_are_legal(
        side in 2u64..10,
        rounds in 0u64..60,
        seed in any::<u64>(),
        lazy in prop::bool::ANY,
    ) {
        let topo = Torus2d::new(side);
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = if lazy { MovementModel::lazy(0.3) } else { MovementModel::Pure };
        let tr = Trajectory::record(&topo, 0, rounds, &model, &mut rng);
        for w in tr.nodes().windows(2) {
            prop_assert!(topo.torus_distance(w[0], w[1]) <= 1);
        }
        let (mx, my) = tr.axis_step_counts(&topo);
        prop_assert!(mx + my <= rounds);
        if !lazy {
            prop_assert_eq!(mx + my, rounds);
        }
    }

    #[test]
    fn parallel_equals_serial(trials in 0u64..60, seed in any::<u64>()) {
        let seq = SeedSequence::new(seed);
        let work = |i: u64, rng: &mut SmallRng| -> u64 {
            use rand::Rng;
            i ^ rng.gen::<u64>()
        };
        let serial = run_trials(trials, 1, seq, work);
        let parallel = run_trials(trials, 5, seq, work);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn ring_walk_preserves_parity(
        half_n in 2u64..20,
        rounds in 0u64..50,
        seed in any::<u64>(),
    ) {
        // On an even ring, position parity after r rounds = (start + r) % 2.
        let n = half_n * 2;
        let ring = Ring::new(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let tr = Trajectory::record(&ring, 0, rounds, &MovementModel::Pure, &mut rng);
        for (r, &v) in tr.nodes().iter().enumerate() {
            prop_assert_eq!(v % 2, (r as NodeId) % 2);
        }
    }

    #[test]
    fn drift_trajectory_is_deterministic(
        side in 2u64..8,
        rounds in 0u64..30,
        seed1 in any::<u64>(),
        seed2 in any::<u64>(),
    ) {
        let topo = Torus2d::new(side);
        let model = MovementModel::Drift { move_index: 2 };
        let a = Trajectory::record(
            &topo, 0, rounds, &model, &mut SmallRng::seed_from_u64(seed1));
        let b = Trajectory::record(
            &topo, 0, rounds, &model, &mut SmallRng::seed_from_u64(seed2));
        prop_assert_eq!(a, b);
    }
}
