//! Engine/arena equivalence and parallel-determinism properties.
//!
//! The engine rewrite replaced `SyncArena`'s per-round `HashMap` occupancy
//! rebuilds with dense touched-list buffers while promising to preserve
//! the historical RNG draw order bit-for-bit. These tests hold it to that:
//!
//! * a **reference stepper** — a verbatim replica of the pre-engine
//!   `SyncArena::step_round` (HashMap occupancy, same draw order) — must
//!   produce identical trajectories and occupancy counts as both the
//!   rewired `SyncArena` and a raw `Engine`, for the same seed, across
//!   torus / ring / hypercube / complete topologies and across the
//!   avoidance/flee variants;
//! * the engine's chunked parallel stepping must be bit-identical for
//!   1 vs N worker threads.

use antdensity_engine::Engine;
use antdensity_graphs::{CompleteGraph, Hypercube, NodeId, Ring, Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::arena::SyncArena;
use antdensity_walks::movement::MovementModel;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashMap;

/// The pre-engine `SyncArena` inner loop, kept verbatim as ground truth.
struct ReferenceArena<T: Topology> {
    topo: T,
    positions: Vec<NodeId>,
    movement: Vec<MovementModel>,
    occupancy: HashMap<NodeId, u32>,
    avoidance: Option<f64>,
    flee: bool,
}

impl<T: Topology> ReferenceArena<T> {
    fn new(topo: T, num_agents: usize) -> Self {
        Self {
            topo,
            positions: vec![0; num_agents],
            movement: vec![MovementModel::Pure; num_agents],
            occupancy: HashMap::new(),
            avoidance: None,
            flee: false,
        }
    }

    fn place_uniform(&mut self, rng: &mut dyn RngCore) {
        for p in self.positions.iter_mut() {
            *p = self.topo.uniform_node(rng);
        }
        self.rebuild_occupancy();
    }

    fn step_round(&mut self, rng: &mut dyn RngCore) {
        if self.avoidance.is_none() && !self.flee {
            for (pos, model) in self.positions.iter_mut().zip(&self.movement) {
                *pos = model.step(&self.topo, *pos, rng);
            }
        } else {
            for i in 0..self.positions.len() {
                let cur = self.positions[i];
                let collided = self.occupancy.get(&cur).copied().unwrap_or(0) >= 2;
                let mut next = self.movement[i].step(&self.topo, cur, rng);
                if let Some(p) = self.avoidance {
                    let target_busy =
                        next != cur && self.occupancy.get(&next).copied().unwrap_or(0) >= 1;
                    if target_busy && rng.gen_bool(p) {
                        next = cur;
                    }
                }
                if self.flee && collided {
                    next = self.movement[i].step(&self.topo, next, rng);
                }
                self.positions[i] = next;
            }
        }
        self.rebuild_occupancy();
    }

    fn rebuild_occupancy(&mut self) {
        self.occupancy.clear();
        for &p in &self.positions {
            *self.occupancy.entry(p).or_insert(0) += 1;
        }
    }
}

/// Steps reference, arena, and engine in lockstep from identical seeds and
/// asserts identical trajectories and occupancy every round.
fn assert_equivalent<T: Topology + Clone>(
    topo: T,
    agents: usize,
    rounds: u64,
    seed: u64,
    movement: MovementModel,
    avoidance: Option<f64>,
    flee: bool,
) {
    let mut reference = ReferenceArena::new(topo.clone(), agents);
    reference.movement = vec![movement.clone(); agents];
    reference.avoidance = avoidance;
    reference.flee = flee;

    let mut arena = SyncArena::new(topo.clone(), agents);
    arena.set_movement_all(&movement);
    arena.set_avoidance(avoidance);
    arena.set_flee(flee);

    let mut engine = Engine::new(topo.clone(), agents);
    engine.set_movement_all(&movement);
    engine.set_avoidance(avoidance);
    engine.set_flee(flee);

    let mut rng_ref = SmallRng::seed_from_u64(seed);
    let mut rng_arena = SmallRng::seed_from_u64(seed);
    let mut rng_engine = SmallRng::seed_from_u64(seed);
    reference.place_uniform(&mut rng_ref);
    arena.place_uniform(&mut rng_arena);
    engine.place_uniform(&mut rng_engine);

    for round in 0..=rounds {
        if round > 0 {
            reference.step_round(&mut rng_ref);
            arena.step_round(&mut rng_arena);
            engine.step_round(&mut rng_engine);
        }
        for a in 0..agents {
            assert_eq!(
                reference.positions[a],
                arena.position(a),
                "arena diverged from reference at round {round}, agent {a}"
            );
            assert_eq!(
                reference.positions[a],
                engine.position(a),
                "engine diverged from reference at round {round}, agent {a}"
            );
        }
        for v in 0..topo.num_nodes() {
            let expected = reference.occupancy.get(&v).copied().unwrap_or(0);
            assert_eq!(expected, arena.occupancy(v), "arena occupancy at node {v}");
            assert_eq!(
                expected,
                engine.occupancy(v),
                "engine occupancy at node {v}"
            );
        }
        let distinct = reference.occupancy.len();
        assert_eq!(distinct, arena.occupied_nodes());
        assert_eq!(distinct, engine.occupied_nodes());
    }
}

fn movement_for(kind: usize) -> MovementModel {
    match kind {
        0 => MovementModel::Pure,
        1 => MovementModel::lazy(0.25),
        _ => MovementModel::Stationary,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn torus_trajectories_identical(
        agents in 1usize..40,
        rounds in 0u64..25,
        kind in 0usize..3,
        seed in any::<u64>(),
    ) {
        assert_equivalent(Torus2d::new(8), agents, rounds, seed, movement_for(kind), None, false);
    }

    #[test]
    fn ring_trajectories_identical(
        agents in 1usize..40,
        rounds in 0u64..25,
        seed in any::<u64>(),
    ) {
        assert_equivalent(Ring::new(31), agents, rounds, seed, MovementModel::Pure, None, false);
    }

    #[test]
    fn hypercube_trajectories_identical(
        agents in 1usize..40,
        rounds in 0u64..25,
        seed in any::<u64>(),
    ) {
        assert_equivalent(Hypercube::new(5), agents, rounds, seed, MovementModel::Pure, None, false);
    }

    #[test]
    fn complete_trajectories_identical(
        agents in 1usize..40,
        rounds in 0u64..25,
        seed in any::<u64>(),
    ) {
        assert_equivalent(
            CompleteGraph::new(24), agents, rounds, seed, MovementModel::Pure, None, false,
        );
    }

    #[test]
    fn avoidance_and_flee_paths_identical(
        agents in 2usize..32,
        rounds in 1u64..20,
        avoidance in 0.0..=1.0f64,
        flee in prop::bool::ANY,
        seed in any::<u64>(),
    ) {
        assert_equivalent(
            Torus2d::new(6), agents, rounds, seed,
            MovementModel::Pure, Some(avoidance), flee,
        );
    }

    #[test]
    fn parallel_stepping_thread_count_invariant(
        agents in 1usize..600,
        rounds in 1u64..12,
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        let run = |workers: usize| {
            let mut engine = Engine::new(Torus2d::new(16), agents)
                .with_seed_sequence(SeedSequence::new(seed))
                .with_threads(workers);
            engine.place_uniform(&mut SmallRng::seed_from_u64(seed ^ 0xF00D));
            engine.run_parallel(rounds);
            (0..agents).map(|a| engine.position(a)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(1), run(threads));
    }

    #[test]
    fn parallel_and_sequential_agree_statistically(
        agents in 2usize..200,
        seed in any::<u64>(),
    ) {
        // Different draw orders, same model: occupancy must always be
        // conserved and counts symmetric in both modes.
        let mut seq_engine = Engine::new(Torus2d::new(12), agents);
        seq_engine.place_uniform(&mut SmallRng::seed_from_u64(seed));
        let mut rng = SmallRng::seed_from_u64(seed ^ 1);
        for _ in 0..5 {
            seq_engine.step_round(&mut rng);
        }
        let mut par_engine = Engine::new(Torus2d::new(12), agents)
            .with_seed_sequence(SeedSequence::new(seed))
            .with_threads(4);
        par_engine.place_uniform(&mut SmallRng::seed_from_u64(seed));
        par_engine.run_parallel(5);
        for engine in [&seq_engine, &par_engine] {
            let total: u32 = (0..engine.topology().num_nodes())
                .map(|v| engine.occupancy(v))
                .sum();
            prop_assert_eq!(total as usize, agents);
            let collisions: u32 = (0..agents).map(|a| engine.count(a)).sum();
            prop_assert_eq!(collisions % 2, 0);
        }
    }
}
