//! Asynchronous movement — the paper's Section 6.1 variant ("it may also
//! be interesting to consider random-walk-based models, but with
//! asynchronous movement").
//!
//! Instead of synchronous rounds, activations fire one agent at a time
//! (the standard continuous-time approximation: each agent carries an
//! independent rate-1 Poisson clock; the sequence of firings is a uniform
//! random agent per tick). An activated agent steps and then senses
//! `count(position)`.
//!
//! The natural encounter-rate estimator divides an agent's accumulated
//! count by its *own* activation count, mirroring Algorithm 1 per local
//! clock. Because uniform placement stays stationary under single-agent
//! moves, the estimator remains unbiased — the asynchronous model changes
//! constants, not correctness, which [`AsyncArena`]'s tests verify.

use antdensity_graphs::{NodeId, Topology};
use rand::Rng;
use rand::RngCore;
use std::collections::HashMap;

/// An asynchronous multi-agent world: one uniformly random agent moves
/// per tick.
#[derive(Debug, Clone)]
pub struct AsyncArena<T: Topology> {
    topo: T,
    positions: Vec<NodeId>,
    occupancy: HashMap<NodeId, u32>,
    activations: Vec<u64>,
    counts: Vec<u64>,
    ticks: u64,
    placed: bool,
}

impl<T: Topology> AsyncArena<T> {
    /// Creates an arena with `num_agents` agents (unplaced).
    ///
    /// # Panics
    ///
    /// Panics if `num_agents == 0`.
    pub fn new(topo: T, num_agents: usize) -> Self {
        assert!(num_agents > 0, "arena needs at least one agent");
        Self {
            topo,
            positions: vec![0; num_agents],
            occupancy: HashMap::new(),
            activations: vec![0; num_agents],
            counts: vec![0; num_agents],
            ticks: 0,
            placed: false,
        }
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.positions.len()
    }

    /// Ticks (single-agent activations) elapsed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Paper-convention density `d = n/A`.
    pub fn density(&self) -> f64 {
        (self.num_agents() as f64 - 1.0) / self.topo.num_nodes() as f64
    }

    /// Places every agent uniformly at random and resets all statistics.
    pub fn place_uniform(&mut self, rng: &mut dyn RngCore) {
        for p in self.positions.iter_mut() {
            *p = self.topo.uniform_node(rng);
        }
        self.occupancy.clear();
        for &p in &self.positions {
            *self.occupancy.entry(p).or_insert(0) += 1;
        }
        self.activations.iter_mut().for_each(|a| *a = 0);
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.ticks = 0;
        self.placed = true;
    }

    /// One tick: a uniformly random agent steps to a random neighbor and
    /// senses the number of other agents at its new node.
    ///
    /// # Panics
    ///
    /// Panics if the arena is unplaced.
    pub fn tick(&mut self, rng: &mut dyn RngCore) {
        assert!(self.placed, "place agents before ticking");
        let agent = rng.gen_range(0..self.positions.len());
        let from = self.positions[agent];
        let to = self.topo.random_neighbor(from, rng);
        // update occupancy incrementally
        if let Some(c) = self.occupancy.get_mut(&from) {
            *c -= 1;
            if *c == 0 {
                self.occupancy.remove(&from);
            }
        }
        let at_target = self.occupancy.entry(to).or_insert(0);
        let others = *at_target;
        *at_target += 1;
        self.positions[agent] = to;
        self.activations[agent] += 1;
        self.counts[agent] += others as u64;
        self.ticks += 1;
    }

    /// Runs `ticks` activations.
    pub fn run(&mut self, ticks: u64, rng: &mut dyn RngCore) {
        for _ in 0..ticks {
            self.tick(rng);
        }
    }

    /// Agent `a`'s encounter-rate density estimate: accumulated count per
    /// own activation (0 if never activated).
    pub fn estimate(&self, agent: usize) -> f64 {
        if self.activations[agent] == 0 {
            0.0
        } else {
            self.counts[agent] as f64 / self.activations[agent] as f64
        }
    }

    /// All estimates.
    pub fn estimates(&self) -> Vec<f64> {
        (0..self.num_agents()).map(|a| self.estimate(a)).collect()
    }

    /// Current position of `agent`.
    ///
    /// # Panics
    ///
    /// Panics if unplaced or out of range.
    pub fn position(&self, agent: usize) -> NodeId {
        assert!(self.placed, "arena not placed yet");
        self.positions[agent]
    }

    /// Occupancy of `node`.
    pub fn occupancy(&self, node: NodeId) -> u32 {
        self.occupancy.get(&node).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CompleteGraph, Torus2d};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn occupancy_stays_consistent_incrementally() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut arena = AsyncArena::new(Torus2d::new(8), 20);
        arena.place_uniform(&mut rng);
        arena.run(500, &mut rng);
        // recompute occupancy from scratch and compare
        let mut fresh: HashMap<NodeId, u32> = HashMap::new();
        for a in 0..20 {
            *fresh.entry(arena.position(a)).or_insert(0) += 1;
        }
        for v in 0..arena.topo.num_nodes() {
            assert_eq!(arena.occupancy(v), fresh.get(&v).copied().unwrap_or(0));
        }
    }

    #[test]
    fn activations_sum_to_ticks() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut arena = AsyncArena::new(Torus2d::new(8), 10);
        arena.place_uniform(&mut rng);
        arena.run(777, &mut rng);
        assert_eq!(arena.activations.iter().sum::<u64>(), 777);
        assert_eq!(arena.ticks(), 777);
    }

    #[test]
    fn estimator_is_unbiased_on_complete_graph() {
        // On the complete graph an activated agent lands uniformly, so
        // each activation is an independent Bernoulli-sum sample of d.
        let mut rng = SmallRng::seed_from_u64(3);
        let a = 256u64;
        let agents = 33; // d = 32/256 = 0.125
        let mut grand = 0.0;
        let runs = 12;
        for _ in 0..runs {
            let mut arena = AsyncArena::new(CompleteGraph::new(a), agents);
            arena.place_uniform(&mut rng);
            arena.run(40_000, &mut rng);
            grand += arena.estimates().iter().sum::<f64>() / agents as f64;
        }
        let mean = grand / runs as f64;
        assert!((mean - 0.125).abs() < 0.01, "async mean estimate {mean}");
    }

    #[test]
    fn estimator_is_unbiased_on_torus() {
        // The paper's 6.1 conjecture: asynchrony should not break the
        // encounter-rate estimator. d = 32/256 = 0.125.
        let mut rng = SmallRng::seed_from_u64(4);
        let agents = 33;
        let mut grand = 0.0;
        let runs = 12;
        for _ in 0..runs {
            let mut arena = AsyncArena::new(Torus2d::new(16), agents);
            arena.place_uniform(&mut rng);
            arena.run(40_000, &mut rng);
            grand += arena.estimates().iter().sum::<f64>() / agents as f64;
        }
        let mean = grand / runs as f64;
        assert!(
            (mean - 0.125).abs() < 0.015,
            "async torus mean estimate {mean}"
        );
    }

    #[test]
    fn unactivated_agents_estimate_zero() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut arena = AsyncArena::new(Torus2d::new(4), 5);
        arena.place_uniform(&mut rng);
        // no ticks at all
        assert!(arena.estimates().iter().all(|&e| e == 0.0));
    }

    #[test]
    fn estimates_concentrate_with_more_ticks() {
        let mut rng = SmallRng::seed_from_u64(6);
        let spread = |ticks: u64, rng: &mut SmallRng| -> f64 {
            let mut arena = AsyncArena::new(Torus2d::new(16), 33);
            arena.place_uniform(rng);
            arena.run(ticks, rng);
            let es = arena.estimates();
            let m = es.iter().sum::<f64>() / es.len() as f64;
            (es.iter().map(|e| (e - m) * (e - m)).sum::<f64>() / es.len() as f64).sqrt()
        };
        let short = spread(2_000, &mut rng);
        let long = spread(100_000, &mut rng);
        assert!(
            long < short,
            "more activations must tighten estimates: {long} vs {short}"
        );
    }

    #[test]
    #[should_panic(expected = "place agents")]
    fn ticking_unplaced_panics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut arena = AsyncArena::new(Torus2d::new(4), 2);
        arena.tick(&mut rng);
    }
}
