//! The paper's computational model as an executable simulation engine.
//!
//! Section 2 of *Ant-Inspired Density Estimation via Random Walks*
//! (Musco, Su, Lynch) defines the model this crate implements exactly:
//!
//! * a set of anonymous agents on a graph topology,
//! * discrete synchronous rounds; in each round every agent either stays
//!   or moves to a neighboring node,
//! * at the end of each round an agent senses `count(position)` — the
//!   number of *other* agents on its node — and nothing else,
//! * agents start at independent uniformly random nodes.
//!
//! Components:
//!
//! * [`movement`] — movement models: the paper's pure random walk, plus
//!   the extensions it sketches (lazy walks, biased/perturbed step
//!   distributions from Section 6.1, the deterministic drift used by the
//!   independent-sampling Algorithm 4, and stationary agents). Since the
//!   engine rewrite this module lives in `antdensity_engine` and is
//!   re-exported here under its historical path.
//! * [`arena`] — [`arena::SyncArena`]: the synchronous multi-agent world
//!   with per-round occupancy and `count(position)`, including property
//!   groups for the Section 5.2 frequency-estimation application. The
//!   inner loop delegates to `antdensity_engine::Engine`'s dense
//!   touched-list occupancy buffers while preserving the historical RNG
//!   draw order bit-for-bit.
//! * [`pairwise`] — two-agent and single-agent Monte-Carlo statistics
//!   (re-collisions, equalizations, visits, range) matching the paper's
//!   core lemmas; cross-validated against the exact distributions in
//!   `antdensity_graphs::dist`.
//! * [`trajectory`] — full-path recording, used where the paper
//!   conditions on an agent's walk `W` (Lemmas 4 and 11).
//! * [`parallel`] — deterministic fan-out of independent trials over
//!   threads (results are independent of thread count).
//! * [`asynchronous`] — the Section 6.1 asynchronous-movement variant:
//!   one random agent activates per tick (Poisson-clock approximation);
//!   encounter-rate estimation remains unbiased.
//!
//! # Example
//!
//! ```
//! use antdensity_graphs::Torus2d;
//! use antdensity_walks::arena::SyncArena;
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut arena = SyncArena::new(Torus2d::new(32), 64);
//! arena.place_uniform(&mut rng);
//! arena.step_round(&mut rng);
//! let collisions: u32 = (0..64).map(|a| arena.count(a)).sum();
//! // every collision is counted by both parties
//! assert_eq!(collisions % 2, 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod arena;
pub mod asynchronous;
pub use antdensity_engine::movement;
pub mod pairwise;
pub mod parallel;
pub mod trajectory;

pub use arena::SyncArena;
pub use asynchronous::AsyncArena;
pub use movement::MovementModel;
pub use trajectory::Trajectory;
