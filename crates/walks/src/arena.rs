//! The synchronous multi-agent arena: the paper's model, executable.
//!
//! A [`SyncArena`] holds N agents on a topology. Each round every agent
//! makes one move (per its [`MovementModel`]), after which the arena
//! refreshes its occupancy index so that `count(position)` — the number of
//! *other* agents at an agent's node at the end of the round — can be
//! answered in O(1), exactly as the paper's sensing primitive.
//!
//! Agents may carry a **property group** (successful forager, enemy,
//! task-group member, …); per-group occupancy supports the Section 5.2
//! relative-frequency application where agents "separately track
//! encounters" with agents of a given type.
//!
//! Since the engine rewrite, `SyncArena` is a thin façade over
//! [`antdensity_engine::Engine`]: the inner loop runs on dense
//! touched-list occupancy buffers instead of per-round `HashMap` rebuilds,
//! while the RNG draw order of [`SyncArena::step_round`] is preserved
//! bit-for-bit, so any seed reproduces the pre-engine trajectories
//! exactly.

use crate::movement::MovementModel;
use antdensity_engine::Engine;
use antdensity_graphs::{NodeId, Topology};
use rand::RngCore;

pub use antdensity_engine::{AgentId, GroupId};

/// The synchronous multi-agent world of Section 2.
///
/// # Example
///
/// ```
/// use antdensity_graphs::Torus2d;
/// use antdensity_walks::arena::SyncArena;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut arena = SyncArena::new(Torus2d::new(16), 10);
/// arena.place_uniform(&mut rng);
/// for _ in 0..5 {
///     arena.step_round(&mut rng);
/// }
/// assert_eq!(arena.round(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct SyncArena<T: Topology> {
    engine: Engine<T>,
}

impl<T: Topology> SyncArena<T> {
    /// Creates an arena with `num_agents` agents, all using the paper's
    /// pure random walk. Agents are unplaced until [`Self::place_uniform`]
    /// or [`Self::place_at`] is called.
    ///
    /// The dense engine underneath allocates its occupancy index per
    /// *node* (O(A) memory, vs the old HashMap's O(agents)) — the trade
    /// that buys hash-free O(1) sensing. For the paper's regimes
    /// (`d = n/A` bounded below, so `A = O(n)`) this is the same
    /// asymptotic footprint.
    ///
    /// # Panics
    ///
    /// Panics if `num_agents == 0`, or if the topology has more than
    /// `u32::MAX` nodes (positions are stored as dense `u32`; see
    /// [`antdensity_engine::MAX_NODES`]).
    pub fn new(topo: T, num_agents: usize) -> Self {
        Self {
            engine: Engine::new(topo, num_agents),
        }
    }

    /// The underlying batched engine (for parallel stepping and other
    /// engine-only features).
    pub fn engine(&self) -> &Engine<T> {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine<T> {
        &mut self.engine
    }

    /// The topology agents live on.
    pub fn topology(&self) -> &T {
        self.engine.topology()
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.engine.num_agents()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.engine.round()
    }

    /// Population density `d = n/A` under the paper's convention
    /// (Section 2.1): with `n+1` agents present, `d` counts the *other*
    /// agents, so a lone agent sees density 0.
    pub fn density(&self) -> f64 {
        self.engine.density()
    }

    /// Places every agent at an independent uniformly random node (the
    /// paper's initial condition) and resets the round counter.
    pub fn place_uniform(&mut self, rng: &mut dyn RngCore) {
        self.engine.place_uniform(rng);
    }

    /// Places agents at explicit positions (adversarial configurations,
    /// e.g. the co-located starts that Algorithm 4's `c mod t` step
    /// corrects for) and resets the round counter.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the agent count or a
    /// position is out of range.
    pub fn place_at(&mut self, positions: &[NodeId]) {
        self.engine.place_at(positions);
    }

    /// Sets one agent's movement model.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn set_movement(&mut self, agent: AgentId, model: MovementModel) {
        self.engine.set_movement(agent, model);
    }

    /// Sets every agent's movement model.
    pub fn set_movement_all(&mut self, model: &MovementModel) {
        self.engine.set_movement_all(model);
    }

    /// Declares that groups `0..count` exist (even if some end up empty),
    /// so [`Self::count_in_group`] is queryable for all of them.
    pub fn declare_groups(&mut self, count: usize) {
        self.engine.declare_groups(count);
    }

    /// Assigns `agent` to property `group` (replacing any previous group).
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn assign_group(&mut self, agent: AgentId, group: GroupId) {
        self.engine.assign_group(agent, group);
    }

    /// The group of `agent`, if any.
    pub fn group_of(&self, agent: AgentId) -> Option<GroupId> {
        self.engine.group_of(agent)
    }

    /// Number of agents assigned to `group`.
    pub fn group_size(&self, group: GroupId) -> usize {
        self.engine.group_size(group)
    }

    /// Current position of `agent`.
    ///
    /// # Panics
    ///
    /// Panics if the arena is unplaced or `agent` out of range.
    pub fn position(&self, agent: AgentId) -> NodeId {
        self.engine.position(agent)
    }

    /// Enables cell avoidance — the first variant the paper sketches in
    /// Section 6.1 ("agents sense and sometimes avoid collisions"): before
    /// committing a move whose target cell was occupied at the end of the
    /// previous round, the agent backs off (stays put) with probability
    /// `prob`.
    ///
    /// Counter-intuitively, this *raises* measured encounter rates: a
    /// just-collided pair trying to leave gets frozen in place by crowded
    /// neighborhoods and re-collides repeatedly (stickiness). The E17
    /// experiment quantifies the effect. Pass `None` to restore the
    /// paper's exact model.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn set_avoidance(&mut self, prob: Option<f64>) {
        self.engine.set_avoidance(prob);
    }

    /// Enables post-encounter dispersal — the second Section 6.1 variant
    /// ("move away from previously encountered ants"): an agent that
    /// shared its cell with someone at the end of the previous round takes
    /// *two* walk steps this round.
    ///
    /// This suppresses repeat collisions, pushing the encounter rate
    /// *below* the pure-model prediction — matching the field
    /// observations the paper cites [GPT93, NTD05].
    pub fn set_flee(&mut self, flee: bool) {
        self.engine.set_flee(flee);
    }

    /// Executes one synchronous round: every agent moves once, then the
    /// occupancy index is refreshed (the paper's `count` reads positions
    /// at the *end* of the round).
    ///
    /// # Panics
    ///
    /// Panics if the arena is unplaced.
    pub fn step_round(&mut self, rng: &mut dyn RngCore) {
        self.engine.step_round(rng);
    }

    /// The paper's `count(position)`: number of *other* agents at
    /// `agent`'s node at the end of the current round.
    ///
    /// # Panics
    ///
    /// Panics if the arena is unplaced or `agent` out of range.
    pub fn count(&self, agent: AgentId) -> u32 {
        self.engine.count(agent)
    }

    /// Number of *other* agents of `group` at `agent`'s node — the
    /// per-type encounter sensing of Section 5.2.
    ///
    /// # Panics
    ///
    /// Panics if the arena is unplaced, or `agent`/`group` out of range.
    pub fn count_in_group(&self, agent: AgentId, group: GroupId) -> u32 {
        self.engine.count_in_group(agent, group)
    }

    /// Total agents occupying `node` in the current round.
    pub fn occupancy(&self, node: NodeId) -> u32 {
        self.engine.occupancy(node)
    }

    /// Number of distinct occupied nodes.
    pub fn occupied_nodes(&self) -> usize {
        self.engine.occupied_nodes()
    }

    /// Iterator over `(agent, position)`.
    pub fn agent_positions(&self) -> impl Iterator<Item = (AgentId, NodeId)> + '_ {
        self.engine.agent_positions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CompleteGraph, Torus2d};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_arena(agents: usize, seed: u64) -> (SyncArena<Torus2d>, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arena = SyncArena::new(Torus2d::new(8), agents);
        arena.place_uniform(&mut rng);
        (arena, rng)
    }

    #[test]
    fn occupancy_sums_to_agent_count() {
        let (mut arena, mut rng) = small_arena(20, 1);
        for _ in 0..10 {
            arena.step_round(&mut rng);
            let total: u32 = (0..arena.topology().num_nodes())
                .map(|v| arena.occupancy(v))
                .sum();
            assert_eq!(total as usize, 20);
        }
    }

    #[test]
    fn count_is_symmetric_pairwise() {
        // if i and j share a node, both counts include each other
        let (mut arena, mut rng) = small_arena(30, 2);
        for _ in 0..20 {
            arena.step_round(&mut rng);
            for i in 0..30 {
                for j in (i + 1)..30 {
                    let together = arena.position(i) == arena.position(j);
                    if together {
                        assert!(arena.count(i) >= 1);
                        assert!(arena.count(j) >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn count_matches_occupancy_minus_one() {
        let (mut arena, mut rng) = small_arena(25, 3);
        arena.step_round(&mut rng);
        for a in 0..25 {
            assert_eq!(arena.count(a), arena.occupancy(arena.position(a)) - 1);
        }
    }

    #[test]
    fn total_collision_count_is_even() {
        // Sum over agents of count() double-counts each colliding pair.
        let (mut arena, mut rng) = small_arena(40, 4);
        for _ in 0..10 {
            arena.step_round(&mut rng);
            let total: u32 = (0..40).map(|a| arena.count(a)).sum();
            assert_eq!(total % 2, 0);
        }
    }

    #[test]
    fn density_uses_paper_convention() {
        let arena = SyncArena::new(Torus2d::new(10), 11);
        // (n+1) = 11 agents on A = 100 nodes: d = n/A = 10/100
        assert!((arena.density() - 0.1).abs() < 1e-12);
        let lone = SyncArena::new(Torus2d::new(10), 1);
        assert_eq!(lone.density(), 0.0);
    }

    #[test]
    fn stationary_agents_do_not_move() {
        let (mut arena, mut rng) = small_arena(5, 5);
        arena.set_movement_all(&MovementModel::Stationary);
        let before: Vec<NodeId> = (0..5).map(|a| arena.position(a)).collect();
        for _ in 0..10 {
            arena.step_round(&mut rng);
        }
        let after: Vec<NodeId> = (0..5).map(|a| arena.position(a)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn mixed_movement_models() {
        let (mut arena, mut rng) = small_arena(3, 6);
        arena.set_movement(0, MovementModel::Stationary);
        arena.set_movement(1, MovementModel::Drift { move_index: 2 });
        let p0 = arena.position(0);
        let p1 = arena.position(1);
        arena.step_round(&mut rng);
        assert_eq!(arena.position(0), p0);
        assert_eq!(arena.position(1), arena.topology().offset(p1, 0, 1));
    }

    #[test]
    fn place_at_and_adversarial_stack() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut arena = SyncArena::new(Torus2d::new(4), 4);
        arena.place_at(&[5, 5, 5, 2]);
        assert_eq!(arena.count(0), 2);
        assert_eq!(arena.count(3), 0);
        assert_eq!(arena.occupancy(5), 3);
        assert_eq!(arena.occupied_nodes(), 2);
        arena.step_round(&mut rng);
        assert_eq!(arena.round(), 1);
    }

    #[test]
    fn groups_count_only_other_members() {
        let mut arena = SyncArena::new(Torus2d::new(4), 4);
        arena.assign_group(0, 0);
        arena.assign_group(1, 0);
        arena.assign_group(2, 1);
        arena.place_at(&[9, 9, 9, 9]);
        // agent 0 (group 0) sees 1 other group-0 member and 1 group-1 member
        assert_eq!(arena.count_in_group(0, 0), 1);
        assert_eq!(arena.count_in_group(0, 1), 1);
        // agent 3 (no group) sees both group-0 members
        assert_eq!(arena.count_in_group(3, 0), 2);
        assert_eq!(arena.count(3), 3);
        assert_eq!(arena.group_size(0), 2);
        assert_eq!(arena.group_size(1), 1);
        assert_eq!(arena.group_of(3), None);
    }

    #[test]
    fn uniform_placement_covers_nodes() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut arena = SyncArena::new(CompleteGraph::new(16), 4000);
        arena.place_uniform(&mut rng);
        // with 4000 agents on 16 nodes, each node holds ~250
        for v in 0..16 {
            let occ = arena.occupancy(v);
            assert!(
                (occ as f64 - 250.0).abs() < 100.0,
                "node {v} occupancy {occ}"
            );
        }
    }

    #[test]
    fn reproducible_given_seed() {
        let (mut a1, mut r1) = small_arena(10, 99);
        let (mut a2, mut r2) = small_arena(10, 99);
        for _ in 0..20 {
            a1.step_round(&mut r1);
            a2.step_round(&mut r2);
        }
        let p1: Vec<NodeId> = (0..10).map(|a| a1.position(a)).collect();
        let p2: Vec<NodeId> = (0..10).map(|a| a2.position(a)).collect();
        assert_eq!(p1, p2);
    }

    fn encounter_total(avoid: Option<f64>, flee: bool, seed: u64) -> u64 {
        // moderate density (d = 0.125): the regime where both Section 6.1
        // behavioural variants have their documented sign. (At extreme
        // densities near 0.5 the flee effect can invert.)
        let agents = 32;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arena = SyncArena::new(Torus2d::new(16), agents);
        arena.set_avoidance(avoid);
        arena.set_flee(flee);
        arena.place_uniform(&mut rng);
        let mut total = 0u64;
        for _ in 0..600 {
            arena.step_round(&mut rng);
            total += (0..agents).map(|a| arena.count(a) as u64).sum::<u64>();
        }
        total
    }

    #[test]
    fn cell_avoidance_raises_encounters_by_stickiness() {
        // The counter-intuitive emergent effect: freezing in front of
        // occupied cells glues colliding pairs together, so measured
        // encounters EXCEED the pure model's.
        let pure: u64 = (0..5).map(|s| encounter_total(None, false, s)).sum();
        let avoidant: u64 = (0..5).map(|s| encounter_total(Some(1.0), false, s)).sum();
        assert!(
            avoidant > pure,
            "freeze-avoidance must raise encounters: {avoidant} vs {pure}"
        );
    }

    #[test]
    fn flee_lowers_encounter_rate() {
        // Post-encounter dispersal suppresses repeat collisions: the
        // [GPT93]-style below-prediction encounter rates.
        let pure: u64 = (0..5).map(|s| encounter_total(None, false, s)).sum();
        let fleeing: u64 = (0..5).map(|s| encounter_total(None, true, s)).sum();
        assert!(
            fleeing < pure,
            "flee must lower encounters: {fleeing} vs {pure}"
        );
    }

    #[test]
    fn zero_avoidance_matches_pure_model() {
        let mut r1 = SmallRng::seed_from_u64(50);
        let mut a1 = SyncArena::new(Torus2d::new(8), 10);
        a1.place_uniform(&mut r1);
        let mut r2 = SmallRng::seed_from_u64(50);
        let mut a2 = SyncArena::new(Torus2d::new(8), 10);
        a2.set_avoidance(Some(0.0));
        a2.place_uniform(&mut r2);
        for _ in 0..20 {
            a1.step_round(&mut r1);
            a2.step_round(&mut r2);
        }
        // rng consumption differs (gen_bool draws), so compare statistics
        // not trajectories: both must conserve occupancy and stay placed.
        let t1: u32 = (0..10).map(|a| a1.count(a)).sum();
        let t2: u32 = (0..10).map(|a| a2.count(a)).sum();
        assert_eq!(t1 % 2, 0);
        assert_eq!(t2 % 2, 0);
    }

    #[test]
    #[should_panic(expected = "avoidance probability")]
    fn avoidance_probability_validated() {
        let mut arena = SyncArena::new(Torus2d::new(4), 2);
        arena.set_avoidance(Some(1.5));
    }

    #[test]
    #[should_panic(expected = "place agents")]
    fn stepping_unplaced_arena_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut arena = SyncArena::new(Torus2d::new(4), 2);
        arena.step_round(&mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn empty_arena_panics() {
        let _ = SyncArena::new(Torus2d::new(4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn place_at_validates_positions() {
        let mut arena = SyncArena::new(Torus2d::new(2), 1);
        arena.place_at(&[100]);
    }
}
