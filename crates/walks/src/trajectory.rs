//! Full-path recording.
//!
//! Several of the paper's statements condition on an agent's walk `W`
//! (Lemma 4's re-collision bound "conditioned on the random walk taken by
//! one of the agents", Lemma 11's moments "conditioned on W"). The
//! experiments that verify them need explicit paths; [`Trajectory`]
//! records one and exposes the per-axis step counters `Mx`, `My` that the
//! proof of Lemma 9 works with.

use crate::movement::MovementModel;
use antdensity_graphs::{NodeId, Topology, Torus2d};
use rand::RngCore;

/// A recorded walk: positions at rounds `0..=t` (index 0 is the start).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trajectory {
    nodes: Vec<NodeId>,
}

impl Trajectory {
    /// Records a `t`-round walk from `start` under `model`.
    pub fn record<T: Topology>(
        topo: &T,
        start: NodeId,
        t: u64,
        model: &MovementModel,
        rng: &mut dyn RngCore,
    ) -> Self {
        let mut nodes = Vec::with_capacity(t as usize + 1);
        let mut v = start;
        nodes.push(v);
        for _ in 0..t {
            v = model.step(topo, v, rng);
            nodes.push(v);
        }
        Self { nodes }
    }

    /// Builds a trajectory from explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn from_nodes(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "trajectory needs at least the start");
        Self { nodes }
    }

    /// Number of rounds walked (`len − 1` positions after the start).
    pub fn rounds(&self) -> u64 {
        (self.nodes.len() - 1) as u64
    }

    /// Position at round `r` (`r = 0` is the start).
    ///
    /// # Panics
    ///
    /// Panics if `r` exceeds [`Trajectory::rounds`].
    pub fn position_at(&self, r: u64) -> NodeId {
        self.nodes[r as usize]
    }

    /// The start position.
    pub fn start(&self) -> NodeId {
        self.nodes[0]
    }

    /// The final position.
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("non-empty")
    }

    /// All positions, rounds `0..=t`.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Rounds `r ≥ 1` at which this walk and `other` share a node (the
    /// collision rounds between two recorded agents).
    ///
    /// # Panics
    ///
    /// Panics if the trajectories have different lengths.
    pub fn collision_rounds(&self, other: &Trajectory) -> Vec<u64> {
        assert_eq!(
            self.nodes.len(),
            other.nodes.len(),
            "trajectories must cover the same rounds"
        );
        self.nodes
            .iter()
            .zip(&other.nodes)
            .enumerate()
            .skip(1)
            .filter(|(_, (a, b))| a == b)
            .map(|(r, _)| r as u64)
            .collect()
    }

    /// Number of equalizations (returns to the start at rounds ≥ 1).
    pub fn equalizations(&self) -> u64 {
        let s = self.start();
        self.nodes[1..].iter().filter(|&&v| v == s).count() as u64
    }

    /// Number of distinct nodes touched (the walk's range).
    pub fn distinct_range(&self) -> u64 {
        let set: std::collections::HashSet<NodeId> = self.nodes.iter().copied().collect();
        set.len() as u64
    }

    /// Per-axis step counts `(Mx, My)` on a 2-d torus: how many rounds
    /// moved in x and in y (stationary rounds count toward neither).
    /// These are the conditioning variables of Lemma 5 / Lemma 9.
    ///
    /// # Panics
    ///
    /// Panics if any hop is not a legal single-round torus move.
    pub fn axis_step_counts(&self, torus: &Torus2d) -> (u64, u64) {
        let mut mx = 0;
        let mut my = 0;
        for w in self.nodes.windows(2) {
            let (dx, dy) = torus.displacement(w[0], w[1]);
            match (dx.abs(), dy.abs()) {
                (1, 0) => mx += 1,
                (0, 1) => my += 1,
                (0, 0) => {}
                _ => panic!("illegal hop {:?} -> {:?}", w[0], w[1]),
            }
        }
        (mx, my)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::Ring;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn record_has_t_plus_one_positions() {
        let topo = Torus2d::new(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let tr = Trajectory::record(&topo, 0, 10, &MovementModel::Pure, &mut rng);
        assert_eq!(tr.rounds(), 10);
        assert_eq!(tr.nodes().len(), 11);
        assert_eq!(tr.start(), 0);
        assert_eq!(tr.position_at(0), 0);
    }

    #[test]
    fn consecutive_positions_are_adjacent() {
        let topo = Torus2d::new(8);
        let mut rng = SmallRng::seed_from_u64(2);
        let tr = Trajectory::record(&topo, 5, 50, &MovementModel::Pure, &mut rng);
        for w in tr.nodes().windows(2) {
            assert_eq!(topo.torus_distance(w[0], w[1]), 1);
        }
    }

    #[test]
    fn axis_steps_sum_to_rounds_for_pure_walk() {
        let topo = Torus2d::new(16);
        let mut rng = SmallRng::seed_from_u64(3);
        let tr = Trajectory::record(&topo, 0, 200, &MovementModel::Pure, &mut rng);
        let (mx, my) = tr.axis_step_counts(&topo);
        assert_eq!(mx + my, 200);
        // Lemma 9: both are Theta(t) whp; 5-sigma band around t/2 = 100.
        assert!((mx as f64 - 100.0).abs() < 5.0 * (200.0f64 * 0.25).sqrt() + 1.0);
    }

    #[test]
    fn lazy_walk_axis_steps_below_rounds() {
        let topo = Torus2d::new(16);
        let mut rng = SmallRng::seed_from_u64(4);
        let tr = Trajectory::record(&topo, 0, 100, &MovementModel::lazy(0.5), &mut rng);
        let (mx, my) = tr.axis_step_counts(&topo);
        assert!(mx + my < 100);
    }

    #[test]
    fn collision_rounds_symmetric_and_correct() {
        let a = Trajectory::from_nodes(vec![0, 1, 2, 3, 2]);
        let b = Trajectory::from_nodes(vec![5, 1, 7, 3, 2]);
        assert_eq!(a.collision_rounds(&b), vec![1, 3, 4]);
        assert_eq!(b.collision_rounds(&a), vec![1, 3, 4]);
        // round 0 shared start would NOT count (paper counts per-round
        // collisions after moving)
        let c = Trajectory::from_nodes(vec![0, 9]);
        let d = Trajectory::from_nodes(vec![0, 8]);
        assert!(c.collision_rounds(&d).is_empty());
    }

    #[test]
    fn equalizations_counted() {
        let tr = Trajectory::from_nodes(vec![4, 5, 4, 3, 4]);
        assert_eq!(tr.equalizations(), 2);
        assert_eq!(tr.distinct_range(), 3);
    }

    #[test]
    fn drift_on_ring_never_equalizes_prematurely() {
        let ring = Ring::new(10);
        let mut rng = SmallRng::seed_from_u64(5);
        let tr = Trajectory::record(
            &ring,
            0,
            9,
            &MovementModel::Drift { move_index: 0 },
            &mut rng,
        );
        assert_eq!(tr.equalizations(), 0);
        assert_eq!(tr.distinct_range(), 10);
        assert_eq!(tr.end(), 9);
    }

    #[test]
    #[should_panic(expected = "same rounds")]
    fn collision_rounds_length_checked() {
        let a = Trajectory::from_nodes(vec![0, 1]);
        let b = Trajectory::from_nodes(vec![0, 1, 2]);
        let _ = a.collision_rounds(&b);
    }

    #[test]
    #[should_panic(expected = "illegal hop")]
    fn axis_steps_reject_teleports() {
        let topo = Torus2d::new(8);
        let tr = Trajectory::from_nodes(vec![0, 20]);
        let _ = tr.axis_step_counts(&topo);
    }
}
