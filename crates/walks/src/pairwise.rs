//! Monte-Carlo statistics for one and two random walks.
//!
//! These are the paper's core technical quantities, sampled directly:
//!
//! * re-collision indicators at lag `m` (Lemma 4's event `C`),
//! * pairwise collision counts `c_j` over `t` rounds (the variables whose
//!   moments Lemma 11 bounds),
//! * equalizations — returns to the origin (Corollary 10 / 16),
//! * visit counts to a fixed node (Corollary 15),
//! * distinct-range (Section 6.3.4's coverage statistics),
//! * first-meeting times.
//!
//! Each has an exact counterpart in [`antdensity_graphs::dist`]; the
//! integration suite cross-validates the two.

use antdensity_graphs::{NodeId, Topology};
use rand::RngCore;

/// Simulates two independent walks from the same start (a collision, per
/// Lemma 4's setup) for `m` further rounds; returns whether they re-collide
/// exactly at lag `m`.
pub fn recollision_at<T: Topology>(topo: &T, start: NodeId, m: u64, rng: &mut dyn RngCore) -> bool {
    let mut a = start;
    let mut b = start;
    for _ in 0..m {
        a = topo.random_neighbor(a, rng);
        b = topo.random_neighbor(b, rng);
    }
    a == b
}

/// Simulates two independent walks from the same start for `t` rounds and
/// returns the 0/1 re-collision indicator at every lag `0..=t` (one walk
/// pair gives the whole series — cheaper than calling
/// [`recollision_at`] per lag).
pub fn recollision_series<T: Topology>(
    topo: &T,
    start: NodeId,
    t: u64,
    rng: &mut dyn RngCore,
) -> Vec<bool> {
    let mut a = start;
    let mut b = start;
    let mut out = Vec::with_capacity(t as usize + 1);
    out.push(true);
    for _ in 0..t {
        a = topo.random_neighbor(a, rng);
        b = topo.random_neighbor(b, rng);
        out.push(a == b);
    }
    out
}

/// Samples the pairwise collision count `c_j` of Section 3.2: both agents
/// start at independent uniform nodes, walk `t` rounds, and we count the
/// rounds (after moving) in which they share a node.
pub fn pair_collision_count<T: Topology>(topo: &T, t: u64, rng: &mut dyn RngCore) -> u64 {
    let mut a = topo.uniform_node(rng);
    let mut b = topo.uniform_node(rng);
    let mut c = 0u64;
    for _ in 0..t {
        a = topo.random_neighbor(a, rng);
        b = topo.random_neighbor(b, rng);
        if a == b {
            c += 1;
        }
    }
    c
}

/// Samples the collision count against a *fixed* focal path (the paper
/// conditions on the focal agent's walk `W` in Lemmas 4/11): the other
/// agent starts uniform and walks `path.len()−1` rounds; returns the
/// number of rounds `r ≥ 1` with matching positions.
pub fn collision_count_against_path<T: Topology>(
    topo: &T,
    path: &[NodeId],
    rng: &mut dyn RngCore,
) -> u64 {
    assert!(!path.is_empty(), "path must contain the start position");
    let mut b = topo.uniform_node(rng);
    let mut c = 0u64;
    for &focal_pos in &path[1..] {
        b = topo.random_neighbor(b, rng);
        if b == focal_pos {
            c += 1;
        }
    }
    c
}

/// Counts equalizations — returns to the starting node — of a single
/// `t`-step walk (Corollary 16's variable).
pub fn equalization_count<T: Topology>(
    topo: &T,
    start: NodeId,
    t: u64,
    rng: &mut dyn RngCore,
) -> u64 {
    let mut v = start;
    let mut c = 0u64;
    for _ in 0..t {
        v = topo.random_neighbor(v, rng);
        if v == start {
            c += 1;
        }
    }
    c
}

/// Counts visits to `target` by a `t`-step walk from a uniformly random
/// start (Corollary 15's variable; the initial position counts as a visit
/// if it equals `target`, matching the corollary's round-1..t convention
/// after the first move).
pub fn visit_count<T: Topology>(topo: &T, target: NodeId, t: u64, rng: &mut dyn RngCore) -> u64 {
    let mut v = topo.uniform_node(rng);
    let mut c = 0u64;
    for _ in 0..t {
        v = topo.random_neighbor(v, rng);
        if v == target {
            c += 1;
        }
    }
    c
}

/// Number of distinct nodes a `t`-step walk from `start` touches
/// (including the start) — the walk's *range*, the coverage statistic of
/// Section 6.3.4.
pub fn distinct_range<T: Topology>(topo: &T, start: NodeId, t: u64, rng: &mut dyn RngCore) -> u64 {
    let mut seen = std::collections::HashSet::new();
    let mut v = start;
    seen.insert(v);
    for _ in 0..t {
        v = topo.random_neighbor(v, rng);
        seen.insert(v);
    }
    seen.len() as u64
}

/// First round `1..=max_t` at which two walks from `a_start`/`b_start`
/// occupy the same node, or `None` if they never meet within `max_t`.
pub fn first_meeting_time<T: Topology>(
    topo: &T,
    a_start: NodeId,
    b_start: NodeId,
    max_t: u64,
    rng: &mut dyn RngCore,
) -> Option<u64> {
    let mut a = a_start;
    let mut b = b_start;
    for r in 1..=max_t {
        a = topo.random_neighbor(a, rng);
        b = topo.random_neighbor(b, rng);
        if a == b {
            return Some(r);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CompleteGraph, Ring, Torus2d};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn recollision_lag_zero_is_certain() {
        let t = Torus2d::new(8);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(recollision_at(&t, 5, 0, &mut rng));
    }

    #[test]
    fn recollision_odd_lag_impossible_on_even_torus() {
        // The difference of two same-parity walks is even: on a bipartite
        // torus both agents sit in the same part after each round, so a
        // re-collision at odd lag... is actually possible (both moved).
        // What IS impossible: the two agents' displacement parity differs.
        // Here we check the exact-lag-1 case on the ring of size 4:
        // after 1 step from the same node they meet iff they chose the
        // same move: probability 1/2.
        let r = Ring::new(4);
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..20_000)
            .filter(|_| recollision_at(&r, 0, 1, &mut rng))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn recollision_series_matches_exact_on_complete_graph() {
        // On CompleteGraph the re-collision probability at every lag >= 1
        // is exactly 1/A.
        let g = CompleteGraph::new(16);
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 20_000;
        let t = 5;
        let mut hits = vec![0u32; t as usize + 1];
        for _ in 0..trials {
            for (m, hit) in recollision_series(&g, 0, t, &mut rng).iter().enumerate() {
                if *hit {
                    hits[m] += 1;
                }
            }
        }
        assert_eq!(hits[0], trials);
        for (m, &hit_count) in hits.iter().enumerate().skip(1) {
            let rate = hit_count as f64 / trials as f64;
            assert!(
                (rate - 1.0 / 16.0).abs() < 0.01,
                "lag {m} rate {rate} should be 1/16"
            );
        }
    }

    #[test]
    fn pair_collision_count_mean_is_t_over_a() {
        // E[c_j] = t/A (proof of Lemma 12).
        let t = Torus2d::new(8); // A = 64
        let mut rng = SmallRng::seed_from_u64(4);
        let rounds = 32u64;
        let trials = 40_000;
        let total: u64 = (0..trials)
            .map(|_| pair_collision_count(&t, rounds, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = rounds as f64 / 64.0;
        // std of c_j is O(sqrt(t/A log t)); 40k trials give tight CI
        assert!(
            (mean - expected).abs() < 0.02,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn collision_count_against_path_mean_matches() {
        // Conditioned on any focal path, E[c_j | W] = t/A (Lemma 2).
        let topo = Torus2d::new(8);
        let mut rng = SmallRng::seed_from_u64(5);
        // build an arbitrary fixed path of length t+1
        let path: Vec<NodeId> = {
            let mut v = topo.node(3, 3);
            let mut p = vec![v];
            for i in 0..32 {
                v = topo.neighbor(v, i % 4);
                p.push(v);
            }
            p
        };
        let trials = 40_000;
        let total: u64 = (0..trials)
            .map(|_| collision_count_against_path(&topo, &path, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = 32.0 / 64.0;
        assert!(
            (mean - expected).abs() < 0.02,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn equalization_zero_rounds_is_zero() {
        let t = Torus2d::new(4);
        let mut rng = SmallRng::seed_from_u64(6);
        assert_eq!(equalization_count(&t, 0, 0, &mut rng), 0);
    }

    #[test]
    fn equalization_rate_on_complete_graph() {
        // On CompleteGraph, each round returns to start w.p. 1/A.
        let g = CompleteGraph::new(8);
        let mut rng = SmallRng::seed_from_u64(7);
        let t = 50u64;
        let trials = 10_000;
        let total: u64 = (0..trials)
            .map(|_| equalization_count(&g, 3, t, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - t as f64 / 8.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn visit_count_mean_is_t_over_a() {
        let topo = Torus2d::new(8);
        let mut rng = SmallRng::seed_from_u64(8);
        let t = 64u64;
        let trials = 20_000;
        let total: u64 = (0..trials)
            .map(|_| visit_count(&topo, 0, t, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean} should be t/A = 1");
    }

    #[test]
    fn distinct_range_bounds() {
        let topo = Torus2d::new(16);
        let mut rng = SmallRng::seed_from_u64(9);
        for t in [0u64, 1, 10, 100] {
            let r = distinct_range(&topo, 0, t, &mut rng);
            assert!(r >= 1 && r <= t + 1, "range {r} for t {t}");
        }
    }

    #[test]
    fn range_grows_sublinearly_on_torus() {
        // 2-d walks revisit: range(t) = Theta(t / log t) << t. Check the
        // ratio drops well below 1.
        let topo = Torus2d::new(64);
        let mut rng = SmallRng::seed_from_u64(10);
        let t = 2000u64;
        let trials = 50;
        let mean: f64 = (0..trials)
            .map(|_| distinct_range(&topo, 0, t, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!(mean < 0.6 * t as f64, "mean range {mean} vs t {t}");
        assert!(
            mean > 0.1 * t as f64,
            "mean range {mean} suspiciously small"
        );
    }

    #[test]
    fn first_meeting_none_when_parity_forbids() {
        // On an even ring, walks starting at odd distance keep odd distance
        // forever: they can never meet.
        let ring = Ring::new(8);
        let mut rng = SmallRng::seed_from_u64(11);
        assert_eq!(first_meeting_time(&ring, 0, 1, 500, &mut rng), None);
    }

    #[test]
    fn first_meeting_usually_happens_at_even_distance() {
        let ring = Ring::new(8);
        let mut rng = SmallRng::seed_from_u64(12);
        let met = (0..200)
            .filter(|_| first_meeting_time(&ring, 0, 2, 2000, &mut rng).is_some())
            .count();
        assert!(met > 190, "met {met}/200");
    }
}
