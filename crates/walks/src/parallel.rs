//! Deterministic parallel fan-out of independent Monte-Carlo trials.
//!
//! Every trial gets its own RNG stream derived from
//! `(master seed, trial index)`, so results are bit-identical regardless
//! of the number of workers. Trials are processed as contiguous chunks
//! dispatched onto the process-global persistent
//! [`WorkerPool`] — no per-call thread
//! spawns — and results are concatenated in trial order.

use antdensity_engine::WorkerPool;
use antdensity_stats::rng::SeedSequence;
use rand::rngs::SmallRng;

/// Runs `trials` independent trials of `f` split across `threads` units
/// of pool work.
///
/// `f(trial_index, rng)` receives a [`SmallRng`] seeded from
/// `seeds.derive(trial_index)`. The returned vector is ordered by trial
/// index and identical for any `threads ≥ 1` — the work units execute on
/// the global [`WorkerPool`] (plus the calling thread, which helps),
/// and the stream a trial consumes depends only on its index.
///
/// # Panics
///
/// Panics if `threads == 0` or a trial panics.
///
/// # Example
///
/// ```
/// use antdensity_stats::rng::SeedSequence;
/// use antdensity_walks::parallel::run_trials;
/// use rand::Rng;
///
/// let seq = SeedSequence::new(7);
/// let sequential = run_trials(100, 1, seq, |_, rng| rng.gen::<u32>());
/// let parallel = run_trials(100, 4, seq, |_, rng| rng.gen::<u32>());
/// assert_eq!(sequential, parallel);
/// ```
pub fn run_trials<T, F>(trials: u64, threads: usize, seeds: SeedSequence, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut SmallRng) -> T + Sync,
{
    run_trials_on(WorkerPool::global(), trials, threads, seeds, f)
}

/// [`run_trials`] dispatching onto an explicit pool — for embedders that
/// isolate workloads and tests that pin a worker count. Results are
/// identical for every pool and every `threads` value.
///
/// # Panics
///
/// Panics if `threads == 0` or a trial panics.
pub fn run_trials_on<T, F>(
    pool: &WorkerPool,
    trials: u64,
    threads: usize,
    seeds: SeedSequence,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut SmallRng) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if trials == 0 {
        return Vec::new();
    }
    let threads = threads.min(trials as usize);
    if threads == 1 {
        let mut out = Vec::with_capacity(trials as usize);
        for i in 0..trials {
            let mut rng = seeds.rng(i);
            out.push(f(i, &mut rng));
        }
        return out;
    }
    let chunk = trials.div_ceil(threads as u64);
    let f_ref = &f;
    let mut slots: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
        .iter_mut()
        .enumerate()
        .map(|(w, slot)| {
            let lo = (w as u64 * chunk).min(trials);
            let hi = ((w as u64 + 1) * chunk).min(trials);
            Box::new(move || {
                let mut out = Vec::with_capacity((hi - lo) as usize);
                for i in lo..hi {
                    let mut rng = seeds.rng(i);
                    out.push(f_ref(i, &mut rng));
                }
                *slot = out;
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.run(tasks);
    let mut out = Vec::with_capacity(trials as usize);
    for c in slots {
        out.extend(c);
    }
    out
}

/// A sensible worker count for Monte-Carlo fan-out: the available
/// parallelism, capped so tiny jobs don't pay dispatch overhead.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_independent_of_thread_count() {
        let seq = SeedSequence::new(123);
        let work = |i: u64, rng: &mut SmallRng| -> (u64, f64) { (i, rng.gen::<f64>()) };
        let t1 = run_trials(53, 1, seq, work);
        let t3 = run_trials(53, 3, seq, work);
        let t8 = run_trials(53, 8, seq, work);
        assert_eq!(t1, t3);
        assert_eq!(t1, t8);
    }

    #[test]
    fn results_independent_of_pool_size() {
        let seq = SeedSequence::new(321);
        let work = |i: u64, rng: &mut SmallRng| -> (u64, u64) { (i, rng.gen::<u64>()) };
        let reference = run_trials(37, 1, seq, work);
        for pool_threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(pool_threads);
            assert_eq!(
                reference,
                run_trials_on(&pool, 37, 5, seq, work),
                "pool size {pool_threads}"
            );
        }
    }

    #[test]
    fn trial_indices_in_order() {
        let seq = SeedSequence::new(5);
        let out = run_trials(40, 7, seq, |i, _| i);
        assert_eq!(out, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_trials_yield_empty() {
        let seq = SeedSequence::new(1);
        let out: Vec<u8> = run_trials(0, 4, seq, |_, _| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let seq = SeedSequence::new(9);
        let out = run_trials(3, 64, seq, |i, _| i * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn streams_differ_across_trials() {
        let seq = SeedSequence::new(2);
        let out = run_trials(32, 4, seq, |_, rng| rng.gen::<u64>());
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let seq = SeedSequence::new(1);
        let _: Vec<u8> = run_trials(10, 0, seq, |_, _| 0u8);
    }

    #[test]
    #[should_panic(expected = "trial 5 fails")]
    fn trial_panic_propagates_with_original_message() {
        let seq = SeedSequence::new(1);
        let _: Vec<u8> = run_trials(8, 4, seq, |i, _| {
            assert!(i != 5, "trial 5 fails");
            0u8
        });
    }
}
