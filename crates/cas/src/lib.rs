//! `antdensity-cas` — a small content-addressed on-disk store.
//!
//! The workspace's determinism contract makes every expensive artifact
//! a *pure function* of a short key: a fused shard's aggregate blob is
//! a function of `(resolved-spec fingerprint, shard id)`, a measured
//! spectral gap a function of the topology token. This crate is the
//! shared persistence layer that turns that purity into reuse: sweeps,
//! the serve daemon, distributed workers, and the theory layer all
//! memoize through one [`Store`].
//!
//! Design constraints, in order:
//!
//! 1. **Never trust the disk.** Every entry carries its namespace, its
//!    full key, its payload length, and an FNV-1a checksum; a read that
//!    fails any check is reported as [`Lookup::Corrupt`] and the caller
//!    recomputes. A cache can therefore only ever cost time, not
//!    correctness.
//! 2. **Safe under concurrent writers.** Entries are written to a
//!    unique temporary name and atomically renamed into place. Two
//!    processes racing on one key both write the identical bytes (the
//!    value is a pure function of the key), so last-rename-wins is
//!    benign; readers never observe a torn file.
//! 3. **No dependencies.** The build environment is offline; this
//!    crate is `std` only so every workspace layer (including the
//!    bottom of the dependency graph) can use it.
//!
//! Entries live under `root/<namespace-slug>/<fnv64(key)>.cas`; the
//! full key is stored and compared on read, so a (vanishingly
//! unlikely) filename-hash collision degrades to a miss, never to a
//! wrong payload.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Magic first token of every entry file. Bumping it orphans all
/// existing entries on purpose (they fail verification and are
/// recomputed).
pub const ENTRY_MAGIC: &str = "antdensity-cas v1";

/// FNV-1a 64-bit hash — the checksum and filename hash. Not
/// cryptographic; the store defends against corruption and truncation,
/// not an adversary with write access to the cache directory.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The outcome of a [`Store::get`]: the caller's counters distinguish
/// a clean miss from an entry that existed but failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Verified payload.
    Hit(String),
    /// No entry for the key.
    Miss,
    /// An entry existed but was truncated, corrupt, or answered for a
    /// different key/namespace — the caller must recompute. The entry
    /// is left in place; the next `put` overwrites it.
    Corrupt,
}

/// What an eviction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Eviction {
    /// Entries removed.
    pub evicted: u64,
    /// Bytes freed.
    pub bytes_freed: u64,
    /// Bytes remaining in the namespace after the pass.
    pub bytes_kept: u64,
}

/// One namespace of a content-addressed store rooted at a directory.
///
/// Opening is cheap (one `create_dir_all`); all state lives on disk,
/// so any number of processes can share one root.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    namespace: String,
}

/// Unique-per-call suffix for temporary files: pid plus a process-wide
/// counter, so concurrent writers (threads *and* processes) never
/// collide on a tmp name.
fn tmp_suffix() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

impl Store {
    /// Opens (creating if needed) the `namespace` slice of the store
    /// rooted at `root`. The namespace names the *format contract* of
    /// the payloads (it should embed a version, e.g.
    /// `antdensity-shard-cache v1`); entries verify it on read, so two
    /// namespaces can never serve each other's bytes.
    ///
    /// # Errors
    ///
    /// Returns the error text if the directory cannot be created.
    pub fn open(root: &Path, namespace: &str) -> Result<Store, String> {
        let slug: String = namespace
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let dir = root.join(slug);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        Ok(Store {
            dir,
            namespace: namespace.to_string(),
        })
    }

    /// The directory this namespace's entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.cas", fnv1a64(key.as_bytes())))
    }

    /// Renders an entry: one header line, the key line, the payload.
    /// `key` must be newline-free (enforced by [`Store::put`]).
    fn render(&self, key: &str, payload: &str) -> String {
        format!(
            "{ENTRY_MAGIC} ns={:016x} key_len={} payload_len={} checksum={:016x}\n{key}\n{payload}",
            fnv1a64(self.namespace.as_bytes()),
            key.len(),
            payload.len(),
            fnv1a64(payload.as_bytes()),
        )
    }

    /// Verified read. Any failure — missing header fields, wrong
    /// namespace, wrong key, short payload, checksum mismatch — comes
    /// back as [`Lookup::Corrupt`] (or [`Lookup::Miss`] if there is no
    /// entry at all); the payload is returned only when every check
    /// passes. A hit also bumps the entry's modification time so the
    /// LRU eviction pass sees it as recently used.
    pub fn get(&self, key: &str) -> Lookup {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            Err(_) => return Lookup::Corrupt,
        };
        let Some((header, rest)) = text.split_once('\n') else {
            return Lookup::Corrupt;
        };
        let mut fields = header.split(' ');
        if fields.next() != Some("antdensity-cas") || fields.next() != Some("v1") {
            return Lookup::Corrupt;
        }
        let mut ns = None;
        let mut key_len = None;
        let mut payload_len = None;
        let mut checksum = None;
        for field in fields {
            match field.split_once('=') {
                Some(("ns", v)) => ns = u64::from_str_radix(v, 16).ok(),
                Some(("key_len", v)) => key_len = v.parse::<usize>().ok(),
                Some(("payload_len", v)) => payload_len = v.parse::<usize>().ok(),
                Some(("checksum", v)) => checksum = u64::from_str_radix(v, 16).ok(),
                _ => return Lookup::Corrupt,
            }
        }
        let (Some(ns), Some(key_len), Some(payload_len), Some(checksum)) =
            (ns, key_len, payload_len, checksum)
        else {
            return Lookup::Corrupt;
        };
        if ns != fnv1a64(self.namespace.as_bytes()) {
            return Lookup::Corrupt;
        }
        let Some((stored_key, payload)) = rest.split_once('\n') else {
            return Lookup::Corrupt;
        };
        if stored_key.len() != key_len || stored_key != key {
            return Lookup::Corrupt;
        }
        if payload.len() != payload_len || fnv1a64(payload.as_bytes()) != checksum {
            return Lookup::Corrupt;
        }
        // Touch for LRU; best-effort (a read-only cache still serves).
        if let Ok(f) = std::fs::File::options().append(true).open(&path) {
            let _ = f.set_modified(SystemTime::now());
        }
        Lookup::Hit(payload.to_string())
    }

    /// Atomic write: the entry is rendered into a unique temporary
    /// file and renamed over the final name. Concurrent writers of one
    /// key race benignly (both wrote identical bytes). Returns the
    /// entry's on-disk size.
    ///
    /// # Errors
    ///
    /// Returns the error text on I/O failure, or if `key` contains a
    /// newline (the entry format is line-framed).
    pub fn put(&self, key: &str, payload: &str) -> Result<u64, String> {
        if key.contains('\n') {
            return Err(format!("cache key contains a newline: {key:?}"));
        }
        let text = self.render(key, payload);
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!("tmp.{}", tmp_suffix()));
        let write = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            return Err(format!("cache write {} failed: {e}", path.display()));
        }
        Ok(text.len() as u64)
    }

    /// Total bytes of entries in this namespace.
    pub fn total_bytes(&self) -> u64 {
        self.entries().into_iter().map(|(_, len, _)| len).sum()
    }

    /// `(path, len, mtime)` for every entry file, unordered.
    fn entries(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        read.flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "cas"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                Some((e.path(), meta.len(), mtime))
            })
            .collect()
    }

    /// Size-capped LRU eviction pass: while the namespace holds more
    /// than `max_bytes`, remove the least-recently-used entry (oldest
    /// modification time; [`Store::get`] hits refresh it). Failed
    /// removals are skipped — another process may have evicted first.
    pub fn evict_to(&self, max_bytes: u64) -> Eviction {
        let mut entries = self.entries();
        entries.sort_by_key(|&(_, _, mtime)| mtime);
        let mut total: u64 = entries.iter().map(|&(_, len, _)| len).sum();
        let mut out = Eviction::default();
        for (path, len, _) in entries {
            if total <= max_bytes {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                out.evicted += 1;
                out.bytes_freed += len;
            }
            total -= len;
        }
        out.bytes_kept = total;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("antdensity_cas_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips_and_misses_cleanly() {
        let root = scratch("roundtrip");
        let store = Store::open(&root, "test v1").unwrap();
        assert_eq!(store.get("absent"), Lookup::Miss);
        store.put("k1", "payload\nwith lines\n").unwrap();
        assert_eq!(store.get("k1"), Lookup::Hit("payload\nwith lines\n".into()));
        // overwrite wins
        store.put("k1", "second").unwrap();
        assert_eq!(store.get("k1"), Lookup::Hit("second".into()));
        // empty payloads are representable
        store.put("k2", "").unwrap();
        assert_eq!(store.get("k2"), Lookup::Hit(String::new()));
        assert!(store.put("bad\nkey", "x").is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_entries_are_never_served() {
        let root = scratch("corrupt");
        let store = Store::open(&root, "test v1").unwrap();
        store.put("k", "the payload bytes").unwrap();
        let path = store.entry_path("k");
        let good = std::fs::read_to_string(&path).unwrap();

        // truncation
        std::fs::write(&path, &good[..good.len() - 4]).unwrap();
        assert_eq!(store.get("k"), Lookup::Corrupt);
        // bit flip in the payload
        let flipped = good.replace("payload", "paYload");
        std::fs::write(&path, flipped).unwrap();
        assert_eq!(store.get("k"), Lookup::Corrupt);
        // garbage header
        std::fs::write(&path, "not a cas entry\nk\nx").unwrap();
        assert_eq!(store.get("k"), Lookup::Corrupt);
        // a fresh put repairs the slot
        store.put("k", "the payload bytes").unwrap();
        assert_eq!(store.get("k"), Lookup::Hit("the payload bytes".into()));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wrong_namespace_and_wrong_key_are_corrupt() {
        let root = scratch("ns");
        let a = Store::open(&root, "ns-a v1").unwrap();
        let b = Store::open(&root, "ns-b v1").unwrap();
        a.put("k", "from a").unwrap();
        // different namespace → different directory → clean miss
        assert_eq!(b.get("k"), Lookup::Miss);
        // an entry renamed onto another key's filename answers for the
        // wrong key and is rejected
        a.put("other", "from other").unwrap();
        std::fs::rename(a.entry_path("other"), a.entry_path("k")).unwrap();
        assert_eq!(a.get("k"), Lookup::Corrupt);
        // an entry copied across namespaces (same filename hash) is
        // rejected by the namespace check
        b.put("k", "from b").unwrap();
        std::fs::copy(b.entry_path("k"), a.entry_path("k")).unwrap();
        assert_eq!(a.get("k"), Lookup::Corrupt);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_writers_on_one_key_never_tear() {
        let root = scratch("race");
        let store = Store::open(&root, "race v1").unwrap();
        let payload: String = "deterministic bytes ".repeat(512);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let store = Store::open(&root, "race v1").unwrap();
                let payload = payload.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        store.put("contended", &payload).unwrap();
                        match store.get("contended") {
                            Lookup::Hit(p) => assert_eq!(p, payload),
                            other => panic!("reader saw {other:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(store.get("contended"), Lookup::Hit(payload));
        // no tmp litter survives the race
        let litter = std::fs::read_dir(store.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_none_or(|x| x != "cas"))
            .count();
        assert_eq!(litter, 0, "temporary files left behind");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn eviction_is_lru_and_size_capped() {
        let root = scratch("evict");
        let store = Store::open(&root, "evict v1").unwrap();
        let mut sizes = Vec::new();
        for i in 0..4 {
            sizes.push(store.put(&format!("k{i}"), &"x".repeat(100)).unwrap());
            // mtime granularity: ensure a strict order between entries
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let total = store.total_bytes();
        assert_eq!(total, sizes.iter().sum::<u64>());
        // a recent get refreshes k0 — k1 becomes the LRU victim
        assert!(matches!(store.get("k0"), Lookup::Hit(_)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        let pass = store.evict_to(total - 1);
        assert_eq!(pass.evicted, 1);
        assert_eq!(store.get("k1"), Lookup::Miss, "LRU entry evicted");
        assert!(
            matches!(store.get("k0"), Lookup::Hit(_)),
            "refreshed entry kept"
        );
        // cap 0 clears the namespace
        let pass = store.evict_to(0);
        assert_eq!(pass.bytes_kept, 0);
        assert_eq!(store.total_bytes(), 0);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
