//! Section 6.3.1: random-walk-based sensor network sampling.
//!
//! "A query message (a 'token') is initially sent by a base station to
//! some sensor. The token is relayed randomly between sensors, which are
//! connected via a grid communication network, and its value is updated
//! appropriately at each step … it easily adapts to node failures and
//! does not require setting up or storing spanning tree communication
//! structures."
//!
//! The token records one reading per hop *without* remembering which
//! sensors it has visited; repeat visits therefore inflate the variance
//! relative to i.i.d. sampling. The paper's Corollary 15 moment bound
//! says the inflation on a grid is only logarithmic — [`TokenEstimate`]
//! exposes the revisit statistics so experiments can verify exactly that.

use antdensity_graphs::{NodeId, Topology};
use antdensity_stats::rng::SeedSequence;
use rand::Rng;
use rand::RngCore;

/// A field of sensors on a topology: one value per node, plus an alive
/// flag (failed sensors still relay tokens but contribute no reading).
#[derive(Debug, Clone, PartialEq)]
pub struct SensorField<T: Topology> {
    topo: T,
    values: Vec<f64>,
    alive: Vec<bool>,
}

impl<T: Topology> SensorField<T> {
    /// Creates a field with explicit per-node readings.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != topo.num_nodes()`.
    pub fn new(topo: T, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len() as u64,
            topo.num_nodes(),
            "one value per sensor required"
        );
        let n = values.len();
        Self {
            topo,
            values,
            alive: vec![true; n],
        }
    }

    /// Creates a field whose readings are i.i.d. draws from `sample`
    /// (the paper's general data-aggregation setting: `vᵢ ~ D`).
    pub fn from_distribution(
        topo: T,
        rng: &mut dyn RngCore,
        mut sample: impl FnMut(&mut dyn RngCore) -> f64,
    ) -> Self {
        let n = topo.num_nodes() as usize;
        let values = (0..n).map(|_| sample(rng)).collect();
        Self {
            topo,
            values,
            alive: vec![true; n],
        }
    }

    /// A binary field where each sensor has recorded a condition with
    /// probability `p` — density estimation as a special case of
    /// aggregation ("vᵢ is an indicator which is 1 with probability d").
    pub fn bernoulli(topo: T, p: f64, rng: &mut dyn RngCore) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0,1]");
        Self::from_distribution(topo, rng, |r| if r.gen_bool(p) { 1.0 } else { 0.0 })
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The reading at `node`.
    pub fn value(&self, node: NodeId) -> f64 {
        self.values[node as usize]
    }

    /// Whether the sensor at `node` is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node as usize]
    }

    /// Fails each sensor independently with probability `p` (failed
    /// sensors still relay the token — the radio works, the sensing
    /// element does not).
    pub fn fail_random(&mut self, p: f64, rng: &mut dyn RngCore) {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0,1]");
        for a in self.alive.iter_mut() {
            if *a && rng.gen_bool(p) {
                *a = false;
            }
        }
    }

    /// Number of alive sensors.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// The true mean over alive sensors (the aggregation target).
    ///
    /// # Panics
    ///
    /// Panics if every sensor has failed.
    pub fn true_mean(&self) -> f64 {
        let alive: Vec<f64> = self
            .values
            .iter()
            .zip(&self.alive)
            .filter(|(_, a)| **a)
            .map(|(v, _)| *v)
            .collect();
        assert!(!alive.is_empty(), "all sensors failed");
        alive.iter().sum::<f64>() / alive.len() as f64
    }
}

/// The result of one token walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenEstimate {
    /// The aggregated mean estimate.
    pub mean: f64,
    /// Readings collected (excludes hops onto failed sensors).
    pub samples: u64,
    /// Hops that landed on already-visited sensors (revisit inflation).
    pub revisits: u64,
    /// Distinct sensors visited.
    pub distinct: u64,
    /// Hops that landed on failed sensors.
    pub failed_reads: u64,
}

/// Walks a query token for `hops` hops from `start` and aggregates the
/// mean reading. The token is memoryless — exactly the scheme the paper
/// argues stays accurate thanks to strong local mixing.
///
/// # Panics
///
/// Panics if `hops == 0` or `start` is out of range.
pub fn token_mean_estimate<T: Topology>(
    field: &SensorField<T>,
    start: NodeId,
    hops: u64,
    seed: u64,
) -> TokenEstimate {
    assert!(hops > 0, "token needs at least one hop");
    assert!(
        start < field.topo.num_nodes(),
        "start node {start} out of range"
    );
    let seq = SeedSequence::new(seed);
    let mut rng = seq.rng(0);
    let mut v = start;
    let mut sum = 0.0;
    let mut samples = 0u64;
    let mut revisits = 0u64;
    let mut failed_reads = 0u64;
    let mut seen = std::collections::HashSet::new();
    seen.insert(v);
    for _ in 0..hops {
        v = field.topo.random_neighbor(v, &mut rng);
        if !seen.insert(v) {
            revisits += 1;
        }
        if field.is_alive(v) {
            sum += field.value(v);
            samples += 1;
        } else {
            failed_reads += 1;
        }
    }
    TokenEstimate {
        mean: if samples > 0 {
            sum / samples as f64
        } else {
            0.0
        },
        samples,
        revisits,
        distinct: seen.len() as u64,
        failed_reads,
    }
}

/// I.i.d.-sampling baseline: `samples` uniform random alive sensors (with
/// replacement). This is what the token walk is compared against.
pub fn iid_mean_estimate<T: Topology>(field: &SensorField<T>, samples: u64, seed: u64) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let seq = SeedSequence::new(seed);
    let mut rng = seq.rng(0);
    let mut sum = 0.0;
    let mut got = 0u64;
    let mut guard = 0u64;
    while got < samples {
        let v = field.topo.uniform_node(&mut rng);
        if field.is_alive(v) {
            sum += field.value(v);
            got += 1;
        }
        guard += 1;
        assert!(
            guard < samples.saturating_mul(1000) + 1000,
            "too many failed sensors to sample"
        );
    }
    sum / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::Torus2d;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn checkerboard_field(side: u64) -> SensorField<Torus2d> {
        let topo = Torus2d::new(side);
        let values = (0..topo.num_nodes())
            .map(|v| {
                let (x, y) = topo.coord(v);
                ((x + y) % 2) as f64
            })
            .collect();
        SensorField::new(topo, values)
    }

    #[test]
    fn token_estimates_checkerboard_mean() {
        // mean is exactly 0.5; a long token walk should get close.
        let field = checkerboard_field(16);
        let est = token_mean_estimate(&field, 0, 4000, 1);
        assert!((est.mean - 0.5).abs() < 0.05, "mean {}", est.mean);
        assert_eq!(est.samples, 4000);
        assert_eq!(est.failed_reads, 0);
    }

    #[test]
    fn token_revisits_are_counted() {
        let field = checkerboard_field(8); // small field: many revisits
        let est = token_mean_estimate(&field, 0, 1000, 2);
        assert!(est.revisits > 0);
        assert!(est.distinct <= 64);
        assert_eq!(est.revisits + est.distinct, (1000 + 1)); // revisits + distinct = hops + 1 when nothing else counted... see below
    }

    #[test]
    fn revisit_accounting_identity() {
        // each hop is either a first visit (distinct grows) or a revisit;
        // plus the start node is distinct. So distinct + revisits = hops + 1.
        let field = checkerboard_field(8);
        for seed in 0..5 {
            let est = token_mean_estimate(&field, 5, 300, seed);
            assert_eq!(est.distinct + est.revisits, 301);
        }
    }

    #[test]
    fn failed_sensors_relay_but_do_not_report() {
        let mut field = checkerboard_field(16);
        let mut rng = SmallRng::seed_from_u64(3);
        field.fail_random(0.5, &mut rng);
        let alive = field.alive_count();
        assert!(alive > 64 && alive < 192, "alive {alive}");
        let est = token_mean_estimate(&field, 0, 2000, 4);
        assert!(est.failed_reads > 0);
        assert_eq!(est.samples + est.failed_reads, 2000);
        // estimate still tracks the alive-sensor mean
        assert!((est.mean - field.true_mean()).abs() < 0.1);
    }

    #[test]
    fn iid_baseline_matches_true_mean() {
        let field = checkerboard_field(16);
        let est = iid_mean_estimate(&field, 4000, 5);
        assert!((est - 0.5).abs() < 0.03, "iid mean {est}");
    }

    #[test]
    fn bernoulli_field_density_estimation() {
        let mut rng = SmallRng::seed_from_u64(6);
        let field = SensorField::bernoulli(Torus2d::new(32), 0.2, &mut rng);
        let truth = field.true_mean();
        assert!((truth - 0.2).abs() < 0.05, "field mean {truth}");
        let est = token_mean_estimate(&field, 0, 5000, 7);
        assert!((est.mean - truth).abs() < 0.05, "token mean {}", est.mean);
    }

    #[test]
    fn token_variance_close_to_iid_on_torus() {
        // The punchline of Section 6.3.1: repeat visits cost only a small
        // factor on the grid. Compare standard deviations of token vs iid
        // estimates with the same number of readings.
        let field = checkerboard_field(32);
        let hops = 512;
        let reps = 200u64;
        let token_ests: Vec<f64> = (0..reps)
            .map(|s| token_mean_estimate(&field, 0, hops, 100 + s).mean)
            .collect();
        let iid_ests: Vec<f64> = (0..reps)
            .map(|s| iid_mean_estimate(&field, hops, 500 + s))
            .collect();
        let sd = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let ratio = sd(&token_ests) / sd(&iid_ests);
        // checkerboard alternates every step, so the token actually does
        // fine; the guard is that inflation stays modest (< 5x).
        assert!(ratio < 5.0, "token/iid sd ratio {ratio}");
    }

    #[test]
    fn all_failed_sensors_panics_on_true_mean() {
        let mut field = checkerboard_field(4);
        let mut rng = SmallRng::seed_from_u64(8);
        field.fail_random(1.0, &mut rng);
        assert_eq!(field.alive_count(), 0);
        let r = std::panic::catch_unwind(|| field.true_mean());
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let field = checkerboard_field(8);
        assert_eq!(
            token_mean_estimate(&field, 0, 100, 9),
            token_mean_estimate(&field, 0, 100, 9)
        );
    }

    #[test]
    #[should_panic(expected = "one value per sensor")]
    fn wrong_value_count_rejected() {
        let _ = SensorField::new(Torus2d::new(4), vec![0.0; 3]);
    }
}
