//! Section 5.2: distributed density estimation by robot swarms.
//!
//! "Algorithm 1 can be directly applied as a simple and robust density
//! estimation algorithm for robot swarms moving on a two-dimensional
//! plane modeled as a grid. Additionally, the algorithm can be used to
//! estimate the frequency of certain properties within the swarm."
//!
//! [`SwarmConfig`] runs a swarm with any number of disjoint task groups;
//! every robot simultaneously estimates the overall density and each
//! group's density from per-type encounter rates.

use antdensity_graphs::{Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::arena::SyncArena;
use antdensity_walks::movement::MovementModel;

/// One robot's estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct RobotEstimate {
    /// Overall density estimate `d̃`.
    pub density: f64,
    /// Per-group density estimates `d̃_P`, indexed by group.
    pub group_densities: Vec<f64>,
    /// This robot's own group, if any.
    pub group: Option<usize>,
}

impl RobotEstimate {
    /// Relative frequency estimate `f̃_g = d̃_g / d̃` for `group`, `None`
    /// if the robot saw no encounters at all.
    pub fn frequency(&self, group: usize) -> Option<f64> {
        if self.density > 0.0 {
            Some(self.group_densities[group] / self.density)
        } else {
            None
        }
    }
}

/// Swarm-level report.
#[derive(Debug, Clone, PartialEq)]
pub struct SwarmReport {
    estimates: Vec<RobotEstimate>,
    group_sizes: Vec<usize>,
    num_robots: usize,
    nodes: u64,
    rounds: u64,
}

impl SwarmReport {
    /// Per-robot estimates.
    pub fn estimates(&self) -> &[RobotEstimate] {
        &self.estimates
    }

    /// Number of task groups.
    pub fn num_groups(&self) -> usize {
        self.group_sizes.len()
    }

    /// True swarm density `d = (N−1)/A` (paper convention).
    pub fn true_density(&self) -> f64 {
        (self.num_robots as f64 - 1.0) / self.nodes as f64
    }

    /// True relative frequency of `group`: `|g| / N`.
    pub fn true_frequency(&self, group: usize) -> f64 {
        self.group_sizes[group] as f64 / self.num_robots as f64
    }

    /// Mean of the defined per-robot frequency estimates for `group`.
    pub fn mean_frequency(&self, group: usize) -> Option<f64> {
        let xs: Vec<f64> = self
            .estimates
            .iter()
            .filter_map(|e| e.frequency(group))
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    }

    /// Mean overall density estimate.
    pub fn mean_density(&self) -> f64 {
        self.estimates.iter().map(|e| e.density).sum::<f64>() / self.estimates.len() as f64
    }

    /// Rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// Configuration of a robot-swarm estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SwarmConfig {
    side: u64,
    num_robots: usize,
    rounds: u64,
    group_sizes: Vec<usize>,
    movement: MovementModel,
}

impl SwarmConfig {
    /// A swarm of `num_robots` robots on a `side × side` grid, walking
    /// `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`, `num_robots == 0`, or `rounds == 0`.
    pub fn new(side: u64, num_robots: usize, rounds: u64) -> Self {
        assert!(side > 0, "grid side must be positive");
        assert!(num_robots > 0, "need at least one robot");
        assert!(rounds > 0, "need at least one round");
        Self {
            side,
            num_robots,
            rounds,
            group_sizes: Vec::new(),
            movement: MovementModel::Pure,
        }
    }

    /// Assigns disjoint task groups of the given sizes (robot ids are
    /// allocated in order; the remainder belongs to no group).
    ///
    /// # Panics
    ///
    /// Panics if the sizes sum to more than the swarm size.
    pub fn with_groups(mut self, sizes: &[usize]) -> Self {
        assert!(
            sizes.iter().sum::<usize>() <= self.num_robots,
            "group sizes exceed swarm size"
        );
        self.group_sizes = sizes.to_vec();
        self
    }

    /// Replaces the movement model (e.g. lazy walks for robots with duty
    /// cycles).
    pub fn with_movement(mut self, movement: MovementModel) -> Self {
        self.movement = movement;
        self
    }

    /// Runs the swarm.
    pub fn run(&self, seed: u64) -> SwarmReport {
        let topo = Torus2d::new(self.side);
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut arena = SyncArena::new(&topo, self.num_robots);
        arena.set_movement_all(&self.movement);
        arena.declare_groups(self.group_sizes.len());
        let mut next = 0usize;
        for (g, &size) in self.group_sizes.iter().enumerate() {
            for _ in 0..size {
                arena.assign_group(next, g);
                next += 1;
            }
        }
        arena.place_uniform(&mut rng);
        let groups = self.group_sizes.len();
        let mut total = vec![0u64; self.num_robots];
        let mut per_group = vec![vec![0u64; groups]; self.num_robots];
        for _ in 0..self.rounds {
            arena.step_round(&mut rng);
            for r in 0..self.num_robots {
                total[r] += arena.count(r) as u64;
                for (g, slot) in per_group[r].iter_mut().enumerate() {
                    *slot += arena.count_in_group(r, g) as u64;
                }
            }
        }
        let t = self.rounds as f64;
        let estimates = (0..self.num_robots)
            .map(|r| RobotEstimate {
                density: total[r] as f64 / t,
                group_densities: per_group[r].iter().map(|&c| c as f64 / t).collect(),
                group: arena.group_of(r),
            })
            .collect();
        SwarmReport {
            estimates,
            group_sizes: self.group_sizes.clone(),
            num_robots: self.num_robots,
            nodes: topo.num_nodes(),
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_estimate_tracks_truth() {
        let report = SwarmConfig::new(16, 65, 1024).run(1);
        let d = report.mean_density();
        let truth = report.true_density(); // 64/256 = 0.25
        assert!((d - truth).abs() / truth < 0.15, "density {d} vs {truth}");
    }

    #[test]
    fn two_group_frequencies_sum_below_one() {
        let report = SwarmConfig::new(16, 64, 512).with_groups(&[16, 16]).run(2);
        let f0 = report.mean_frequency(0).unwrap();
        let f1 = report.mean_frequency(1).unwrap();
        assert!(f0 + f1 < 1.0 + 0.1);
        assert!((f0 - report.true_frequency(0)).abs() < 0.12, "f0 {f0}");
        assert!((f1 - report.true_frequency(1)).abs() < 0.12, "f1 {f1}");
    }

    #[test]
    fn group_membership_recorded() {
        let report = SwarmConfig::new(8, 10, 10).with_groups(&[3, 2]).run(3);
        let groups: Vec<Option<usize>> = report.estimates().iter().map(|e| e.group).collect();
        assert_eq!(groups[0], Some(0));
        assert_eq!(groups[2], Some(0));
        assert_eq!(groups[3], Some(1));
        assert_eq!(groups[4], Some(1));
        assert_eq!(groups[5], None);
        assert_eq!(report.num_groups(), 2);
    }

    #[test]
    fn frequencies_more_accurate_with_time() {
        let short = SwarmConfig::new(16, 64, 32).with_groups(&[32]).run(4);
        let long = SwarmConfig::new(16, 64, 2048).with_groups(&[32]).run(4);
        let err = |r: &SwarmReport| (r.mean_frequency(0).unwrap() - r.true_frequency(0)).abs();
        assert!(
            err(&long) <= err(&short) + 0.02,
            "long {} vs short {}",
            err(&long),
            err(&short)
        );
    }

    #[test]
    fn empty_group_list_is_fine() {
        let report = SwarmConfig::new(8, 12, 64).run(5);
        assert_eq!(report.num_groups(), 0);
        assert!(report.mean_density() >= 0.0);
    }

    #[test]
    fn lazy_movement_supported() {
        let report = SwarmConfig::new(16, 33, 256)
            .with_movement(MovementModel::lazy(0.3))
            .run(6);
        let truth = report.true_density();
        assert!((report.mean_density() - truth).abs() / truth < 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SwarmConfig::new(8, 12, 32).with_groups(&[4]);
        assert_eq!(cfg.run(9), cfg.run(9));
    }

    #[test]
    #[should_panic(expected = "exceed swarm size")]
    fn oversized_groups_rejected() {
        let _ = SwarmConfig::new(8, 10, 10).with_groups(&[6, 5]);
    }
}
