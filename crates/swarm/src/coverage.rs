//! Section 6.3.4: swarm coverage and density-triggered dispersion.
//!
//! "It may be interesting to use density estimation to detect regions
//! with high robot density, and to then spread out this density to more
//! efficiently distribute exploration."
//!
//! Two tools:
//!
//! * [`coverage_curve`] — the fraction of the grid visited by a swarm of
//!   random walkers over time (the exploration-progress statistic).
//! * [`DispersionSim`] — a protocol sketch: every robot tracks its recent
//!   encounter rate (its local density estimate); a robot whose estimate
//!   exceeds a target takes **two** walk steps per round instead of one
//!   until the estimate drops. Clustered swarms spread measurably faster
//!   than with plain random walking.

use antdensity_graphs::{NodeId, Topology, Torus2d};
use antdensity_stats::rng::SeedSequence;
use rand::RngCore;
use std::collections::{HashMap, HashSet, VecDeque};

/// Fraction of nodes visited by at least one of `num_agents` random
/// walkers (uniform starts) after each round `0..=rounds`.
///
/// # Panics
///
/// Panics if `num_agents == 0`.
pub fn coverage_curve<T: Topology>(
    topo: &T,
    num_agents: usize,
    rounds: u64,
    seed: u64,
) -> Vec<f64> {
    assert!(num_agents > 0, "need at least one agent");
    let seq = SeedSequence::new(seed);
    let mut rng = seq.rng(0);
    let a = topo.num_nodes() as f64;
    let mut positions: Vec<NodeId> = (0..num_agents)
        .map(|_| topo.uniform_node(&mut rng))
        .collect();
    let mut visited: HashSet<NodeId> = positions.iter().copied().collect();
    let mut curve = Vec::with_capacity(rounds as usize + 1);
    curve.push(visited.len() as f64 / a);
    for _ in 0..rounds {
        for p in positions.iter_mut() {
            *p = topo.random_neighbor(*p, &mut rng);
            visited.insert(*p);
        }
        curve.push(visited.len() as f64 / a);
    }
    curve
}

/// Spatial-spread metric of a configuration: the number of distinct
/// occupied nodes divided by the swarm size (1.0 = perfectly spread,
/// → 1/N when fully stacked).
pub fn occupancy_spread(positions: &[NodeId]) -> f64 {
    assert!(!positions.is_empty(), "need at least one robot");
    let distinct: HashSet<NodeId> = positions.iter().copied().collect();
    distinct.len() as f64 / positions.len() as f64
}

/// Density-triggered dispersion simulator.
#[derive(Debug, Clone)]
pub struct DispersionSim {
    side: u64,
    num_robots: usize,
    /// Per-robot encounter history window.
    window: usize,
    /// Encounter-rate threshold that triggers fast movement.
    trigger: f64,
    /// Whether density-triggered speedup is enabled (disable for the
    /// plain-random-walk control).
    adaptive: bool,
}

impl DispersionSim {
    /// A swarm of `num_robots` on a `side × side` torus; robots whose
    /// encounter rate over the last `window` rounds exceeds `trigger`
    /// take two steps per round (when `adaptive`).
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero or `trigger < 0`.
    pub fn new(side: u64, num_robots: usize, window: usize, trigger: f64) -> Self {
        assert!(side > 0, "grid side must be positive");
        assert!(num_robots > 0, "need at least one robot");
        assert!(window > 0, "window must be positive");
        assert!(trigger >= 0.0, "trigger must be non-negative");
        Self {
            side,
            num_robots,
            window,
            trigger,
            adaptive: true,
        }
    }

    /// Disables the density trigger (control condition).
    pub fn without_adaptation(mut self) -> Self {
        self.adaptive = false;
        self
    }

    /// Runs `rounds` rounds starting from a fully clustered configuration
    /// (all robots on one node); returns the spread metric after each
    /// round.
    pub fn run_clustered(&self, rounds: u64, seed: u64) -> Vec<f64> {
        let topo = Torus2d::new(self.side);
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let start = topo.node(self.side / 2, self.side / 2);
        let mut positions = vec![start; self.num_robots];
        let mut histories: Vec<VecDeque<u32>> =
            vec![VecDeque::with_capacity(self.window); self.num_robots];
        let mut curve = Vec::with_capacity(rounds as usize + 1);
        curve.push(occupancy_spread(&positions));
        let mut occupancy: HashMap<NodeId, u32> = HashMap::new();
        for _ in 0..rounds {
            for (r, p) in positions.iter_mut().enumerate() {
                let fast = self.adaptive && self.rate(&histories[r]) > self.trigger;
                *p = topo.random_neighbor(*p, &mut rng as &mut dyn RngCore);
                if fast {
                    *p = topo.random_neighbor(*p, &mut rng as &mut dyn RngCore);
                }
            }
            occupancy.clear();
            for &p in &positions {
                *occupancy.entry(p).or_insert(0) += 1;
            }
            for (r, &p) in positions.iter().enumerate() {
                let h = &mut histories[r];
                if h.len() == self.window {
                    h.pop_front();
                }
                h.push_back(occupancy[&p] - 1);
            }
            curve.push(occupancy_spread(&positions));
        }
        curve
    }

    fn rate(&self, history: &VecDeque<u32>) -> f64 {
        if history.is_empty() {
            return f64::INFINITY; // no data yet: clustered start, disperse
        }
        history.iter().map(|&c| c as f64).sum::<f64>() / history.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::Torus2d;

    #[test]
    fn coverage_is_monotone_and_bounded() {
        let topo = Torus2d::new(16);
        let curve = coverage_curve(&topo, 8, 200, 1);
        assert_eq!(curve.len(), 201);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0], "coverage must not decrease");
        }
        assert!(curve[200] <= 1.0);
        assert!(curve[200] > curve[0]);
    }

    #[test]
    fn more_agents_cover_faster() {
        let topo = Torus2d::new(32);
        let few = coverage_curve(&topo, 4, 300, 2);
        let many = coverage_curve(&topo, 64, 300, 2);
        assert!(
            many[300] > few[300],
            "64 agents {} vs 4 agents {}",
            many[300],
            few[300]
        );
    }

    #[test]
    fn full_coverage_eventually_on_tiny_grid() {
        let topo = Torus2d::new(4);
        let curve = coverage_curve(&topo, 8, 500, 3);
        assert_eq!(*curve.last().unwrap(), 1.0);
    }

    #[test]
    fn spread_metric_extremes() {
        assert_eq!(occupancy_spread(&[7, 7, 7, 7]), 0.25);
        assert_eq!(occupancy_spread(&[1, 2, 3, 4]), 1.0);
    }

    #[test]
    fn clustered_swarm_spreads_over_time() {
        let sim = DispersionSim::new(32, 64, 8, 0.5);
        let curve = sim.run_clustered(300, 4);
        assert!(curve[0] < 0.05, "starts clustered");
        assert!(curve[300] > 0.5, "ends spread: {} (adaptive)", curve[300]);
    }

    #[test]
    fn adaptive_disperses_faster_than_control() {
        // average early spread (rounds 1..=60) with and without trigger,
        // averaged across seeds for stability.
        let rounds = 60u64;
        let seeds = [5u64, 6, 7, 8];
        let mean_spread = |adaptive: bool| -> f64 {
            seeds
                .iter()
                .map(|&s| {
                    let sim = DispersionSim::new(32, 96, 4, 0.25);
                    let sim = if adaptive {
                        sim
                    } else {
                        sim.without_adaptation()
                    };
                    let curve = sim.run_clustered(rounds, s);
                    curve[1..].iter().sum::<f64>() / rounds as f64
                })
                .sum::<f64>()
                / seeds.len() as f64
        };
        let fast = mean_spread(true);
        let slow = mean_spread(false);
        assert!(
            fast > slow,
            "adaptive spread {fast} should beat control {slow}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = DispersionSim::new(16, 20, 4, 0.5);
        assert_eq!(sim.run_clustered(50, 9), sim.run_clustered(50, 9));
    }

    #[test]
    #[should_panic(expected = "at least one robot")]
    fn zero_robots_rejected() {
        let _ = DispersionSim::new(8, 0, 4, 0.5);
    }
}
