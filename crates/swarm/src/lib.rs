//! Applications of ant-inspired density estimation to robot swarms and
//! sensor networks (Sections 5.2 and 6.3 of the paper).
//!
//! * [`robot`] — Section 5.2: a robot swarm on a 2-d grid estimates both
//!   overall density and per-task-group densities by tracking encounter
//!   rates, yielding relative-frequency estimates `f̃_P = d̃_P/d̃`.
//! * [`sensor`] — Section 6.3.1: random-walk ("token") sampling of a
//!   sensor network. A query token is relayed between sensors on a grid
//!   communication network, aggregating an answer as it walks — no
//!   spanning tree, no visited-set bookkeeping. Node-failure injection
//!   shows the scheme's robustness; the repeat-visit penalty is measured
//!   against i.i.d. sampling (bounded by the paper's Corollary 15).
//! * [`coverage`] — Section 6.3.4: swarm coverage statistics
//!   (distinct-cells-visited over time) and a density-triggered
//!   dispersion protocol sketch ("detect regions with high robot density
//!   and … spread out this density").
//!
//! # Example
//!
//! ```
//! use antdensity_swarm::robot::SwarmConfig;
//!
//! // 96 robots on a 32x32 grid, two task groups.
//! let report = SwarmConfig::new(32, 96, 512)
//!     .with_groups(&[24, 8])
//!     .run(7);
//! let f0 = report.mean_frequency(0).unwrap();
//! assert!(f0 > 0.1 && f0 < 0.45, "group 0 is ~25% of the swarm: {f0}");
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod coverage;
pub mod robot;
pub mod sensor;

pub use robot::{SwarmConfig, SwarmReport};
pub use sensor::{SensorField, TokenEstimate};
