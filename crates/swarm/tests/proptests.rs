//! Property-based tests for the swarm/sensor application crate.

use antdensity_graphs::Torus2d;
use antdensity_swarm::coverage::{coverage_curve, occupancy_spread, DispersionSim};
use antdensity_swarm::robot::SwarmConfig;
use antdensity_swarm::sensor::{token_mean_estimate, SensorField};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn swarm_report_is_consistent(
        side in 4u64..12,
        robots in 2usize..24,
        g0 in 0usize..8,
        seed in any::<u64>(),
    ) {
        let g0 = g0.min(robots);
        let report = SwarmConfig::new(side, robots, 32)
            .with_groups(&[g0])
            .run(seed);
        prop_assert_eq!(report.estimates().len(), robots);
        prop_assert!((report.true_frequency(0) - g0 as f64 / robots as f64).abs() < 1e-12);
        for e in report.estimates() {
            // group densities cannot exceed overall density
            prop_assert!(e.group_densities[0] <= e.density + 1e-12);
            if let Some(f) = e.frequency(0) {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
            }
        }
    }

    #[test]
    fn coverage_curve_monotone_any_config(
        side in 3u64..10,
        agents in 1usize..16,
        rounds in 1u64..50,
        seed in any::<u64>(),
    ) {
        let topo = Torus2d::new(side);
        let curve = coverage_curve(&topo, agents, rounds, seed);
        prop_assert_eq!(curve.len(), rounds as usize + 1);
        for w in curve.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert!(*curve.last().unwrap() <= 1.0 + 1e-12);
        prop_assert!(curve[0] > 0.0);
    }

    #[test]
    fn occupancy_spread_bounds(positions in prop::collection::vec(0u64..64, 1..40)) {
        let s = occupancy_spread(&positions);
        prop_assert!(s > 0.0 && s <= 1.0);
        // spread 1 iff all distinct
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() == positions.len() {
            prop_assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dispersion_deterministic_and_bounded(
        seed in any::<u64>(),
        robots in 2usize..32,
    ) {
        let sim = DispersionSim::new(16, robots, 4, 0.5);
        let a = sim.run_clustered(30, seed);
        let b = sim.run_clustered(30, seed);
        prop_assert_eq!(a.clone(), b);
        for s in a {
            prop_assert!(s > 0.0 && s <= 1.0);
        }
    }

    #[test]
    fn token_estimate_identities(
        side in 4u64..10,
        hops in 1u64..200,
        p in 0.0..=1.0f64,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let field = SensorField::bernoulli(Torus2d::new(side), p, &mut rng);
        let est = token_mean_estimate(&field, 0, hops, seed);
        // revisit accounting: distinct + revisits = hops + 1
        prop_assert_eq!(est.distinct + est.revisits, hops + 1);
        // all sensors alive: every hop reads
        prop_assert_eq!(est.samples, hops);
        prop_assert_eq!(est.failed_reads, 0);
        // mean of 0/1 readings is a proportion
        prop_assert!((0.0..=1.0).contains(&est.mean));
    }

    #[test]
    fn failed_sensors_never_report(
        seed in any::<u64>(),
        fail_p in 0.1..0.9f64,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut field = SensorField::bernoulli(Torus2d::new(8), 0.5, &mut rng);
        field.fail_random(fail_p, &mut rng);
        let est = token_mean_estimate(&field, 0, 300, seed);
        prop_assert_eq!(est.samples + est.failed_reads, 300);
        if field.alive_count() == 0 {
            prop_assert_eq!(est.samples, 0);
        }
    }
}
